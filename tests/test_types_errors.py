"""ID configurations and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.types import (
    ID32,
    ID32_V64E,
    ID64,
    IdConfig,
    invalid_vertex,
)


class TestIdConfig:
    def test_default_widths(self):
        assert ID32.vertex_bytes == 4
        assert ID32.size_bytes == 4
        assert ID64.vertex_bytes == 8
        assert ID32_V64E.vertex_bytes == 4
        assert ID32_V64E.size_bytes == 8

    def test_value_dtype_default(self):
        assert ID32.value_bytes == 8

    def test_rejects_float_ids(self):
        with pytest.raises(TypeError):
            IdConfig(np.float32, np.int32)
        with pytest.raises(TypeError):
            IdConfig(np.int32, np.float64)

    def test_max_vertex(self):
        assert ID32.max_vertex() == 2**31 - 1
        assert ID64.max_vertex() == 2**63 - 1

    def test_max_size(self):
        assert ID32_V64E.max_size() == 2**63 - 1

    def test_invalid_vertex_is_max(self):
        assert invalid_vertex(ID32) == 2**31 - 1

    def test_frozen(self):
        with pytest.raises(Exception):
            ID32.vertex_dtype = np.int64

    def test_equality(self):
        assert IdConfig(np.int32, np.int32) == ID32
        assert ID32 != ID64

    def test_describe(self):
        assert "int32" in ID32.describe()

    def test_unsigned_allowed(self):
        cfg = IdConfig(np.uint32, np.uint64)
        assert cfg.vertex_bytes == 4

    def test_graph_id_overflow_checked(self):
        from repro.errors import GraphFormatError
        from repro.graph.build import from_edges

        g = from_edges(4, [(0, 1)])
        tiny = IdConfig(np.int8, np.int8)
        # 4 vertices fit int8; make sure with_ids validates capacity
        g2 = g.with_ids(tiny)
        assert g2.col_indices.dtype == np.int8
        big = from_edges(200, [(0, 199)])
        with pytest.raises(GraphFormatError):
            big.with_ids(tiny)


class TestErrorHierarchy:
    ALL = [
        errors.GraphFormatError,
        errors.PartitionError,
        errors.DeviceMemoryError,
        errors.SimulationError,
        errors.ConvergenceError,
        errors.CommunicationError,
    ]

    def test_all_derive_from_repro_error(self):
        for exc in self.ALL:
            assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.DeviceMemoryError("boom")

    def test_distinct(self):
        assert len(set(self.ALL)) == len(self.ALL)

    def test_repro_error_not_builtin(self):
        assert not issubclass(errors.ReproError, (ValueError, TypeError))


class TestOpStats:
    def test_merge_fused_drops_launch(self):
        from repro.core.stats import OpStats

        a = OpStats(name="a", launches=1, edges_visited=10,
                    streaming_bytes=100)
        b = OpStats(name="b", launches=1, vertices_processed=5,
                    random_bytes=50)
        fused = a.merged_with(b, fused=True)
        assert fused.launches == 1
        assert fused.edges_visited == 10
        assert fused.vertices_processed == 5
        assert fused.streaming_bytes == 100
        assert fused.random_bytes == 50

    def test_merge_unfused_keeps_launches(self):
        from repro.core.stats import OpStats

        a = OpStats(launches=2)
        b = OpStats(launches=3)
        assert a.merged_with(b, fused=False).launches == 5

    def test_combine_stats(self):
        from repro.core.stats import OpStats, combine_stats

        total = combine_stats(
            [OpStats(launches=1, edges_visited=3, atomic_ops=2.0),
             OpStats(launches=2, edges_visited=4)]
        )
        assert total.launches == 3
        assert total.edges_visited == 7
        assert total.atomic_ops == 2.0
