"""Baseline strategy models: correctness of results, cost-model shapes."""

import numpy as np
import pytest

from repro.baselines import (
    b40c_bfs,
    enterprise_dobfs,
    frog_color_graph,
    frog_run,
    graphreduce_run,
    medusa_bfs,
    totem_run,
    twod_bfs,
)
from repro.baselines.reference import bfs_reference, cc_reference
from repro.graph.build import add_random_weights


class TestResultsAreCorrect:
    """Every baseline must compute *correct* results; only time is modeled."""

    def test_b40c(self, small_rmat):
        ref, _ = bfs_reference(small_rmat, 5)
        r = b40c_bfs(small_rmat, 5, num_gpus=2, scale=64.0)
        assert np.array_equal(r.result, ref)

    def test_enterprise(self, small_rmat):
        ref, _ = bfs_reference(small_rmat, 5)
        r = enterprise_dobfs(small_rmat, 5, num_gpus=2, scale=64.0)
        assert np.array_equal(r.result, ref)

    def test_twod(self, small_rmat):
        ref, _ = bfs_reference(small_rmat, 5)
        assert np.array_equal(
            twod_bfs(small_rmat, 5, num_gpus=4, scale=64.0).result, ref
        )

    def test_medusa(self, small_rmat):
        ref, _ = bfs_reference(small_rmat, 5)
        assert np.array_equal(
            medusa_bfs(small_rmat, 5, num_gpus=2, scale=64.0).result, ref
        )

    def test_graphreduce_cc(self, small_rmat):
        r = graphreduce_run(small_rmat, "cc", scale=64.0)
        assert np.array_equal(r.result, cc_reference(small_rmat))

    def test_frog_bfs(self, small_rmat):
        ref, _ = bfs_reference(small_rmat, 5)
        assert np.array_equal(
            frog_run(small_rmat, "bfs", 5, scale=64.0).result, ref
        )

    def test_totem_sssp(self, weighted_rmat):
        from repro.baselines.reference import sssp_reference

        ref, _ = sssp_reference(weighted_rmat, 5)
        r = totem_run(weighted_rmat, "sssp", 5, scale=64.0)
        assert np.allclose(r.result, ref)


class TestCostShapes:
    def test_b40c_multi_gpu_pays_peer_access(self, small_rmat):
        """Peer-access remote gathers make 2 GPUs < 2x faster."""
        t1 = b40c_bfs(small_rmat, 5, num_gpus=1, scale=512.0).elapsed
        t2 = b40c_bfs(small_rmat, 5, num_gpus=2, scale=512.0).elapsed
        assert t2 > t1 / 2

    def test_enterprise_single_gpu_fast(self, small_rmat):
        """Hardwired 1-GPU DOBFS is fast; multi-GPU pays bitmap traffic."""
        r1 = enterprise_dobfs(small_rmat, 5, num_gpus=1, scale=512.0)
        r4 = enterprise_dobfs(small_rmat, 5, num_gpus=4, scale=512.0)
        assert r4.elapsed > r1.elapsed * 0.5  # little to no scaling

    def test_twod_ships_edge_frontiers(self, small_rmat):
        """Bigger scale -> proportionally more comm for the 2-D scheme."""
        t1 = twod_bfs(small_rmat, 5, num_gpus=4, scale=64.0).elapsed
        t8 = twod_bfs(small_rmat, 5, num_gpus=4, scale=512.0).elapsed
        assert t8 > 2 * t1  # sub-8x: per-message latency amortizes

    def test_bisson_atomics_slower_than_fu(self, small_rmat):
        fu = twod_bfs(small_rmat, 5, num_gpus=4, scale=512.0)
        bisson = twod_bfs(
            small_rmat, 5, num_gpus=4, scale=512.0, atomic_heavy=True
        )
        assert bisson.elapsed > fu.elapsed

    def test_graphreduce_streams_whole_graph(self, small_rmat):
        """Out-of-core time is dominated by PCIe streaming: it far
        exceeds an in-core baseline on the same graph."""
        incore = b40c_bfs(small_rmat, 5, num_gpus=1, scale=512.0).elapsed
        ooc = graphreduce_run(small_rmat, "bfs", 5, scale=512.0).elapsed
        assert ooc > 10 * incore

    def test_frog_cost_independent_of_frontier(self, small_road, small_rmat):
        """Frog visits all edges per pass regardless of activity."""
        r = frog_run(small_rmat, "bfs", 5, scale=64.0)
        assert r.extra["colors"] >= 2
        assert r.elapsed > 0

    def test_totem_cpu_side_bottlenecks(self, small_rmat):
        fast = totem_run(small_rmat, "pr", scale=512.0, gpu_fraction=0.95)
        slow = totem_run(small_rmat, "pr", scale=512.0, gpu_fraction=0.30)
        assert slow.elapsed > fast.elapsed

    def test_totem_rejects_cc(self, small_rmat):
        with pytest.raises(ValueError):
            totem_run(small_rmat, "cc")

    def test_gteps_helper(self, small_rmat):
        r = b40c_bfs(small_rmat, 5, num_gpus=1, scale=64.0)
        assert r.gteps(small_rmat.num_edges) > 0
        assert r.gteps(0) == 0.0


class TestFrogColoring:
    def test_proper_coloring_under_cap(self, small_road):
        colors = frog_color_graph(small_road, max_colors=64)
        g = small_road
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            if colors[v] < 63:  # non-hybrid colors must be proper
                assert not np.any(colors[nbrs] == colors[v])

    def test_color_cap_respected(self, small_rmat):
        colors = frog_color_graph(small_rmat, max_colors=8)
        assert colors.max() <= 7

    def test_all_colored(self, small_rmat):
        colors = frog_color_graph(small_rmat)
        assert np.all(colors >= 0)


class TestGraphMap:
    def test_results_correct(self, small_rmat):
        from repro.baselines import graphmap_run
        from repro.baselines.reference import cc_reference

        r = graphmap_run(small_rmat, "cc", scale=64.0)
        assert np.array_equal(r.result, cc_reference(small_rmat))

    def test_cluster_slower_than_incore_gpu(self, small_rmat):
        from repro.baselines import b40c_bfs, graphmap_run

        gm = graphmap_run(small_rmat, "bfs", 5, scale=512.0).elapsed
        gpu = b40c_bfs(small_rmat, 5, num_gpus=1, scale=512.0).elapsed
        assert gm > 5 * gpu

    def test_pr_least_bad(self, small_rmat):
        """PR's uniform work amortizes the cluster overheads best."""
        from repro.baselines import graphmap_run

        bfs = graphmap_run(small_rmat, "bfs", 5, scale=512.0)
        pr = graphmap_run(small_rmat, "pr", scale=512.0)
        # per-iteration cost similar; PR just runs a fixed 30 iterations
        assert pr.elapsed / pr.iterations == pytest.approx(
            bfs.elapsed / bfs.iterations, rel=0.3
        )

    def test_rejects_unknown(self, small_rmat):
        from repro.baselines import graphmap_run

        with pytest.raises(ValueError):
            graphmap_run(small_rmat, "bc")
