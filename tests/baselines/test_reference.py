"""Reference oracles validated against networkx/scipy and hand cases."""

import numpy as np
import pytest

from repro.baselines.reference import (
    bc_reference,
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.graph.build import add_random_weights, from_edges


def to_nx(g):
    nx = pytest.importorskip("networkx")
    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    coo = g.to_coo()
    G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
    return G


class TestBfsReference:
    def test_levels_and_parents(self, path_graph):
        levels, parents = bfs_reference(path_graph, 0)
        assert levels.tolist() == list(range(10))
        assert parents[5] == 4
        assert parents[0] == -1

    def test_parent_is_one_level_up(self, small_rmat):
        levels, parents = bfs_reference(small_rmat, 3)
        for v in np.flatnonzero(levels > 0)[:100]:
            assert levels[parents[v]] == levels[v] - 1


class TestSsspReference:
    def test_matches_scipy(self, weighted_rmat):
        import scipy.sparse as sp
        from scipy.sparse.csgraph import dijkstra

        g = weighted_rmat
        mat = sp.csr_matrix(
            (g.values, g.col_indices, g.row_offsets),
            shape=(g.num_vertices, g.num_vertices),
        )
        ref = dijkstra(mat, indices=11)
        dist, _ = sssp_reference(g, 11)
        assert np.allclose(dist, ref)

    def test_requires_weights(self, small_rmat):
        with pytest.raises(ValueError):
            sssp_reference(small_rmat, 0)

    def test_pred_tree_consistent(self, weighted_rmat):
        dist, preds = sssp_reference(weighted_rmat, 11)
        g = weighted_rmat
        for v in np.flatnonzero(np.isfinite(dist))[:50]:
            if v == 11:
                continue
            p = int(preds[v])
            nbrs = g.neighbors(p)
            w = g.edge_values(p)[np.flatnonzero(nbrs == v)[0]]
            assert dist[v] == pytest.approx(dist[p] + w)


class TestCcReference:
    def test_matches_networkx(self, small_social):
        nx = pytest.importorskip("networkx")
        G = to_nx(small_social)
        comp = cc_reference(small_social)
        for cset in nx.connected_components(G):
            assert len({int(comp[v]) for v in cset}) == 1

    def test_min_id_convention(self, two_components_graph):
        comp = cc_reference(two_components_graph)
        assert comp.tolist() == [0, 0, 0, 3, 3, 3]


class TestBcReference:
    def test_single_source_matches_networkx_total(self, small_social):
        nx = pytest.importorskip("networkx")
        G = to_nx(small_social)
        # full BC summed over sources (scaled): spot check with small graph
        sub_nodes = list(range(64))
        H = G.subgraph(sub_nodes)

    def test_path_dependency(self, path_graph):
        d = bc_reference(path_graph, source=0)
        assert d.tolist() == [0, 8, 7, 6, 5, 4, 3, 2, 1, 0]

    def test_full_bc_symmetric_path(self, path_graph):
        full = bc_reference(path_graph)
        # endpoints have 0 betweenness; middle the highest
        assert full[0] == 0 and full[9] == 0
        assert np.argmax(full) in (4, 5)

    def test_full_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = from_edges(8, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (5, 6),
                           (6, 3), (4, 7)])
        G = to_nx(g)
        theirs = nx.betweenness_centrality(G, normalized=False)
        ours = bc_reference(g) / 2  # undirected double count
        for v in range(8):
            assert ours[v] == pytest.approx(theirs[v])


class TestPagerankReference:
    def test_ranks_positive(self, small_rmat):
        r = pagerank_reference(small_rmat)
        assert np.all(r > 0)

    def test_base_rank_floor(self, small_rmat):
        r = pagerank_reference(small_rmat, damping=0.85)
        assert np.all(r >= 0.15 - 1e-12)

    def test_hub_dominates(self, star_graph):
        r = pagerank_reference(star_graph)
        assert np.argmax(r) == 0

    def test_empty_graph(self):
        assert pagerank_reference(from_edges(0, [])).size == 0
