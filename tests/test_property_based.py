"""Property-based tests (hypothesis) on core structures and invariants.

Strategy: generate random small graphs/partitions and assert the
invariants the framework's correctness rests on — COO/CSR round trips,
partition-table bijections, subgraph edge conservation, and full
primitive-vs-reference agreement under arbitrary partitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.core.direction import BACKWARD, DirectionState
from repro.graph.build import build_csr
from repro.graph.coo import CooGraph
from repro.graph.csr import CsrGraph
from repro.partition import (
    DUPLICATE_1HOP,
    DUPLICATE_ALL,
    build_subgraphs,
)
from repro.partition.base import PartitionResult
from repro.partition.border import border_matrix, edge_cut
from repro.sim.memory import MemoryPool
from repro.sim.stream import Stream


# ---------------------------------------------------------------------------
# graph strategies
# ---------------------------------------------------------------------------

@st.composite
def edge_lists(draw, max_vertices=24, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, np.asarray(src, np.int64), np.asarray(dst, np.int64)


@st.composite
def undirected_graphs(draw):
    n, src, dst = draw(edge_lists())
    return build_csr(CooGraph(n, src, dst), undirected=True)


@st.composite
def partitioned_graphs(draw):
    g = draw(undirected_graphs())
    k = draw(st.integers(1, 4))
    assignment = draw(
        st.lists(st.integers(0, k - 1), min_size=g.num_vertices,
                 max_size=g.num_vertices)
    )
    pr = PartitionResult.from_assignment(np.asarray(assignment, np.int32), k)
    return g, pr


# ---------------------------------------------------------------------------
# structural invariants
# ---------------------------------------------------------------------------

class TestGraphInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_coo_csr_round_trip_multiset(self, data):
        n, src, dst = data
        coo = CooGraph(n, src, dst)
        back = CsrGraph.from_coo(coo).to_coo()
        orig = sorted(zip(src.tolist(), dst.tolist()))
        got = sorted(zip(back.src.tolist(), back.dst.tolist()))
        assert got == orig

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_undirected_is_symmetric_loopless_dedup(self, data):
        n, src, dst = data
        g = build_csr(CooGraph(n, src, dst), undirected=True)
        back = g.to_coo()
        pairs = list(zip(back.src.tolist(), back.dst.tolist()))
        pset = set(pairs)
        assert len(pairs) == len(pset)  # dedup
        assert all(a != b for a, b in pairs)  # loopless
        assert all((b, a) in pset for a, b in pairs)  # symmetric

    @given(undirected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_equals_edges(self, g):
        assert int(g.out_degree().sum()) == g.num_edges

    @given(undirected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_offsets_monotone(self, g):
        assert np.all(np.diff(g.row_offsets) >= 0)


class TestPartitionInvariants:
    @given(partitioned_graphs())
    @settings(max_examples=50, deadline=None)
    def test_conversion_table_bijection(self, data):
        g, pr = data
        pr.validate()  # raises on violation

    @given(partitioned_graphs(), st.sampled_from([DUPLICATE_ALL, DUPLICATE_1HOP]))
    @settings(max_examples=50, deadline=None)
    def test_subgraphs_conserve_edges(self, data, strategy):
        g, pr = data
        subs = build_subgraphs(g, pr, strategy)
        assert sum(s.num_edges for s in subs) == g.num_edges

    @given(partitioned_graphs(), st.sampled_from([DUPLICATE_ALL, DUPLICATE_1HOP]))
    @settings(max_examples=50, deadline=None)
    def test_subgraph_edges_match_original(self, data, strategy):
        g, pr = data
        for s in build_subgraphs(g, pr, strategy):
            hosted_local = np.flatnonzero(s.host_of_local == s.gpu_id)
            for lv in hosted_local:
                gv = s.local_to_global[lv]
                got = sorted(s.local_to_global[s.csr.neighbors(lv)].tolist())
                assert got == sorted(g.neighbors(gv).tolist())

    @given(partitioned_graphs())
    @settings(max_examples=50, deadline=None)
    def test_border_never_exceeds_cut(self, data):
        g, pr = data
        assert int(border_matrix(g, pr).sum()) <= edge_cut(g, pr)


# ---------------------------------------------------------------------------
# primitive correctness under arbitrary partitions
# ---------------------------------------------------------------------------

def _machine(k):
    from repro.sim.machine import Machine

    return Machine(k, scale=8.0)


class _FixedPartitioner:
    """Feeds a hypothesis-drawn assignment through the framework."""

    name = "fixed"

    def __init__(self, assignment):
        self.assignment = assignment

    def partition(self, graph, num_gpus):
        return PartitionResult.from_assignment(self.assignment, num_gpus)


class TestPrimitivePropertyCorrectness:
    @given(partitioned_graphs(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_bfs_matches_reference(self, data, src_seed):
        from repro.primitives.bfs import run_bfs

        g, pr = data
        src = src_seed % g.num_vertices
        ref, _ = bfs_reference(g, src)
        labels, _, _ = run_bfs(
            g,
            _machine(pr.num_gpus),
            src=src,
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.array_equal(labels, ref)

    @given(partitioned_graphs(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_dobfs_matches_reference(self, data, src_seed):
        from repro.primitives.dobfs import run_dobfs

        g, pr = data
        src = src_seed % g.num_vertices
        ref, _ = bfs_reference(g, src)
        labels, _, _ = run_dobfs(
            g,
            _machine(pr.num_gpus),
            src=src,
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.array_equal(labels, ref)

    @given(partitioned_graphs(), st.integers(0, 1000), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_sssp_matches_dijkstra(self, data, src_seed, wseed):
        from repro.graph.build import add_random_weights
        from repro.primitives.sssp import run_sssp

        g, pr = data
        gw = add_random_weights(g, 1, 16, seed=wseed)
        src = src_seed % g.num_vertices
        ref, _ = sssp_reference(gw, src)
        dist, _, _ = run_sssp(
            gw,
            _machine(pr.num_gpus),
            src=src,
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.allclose(dist, ref)

    @given(partitioned_graphs())
    @settings(max_examples=25, deadline=None)
    def test_cc_matches_union_find(self, data):
        from repro.primitives.cc import run_cc

        g, pr = data
        comp, _, _ = run_cc(
            g,
            _machine(pr.num_gpus),
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.array_equal(comp, cc_reference(g))

    @given(partitioned_graphs(), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_bc_matches_brandes(self, data, src_seed):
        from repro.baselines.reference import bc_reference
        from repro.primitives.bc import run_bc

        g, pr = data
        src = src_seed % g.num_vertices
        bc, _, _ = run_bc(
            g,
            _machine(pr.num_gpus),
            src=src,
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.allclose(bc, bc_reference(g, source=src), atol=1e-9)

    @given(partitioned_graphs())
    @settings(max_examples=20, deadline=None)
    def test_pr_matches_power_iteration(self, data):
        from repro.primitives.pr import run_pagerank

        g, pr = data
        ranks, _, _ = run_pagerank(
            g,
            _machine(pr.num_gpus),
            partitioner=_FixedPartitioner(pr.partition_table),
        )
        assert np.allclose(ranks, pagerank_reference(g), rtol=1e-5)


# ---------------------------------------------------------------------------
# simulator invariants
# ---------------------------------------------------------------------------

class TestSimInvariants:
    @given(st.lists(st.tuples(st.integers(1, 100), st.booleans()), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_pool_accounting_never_negative(self, ops):
        pool = MemoryPool(10**9)
        live = {}
        for i, (size, free_it) in enumerate(ops):
            name = f"a{i}"
            pool.alloc(name, size)
            live[name] = size
            if free_it and live:
                victim = next(iter(live))
                pool.free(victim)
                del live[victim]
            assert pool.in_use == sum(live.values())
            assert pool.peak >= pool.in_use >= 0

    @given(st.lists(st.floats(0, 10), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stream_time_monotone(self, durations):
        s = Stream("s")
        last = 0.0
        for d in durations:
            ev = s.launch(d)
            assert ev.timestamp >= last
            last = ev.timestamp

    @given(
        st.integers(1, 10**6),
        st.integers(0, 10**6),
        st.integers(1, 10**6),
        st.integers(1, 10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_direction_switch_at_most_once(self, f, u, p, v):
        st_ = DirectionState(num_vertices=v, num_edges=4 * v)
        switches = 0
        prev = st_.direction
        for k in range(6):
            cur = st_.update((f + k) % (v + 1), u % (v + 1), 1 + p % v)
            if prev == "forward" and cur == BACKWARD:
                switches += 1
            prev = cur
        assert switches <= 1
