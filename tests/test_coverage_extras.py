"""Deeper coverage: barrier overlap semantics, metis internals,
validator acceptance properties, weighted I/O, sweep drivers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.validate import (
    validate_bfs,
    validate_cc,
    validate_sssp,
)
from repro.baselines.reference import bfs_reference, cc_reference, sssp_reference
from repro.graph.build import add_random_weights, build_csr, from_edges
from repro.graph.coo import CooGraph
from repro.sim.machine import Machine


class TestBarrierComputeOnly:
    def test_comm_stream_not_flushed(self):
        m = Machine(2, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        m.gpus[0].comm.launch(10.0)
        t = m.barrier(compute_only=True)
        assert t < 10.0
        assert m.gpus[0].comm.available_at == 10.0
        # compute streams all advanced to the barrier
        assert m.gpus[1].compute.available_at == t

    def test_full_barrier_flushes_comm(self):
        m = Machine(2, scale=1.0)
        m.gpus[0].comm.launch(10.0)
        t = m.barrier(compute_only=False)
        assert t >= 10.0

    def test_clock_monotone_under_overlap(self):
        m = Machine(2, scale=1.0)
        m.gpus[0].comm.launch(10.0)
        m.barrier(compute_only=True)
        m.gpus[0].compute.launch(1.0)
        t2 = m.barrier(compute_only=True)
        assert t2 >= m.clock.now - 1e-12


class TestMetisInternals:
    def test_matching_is_symmetric(self, small_rmat):
        from repro.partition.metis_like import (
            _heavy_edge_matching,
            _to_weighted_adj,
        )

        rng = np.random.default_rng(0)
        adj = _to_weighted_adj(small_rmat)
        match = _heavy_edge_matching(adj, rng)
        for v in range(small_rmat.num_vertices):
            assert match[match[v]] == v  # partner's partner is v

    def test_matched_pairs_are_adjacent(self, small_rmat):
        from repro.partition.metis_like import (
            _heavy_edge_matching,
            _to_weighted_adj,
        )

        rng = np.random.default_rng(0)
        adj = _to_weighted_adj(small_rmat)
        match = _heavy_edge_matching(adj, rng)
        csr = adj
        for v in range(small_rmat.num_vertices):
            u = match[v]
            if u != v:
                assert u in csr.indices[csr.indptr[v]:csr.indptr[v + 1]]

    def test_coarsen_preserves_vertex_weight(self, small_rmat):
        from repro.partition.metis_like import (
            _coarsen,
            _heavy_edge_matching,
            _to_weighted_adj,
        )

        rng = np.random.default_rng(0)
        adj = _to_weighted_adj(small_rmat)
        vwgt = np.ones(small_rmat.num_vertices)
        match = _heavy_edge_matching(adj, rng)
        coarse, cw, mapping = _coarsen(adj, vwgt, match)
        assert cw.sum() == pytest.approx(vwgt.sum())
        assert coarse.shape[0] < small_rmat.num_vertices
        assert mapping.size == small_rmat.num_vertices

    def test_coarsen_halves_roughly(self, small_rmat):
        from repro.partition.metis_like import (
            _coarsen,
            _heavy_edge_matching,
            _to_weighted_adj,
        )

        rng = np.random.default_rng(0)
        adj = _to_weighted_adj(small_rmat)
        vwgt = np.ones(small_rmat.num_vertices)
        match = _heavy_edge_matching(adj, rng)
        coarse, _, _ = _coarsen(adj, vwgt, match)
        # hubs limit matching on power-law graphs; still >=15% shrink
        assert coarse.shape[0] <= 0.85 * small_rmat.num_vertices


@st.composite
def _graphs(draw):
    n = draw(st.integers(2, 20))
    m = draw(st.integers(1, 50))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return build_csr(
        CooGraph(n, np.asarray(src), np.asarray(dst)), undirected=True
    )


class TestValidatorsAcceptReference:
    """Validators must accept every correct output (no false alarms)."""

    @given(_graphs(), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_bfs_reference_always_valid(self, g, seed):
        src = seed % g.num_vertices
        levels, _ = bfs_reference(g, src)
        assert validate_bfs(g, src, levels) == []

    @given(_graphs(), st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_sssp_reference_always_valid(self, g, seed):
        gw = add_random_weights(g, 1, 9, seed=seed)
        src = seed % g.num_vertices
        dist, _ = sssp_reference(gw, src)
        assert validate_sssp(gw, src, dist) == []

    @given(_graphs())
    @settings(max_examples=30, deadline=None)
    def test_cc_reference_always_valid(self, g):
        assert validate_cc(g, cc_reference(g)) == []


class TestWeightedIo:
    def test_matrix_market_weighted_round_trip(self, tmp_path):
        from repro.graph.io import read_matrix_market, write_matrix_market

        g = add_random_weights(
            from_edges(5, [(0, 1), (1, 2), (3, 4)], undirected=False), 1, 9
        )
        p = tmp_path / "w.mtx"
        write_matrix_market(g, p)
        back = read_matrix_market(p)
        assert back.values is not None
        assert sorted(back.values.tolist()) == sorted(g.values.tolist())


class TestSweepDrivers:
    def test_sweep_handles_every_primitive(self):
        from repro.analysis.scaling import run_speedup_sweep

        for prim in ("sssp", "cc", "bc", "pr"):
            pts = run_speedup_sweep(
                prim, ["soc-LiveJournal1"], gpu_counts=(1,), src=1
            )
            assert len(pts) == 1
            assert pts[0].elapsed > 0
            assert pts[0].gteps > 0
