"""Vertex duplication: duplicate-all and duplicate-1-hop subgraphs."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.build import from_edges
from repro.partition import (
    DUPLICATE_1HOP,
    DUPLICATE_ALL,
    RandomPartitioner,
    build_subgraphs,
)
from repro.partition.base import PartitionResult


def pr_of(assignment, n):
    return PartitionResult.from_assignment(np.asarray(assignment), n)


@pytest.fixture
def gpart(small_rmat):
    return small_rmat, RandomPartitioner(0).partition(small_rmat, 4)


class TestDuplicateAll:
    def test_every_vertex_everywhere(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_ALL)
        for s in subs:
            assert s.num_vertices == g.num_vertices
            assert np.array_equal(s.local_to_global, np.arange(g.num_vertices))
            assert np.array_equal(s.host_local_id, np.arange(g.num_vertices))

    def test_edges_partitioned_exactly(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_ALL)
        assert sum(s.num_edges for s in subs) == g.num_edges

    def test_remote_vertices_have_no_edges(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_ALL)
        for s in subs:
            deg = np.diff(s.csr.row_offsets)
            remote = s.host_of_local != s.gpu_id
            assert np.all(deg[remote] == 0)

    def test_hosted_edges_match_original(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_ALL)
        for s in subs:
            hosted = np.flatnonzero(s.host_of_local == s.gpu_id)
            for v in hosted[:20]:
                assert np.array_equal(s.csr.neighbors(v), g.neighbors(v))

    def test_values_travel(self, weighted_rmat):
        pr = RandomPartitioner(0).partition(weighted_rmat, 2)
        subs = build_subgraphs(weighted_rmat, pr, DUPLICATE_ALL)
        for s in subs:
            assert s.csr.values is not None
            hosted = np.flatnonzero(s.host_of_local == s.gpu_id)
            v = hosted[0]
            assert np.array_equal(s.csr.edge_values(v), weighted_rmat.edge_values(v))


class TestDuplicate1Hop:
    def test_hosted_first_then_proxies(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        for s in subs:
            assert np.all(s.host_of_local[: s.num_hosted] == s.gpu_id)
            assert np.all(s.host_of_local[s.num_hosted:] != s.gpu_id)

    def test_proxies_are_exactly_remote_neighbors(self):
        g = from_edges(5, [(0, 1), (0, 2), (3, 4)])
        pr = pr_of([0, 0, 1, 1, 1], 2)
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        s0 = subs[0]
        # GPU0 hosts {0,1}; remote neighbor of those: {2}
        assert s0.num_hosted == 2
        assert s0.local_to_global.tolist() == [0, 1, 2]

    def test_edge_count_partition(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        assert sum(s.num_edges for s in subs) == g.num_edges

    def test_proxies_have_no_edges(self, gpart):
        g, pr = gpart
        for s in build_subgraphs(g, pr, DUPLICATE_1HOP):
            deg = np.diff(s.csr.row_offsets)
            assert np.all(deg[s.num_hosted:] == 0)

    def test_memory_below_duplicate_all(self, gpart):
        """Section III-C: duplicate-1-hop uses less memory."""
        g, pr = gpart
        mem_all = sum(
            s.memory_bytes() for s in build_subgraphs(g, pr, DUPLICATE_ALL)
        )
        mem_1hop = sum(
            s.memory_bytes() for s in build_subgraphs(g, pr, DUPLICATE_1HOP)
        )
        assert mem_1hop < mem_all

    def test_adjacency_preserved_through_renumbering(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        for s in subs:
            for lv in range(min(s.num_hosted, 10)):
                gv = s.local_to_global[lv]
                got = sorted(s.local_to_global[s.csr.neighbors(lv)].tolist())
                assert got == sorted(g.neighbors(gv).tolist())

    def test_host_local_id_is_conversion(self, gpart):
        g, pr = gpart
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        for s in subs:
            assert np.array_equal(
                s.host_local_id, pr.conversion_table[s.local_to_global]
            )

    def test_is_hosted_mask(self, gpart):
        g, pr = gpart
        s = build_subgraphs(g, pr, DUPLICATE_1HOP)[0]
        ids = np.arange(s.num_vertices)
        assert np.array_equal(s.is_hosted(ids), s.hosted_mask())


class TestValidation:
    def test_unknown_strategy(self, gpart):
        g, pr = gpart
        with pytest.raises(PartitionError):
            build_subgraphs(g, pr, "duplicate-2-hop")

    def test_size_mismatch(self, small_rmat):
        pr = pr_of([0, 1], 2)
        with pytest.raises(PartitionError):
            build_subgraphs(small_rmat, pr, DUPLICATE_ALL)

    def test_single_gpu_complete(self, small_rmat):
        pr = pr_of([0] * small_rmat.num_vertices, 1)
        (s,) = build_subgraphs(small_rmat, pr, DUPLICATE_1HOP)
        assert s.num_hosted == small_rmat.num_vertices
        assert s.num_edges == small_rmat.num_edges
