"""Partitioners: tables, balance, locality behavior."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.build import from_edges
from repro.partition import (
    BiasedRandomPartitioner,
    MetisLikePartitioner,
    RandomPartitioner,
    make_partitioner,
)
from repro.partition.base import PartitionResult
from repro.partition.border import border_stats, edge_cut


class TestPartitionResult:
    def test_from_assignment_tables(self):
        pr = PartitionResult.from_assignment(np.array([0, 1, 0, 1, 0]), 2)
        assert pr.partition_table.tolist() == [0, 1, 0, 1, 0]
        # conversion: contiguous local ids per GPU in global order
        assert pr.conversion_table.tolist() == [0, 0, 1, 1, 2]
        pr.validate()

    def test_hosted_by(self):
        pr = PartitionResult.from_assignment(np.array([0, 1, 0]), 2)
        assert pr.hosted_by(0).tolist() == [0, 2]
        assert pr.hosted_by(1).tolist() == [1]

    def test_counts(self):
        pr = PartitionResult.from_assignment(np.array([0, 1, 0, 2]), 3)
        assert pr.counts().tolist() == [2, 1, 1]

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitionError):
            PartitionResult.from_assignment(np.array([0, 3]), 2)

    def test_rejects_2d(self):
        with pytest.raises(PartitionError):
            PartitionResult.from_assignment(np.zeros((2, 2), np.int32), 2)

    def test_empty_partition_allowed(self):
        pr = PartitionResult.from_assignment(np.zeros(4, np.int32), 3)
        assert pr.counts().tolist() == [4, 0, 0]
        pr.validate()


@pytest.mark.parametrize(
    "name", ["random", "biased-random", "metis"]
)
class TestAllPartitioners:
    def test_valid_tables(self, name, small_rmat):
        pr = make_partitioner(name).partition(small_rmat, 4)
        pr.validate()
        assert pr.num_vertices == small_rmat.num_vertices

    def test_single_gpu_trivial(self, name, small_rmat):
        pr = make_partitioner(name).partition(small_rmat, 1)
        assert np.all(pr.partition_table == 0)

    def test_deterministic(self, name, small_rmat):
        a = make_partitioner(name, seed=3).partition(small_rmat, 4)
        b = make_partitioner(name, seed=3).partition(small_rmat, 4)
        assert np.array_equal(a.partition_table, b.partition_table)

    def test_load_balance(self, name, small_rmat):
        pr = make_partitioner(name).partition(small_rmat, 4)
        stats = border_stats(small_rmat, pr)
        assert stats.load_imbalance < 1.15

    def test_all_gpus_used(self, name, small_rmat):
        pr = make_partitioner(name).partition(small_rmat, 4)
        assert np.all(pr.counts() > 0)

    def test_rejects_zero_gpus(self, name, small_rmat):
        with pytest.raises(PartitionError):
            make_partitioner(name).partition(small_rmat, 0)


class TestRandom:
    def test_near_perfect_balance(self, small_rmat):
        """Section V-C: random achieves excellent load balancing."""
        pr = RandomPartitioner(0).partition(small_rmat, 3)
        counts = pr.counts()
        assert counts.max() - counts.min() <= 1


class TestBiasedRandom:
    def test_reduces_border_on_local_graph(self, small_web):
        """Biased random should find some web-graph locality."""
        rand = border_stats(
            small_web, RandomPartitioner(0).partition(small_web, 4)
        )
        biased = border_stats(
            small_web, BiasedRandomPartitioner(0).partition(small_web, 4)
        )
        assert biased.total_border <= rand.total_border * 1.02

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BiasedRandomPartitioner(bias=1.5)
        with pytest.raises(ValueError):
            BiasedRandomPartitioner(imbalance=0.5)


class TestMetisLike:
    def test_cuts_structured_graph_well(self):
        """Two cliques joined by one edge must be split at the bridge."""
        edges = []
        for a in range(8):
            for b in range(a + 1, 8):
                edges.append((a, b))
                edges.append((a + 8, b + 8))
        edges.append((0, 8))
        g = from_edges(16, edges)
        pr = MetisLikePartitioner(seed=1).partition(g, 2)
        assert edge_cut(g, pr) == 2  # the bridge, both directions

    def test_beats_random_on_road(self, small_road):
        rand_cut = edge_cut(
            small_road, RandomPartitioner(0).partition(small_road, 4)
        )
        metis_cut = edge_cut(
            small_road, MetisLikePartitioner(0).partition(small_road, 4)
        )
        assert metis_cut < rand_cut * 0.5

    def test_marginal_on_power_law(self, small_rmat):
        """Fig. 2's lesson: Metis wins little on power-law graphs."""
        rand_cut = edge_cut(
            small_rmat, RandomPartitioner(0).partition(small_rmat, 4)
        )
        metis_cut = edge_cut(
            small_rmat, MetisLikePartitioner(0).partition(small_rmat, 4)
        )
        assert metis_cut > rand_cut * 0.5  # no dramatic win

    def test_handles_disconnected(self, two_components_graph):
        pr = MetisLikePartitioner(0).partition(two_components_graph, 2)
        pr.validate()


class TestFactory:
    def test_aliases(self):
        assert make_partitioner("biasrandom").name == "biased-random"
        assert make_partitioner("biased_random").name == "biased-random"

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_partitioner("spectral")
