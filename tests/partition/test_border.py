"""Border sets and edge cuts — the Section V-C distinction."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.partition.base import PartitionResult
from repro.partition.border import (
    border_matrix,
    border_stats,
    edge_cut,
)


def pr_of(assignment, n):
    return PartitionResult.from_assignment(np.asarray(assignment), n)


class TestEdgeCut:
    def test_no_cut_when_together(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert edge_cut(g, pr_of([0, 0, 1, 1], 2)) == 0

    def test_full_cut(self):
        g = from_edges(2, [(0, 1)])
        assert edge_cut(g, pr_of([0, 1], 2)) == 2  # both directions

    def test_single_gpu_zero(self, small_rmat):
        assert edge_cut(small_rmat, pr_of([0] * small_rmat.num_vertices, 1)) == 0


class TestBorderMatrix:
    def test_simple_cross(self):
        g = from_edges(3, [(0, 1), (0, 2)])
        mat = border_matrix(g, pr_of([0, 1, 1], 2))
        # GPU0 -> GPU1 reaches vertices {1, 2}; GPU1 -> GPU0 reaches {0}
        assert mat[0, 1] == 2
        assert mat[1, 0] == 1
        assert mat[0, 0] == 0 and mat[1, 1] == 0

    def test_multi_edges_count_once(self):
        """The Section V-C point: several cut edges to the same remote
        vertex transmit one value — the border counts vertices."""
        g = from_edges(4, [(0, 3), (1, 3), (2, 3)])
        mat = border_matrix(g, pr_of([0, 0, 0, 1], 2))
        assert mat[0, 1] == 1  # vertex 3 only, despite 3 cut edges
        assert edge_cut(g, pr_of([0, 0, 0, 1], 2)) == 6

    def test_no_cross_edges(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        mat = border_matrix(g, pr_of([0, 0, 1, 1], 2))
        assert mat.sum() == 0

    def test_diagonal_always_zero(self, small_rmat):
        from repro.partition import RandomPartitioner

        pr = RandomPartitioner(0).partition(small_rmat, 4)
        mat = border_matrix(small_rmat, pr)
        assert np.all(np.diag(mat) == 0)

    def test_border_bounded_by_hosted(self, small_rmat):
        """|B_{i,j}| can never exceed |L_j|."""
        from repro.partition import RandomPartitioner

        pr = RandomPartitioner(0).partition(small_rmat, 4)
        mat = border_matrix(small_rmat, pr)
        counts = pr.counts()
        for j in range(4):
            assert np.all(mat[:, j] <= counts[j])


class TestBorderStats:
    def test_fields(self, small_rmat):
        from repro.partition import RandomPartitioner

        pr = RandomPartitioner(0).partition(small_rmat, 4)
        st = border_stats(small_rmat, pr)
        assert st.total_border > 0
        assert st.max_border <= st.total_border
        assert st.edge_cut >= st.total_border  # cuts >= distinct border
        assert st.load_imbalance >= 1.0

    def test_imbalance_of_skewed(self):
        g = from_edges(4, [(0, 1)])
        st = border_stats(g, pr_of([0, 0, 0, 1], 2))
        assert st.load_imbalance == pytest.approx(1.5)
