"""CooGraph: construction, cleanup passes, symmetrization."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import CooGraph
from repro.types import ID64


def coo(n, pairs, values=None, **kw):
    arr = np.asarray(pairs).reshape(-1, 2)
    return CooGraph(n, arr[:, 0], arr[:, 1], values=values, **kw)


class TestConstruction:
    def test_basic(self):
        g = coo(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_empty(self):
        g = CooGraph(5, np.empty(0, np.int64), np.empty(0, np.int64))
        assert g.num_edges == 0
        assert g.num_vertices == 5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphFormatError):
            CooGraph(3, np.array([0, 1]), np.array([1]))

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphFormatError):
            coo(3, [(0, 3)])
        with pytest.raises(GraphFormatError):
            coo(3, [(-1, 0)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphFormatError):
            CooGraph(-1, np.empty(0, np.int64), np.empty(0, np.int64))

    def test_rejects_bad_values_length(self):
        with pytest.raises(GraphFormatError):
            coo(3, [(0, 1), (1, 2)], values=np.array([1.0]))

    def test_dtypes_follow_id_config(self):
        g = coo(3, [(0, 1)], ids=ID64)
        assert g.src.dtype == np.int64
        assert g.dst.dtype == np.int64


class TestCleanup:
    def test_remove_self_loops(self):
        g = coo(3, [(0, 0), (0, 1), (1, 1), (1, 2)])
        out = g.remove_self_loops()
        assert out.num_edges == 2
        assert not np.any(out.src == out.dst)

    def test_remove_duplicates_keeps_first_value(self):
        g = coo(3, [(0, 1), (0, 1), (1, 2)], values=np.array([5.0, 9.0, 2.0]))
        out = g.remove_duplicates()
        assert out.num_edges == 2
        idx = np.flatnonzero((out.src == 0) & (out.dst == 1))
        assert out.values[idx[0]] == 5.0

    def test_remove_duplicates_preserves_order(self):
        g = coo(4, [(2, 3), (0, 1), (2, 3), (1, 2)])
        out = g.remove_duplicates()
        assert list(zip(out.src.tolist(), out.dst.tolist())) == [
            (2, 3),
            (0, 1),
            (1, 2),
        ]

    def test_remove_duplicates_empty(self):
        g = coo(3, np.empty((0, 2), np.int64))
        assert g.remove_duplicates().num_edges == 0


class TestUndirected:
    def test_both_directions_present(self):
        g = coo(3, [(0, 1), (1, 2)]).to_undirected()
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert not g.directed

    def test_idempotent(self):
        g = coo(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).to_undirected()
        g2 = g.to_undirected()
        assert g2.num_edges == g.num_edges

    def test_drops_self_loops(self):
        g = coo(3, [(0, 0), (0, 1)]).to_undirected()
        assert g.num_edges == 2

    def test_merges_antiparallel_edges(self):
        g = coo(2, [(0, 1), (1, 0)]).to_undirected()
        assert g.num_edges == 2  # one edge stored in both directions


class TestTransforms:
    def test_reverse(self):
        g = coo(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert r.src.tolist() == [1, 2]
        assert r.dst.tolist() == [0, 1]

    def test_reverse_preserves_values(self):
        g = coo(3, [(0, 1), (1, 2)], values=np.array([3.0, 4.0]))
        assert g.reverse().values.tolist() == [3.0, 4.0]

    def test_with_values(self):
        g = coo(3, [(0, 1), (1, 2)])
        w = g.with_values(np.array([1.5, 2.5]))
        assert w.values.tolist() == [1.5, 2.5]
        assert g.values is None  # original untouched

    def test_copy_is_deep(self):
        g = coo(3, [(0, 1)])
        c = g.copy()
        c.src[0] = 2
        assert g.src[0] == 0
