"""CsrGraph: structure, validation, conversions, ID widths."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import CooGraph
from repro.graph.csr import CsrGraph
from repro.graph.build import from_edges
from repro.types import ID32, ID64, ID32_V64E


def coo_of(n, pairs, **kw):
    arr = np.asarray(pairs).reshape(-1, 2)
    return CooGraph(n, arr[:, 0], arr[:, 1], **kw)


class TestFromCoo:
    def test_adjacency(self):
        g = CsrGraph.from_coo(coo_of(4, [(0, 1), (0, 2), (2, 3), (1, 3)]))
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [3]
        assert g.neighbors(3).tolist() == []

    def test_neighbors_sorted(self):
        g = CsrGraph.from_coo(coo_of(4, [(0, 3), (0, 1), (0, 2)]))
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_unsorted_mode_keeps_input_order(self):
        g = CsrGraph.from_coo(
            coo_of(4, [(0, 3), (0, 1), (0, 2)]), sort_neighbors=False
        )
        assert g.neighbors(0).tolist() == [3, 1, 2]

    def test_values_follow_edges(self):
        c = coo_of(3, [(0, 2), (0, 1)])
        c = c.with_values(np.array([9.0, 4.0]))
        g = CsrGraph.from_coo(c)
        # neighbors sorted => (0,1) first with value 4
        assert g.edge_values(0).tolist() == [4.0, 9.0]

    def test_empty_graph(self):
        g = CsrGraph.from_coo(coo_of(0, np.empty((0, 2), np.int64)))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = CsrGraph.from_coo(coo_of(5, [(0, 1)]))
        assert g.out_degree().tolist() == [1, 0, 0, 0, 0]


class TestRoundTrip:
    def test_coo_csr_coo(self):
        pairs = [(0, 1), (1, 2), (2, 0), (2, 3), (0, 3)]
        g = CsrGraph.from_coo(coo_of(4, pairs))
        back = g.to_coo()
        orig = sorted(pairs)
        got = sorted(zip(back.src.tolist(), back.dst.tolist()))
        assert got == orig


class TestValidation:
    def test_bad_offsets_length(self):
        with pytest.raises(GraphFormatError):
            CsrGraph(3, np.array([0, 1]), np.array([1]))

    def test_decreasing_offsets(self):
        with pytest.raises(GraphFormatError):
            CsrGraph(2, np.array([0, 2, 1]), np.array([0, 1]))

    def test_nonzero_first_offset(self):
        with pytest.raises(GraphFormatError):
            CsrGraph(2, np.array([1, 1, 2]), np.array([0, 1]))

    def test_col_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CsrGraph(2, np.array([0, 1, 2]), np.array([0, 5]))

    def test_col_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            CsrGraph(2, np.array([0, 1, 2]), np.array([0, 1, 1]))


class TestQueries:
    def test_degrees(self):
        g = from_edges(4, [(0, 1), (0, 2), (0, 3)], undirected=False)
        assert g.out_degree().tolist() == [3, 0, 0, 0]
        assert g.out_degree(np.array([0])).tolist() == [3]

    def test_average_degree(self):
        g = from_edges(4, [(0, 1), (2, 3)], undirected=True)
        assert g.average_degree() == pytest.approx(1.0)

    def test_memory_bytes_counts_arrays(self):
        g = from_edges(4, [(0, 1), (1, 2)], undirected=False)
        expected = g.row_offsets.nbytes + g.col_indices.nbytes
        assert g.memory_bytes() == expected


class TestCsc:
    def test_undirected_csc_is_self(self):
        g = from_edges(4, [(0, 1), (1, 2)], undirected=True)
        assert g.csc is g

    def test_directed_csc_reverses(self):
        g = from_edges(3, [(0, 1), (1, 2)], undirected=False)
        csc = g.csc
        assert csc.neighbors(1).tolist() == [0]
        assert csc.neighbors(2).tolist() == [1]
        assert csc.neighbors(0).tolist() == []

    def test_csc_cached(self):
        g = from_edges(3, [(0, 1)], undirected=False)
        assert g.csc is g.csc


class TestIdWidths:
    def test_with_ids_converts_dtypes(self):
        g = from_edges(4, [(0, 1), (1, 2)]).with_ids(ID64)
        assert g.col_indices.dtype == np.int64
        assert g.row_offsets.dtype == np.int64

    def test_mixed_widths(self):
        g = from_edges(4, [(0, 1)]).with_ids(ID32_V64E)
        assert g.col_indices.dtype == np.int32
        assert g.row_offsets.dtype == np.int64

    def test_64bit_doubles_memory(self):
        g32 = from_edges(64, [(i, (i + 1) % 64) for i in range(64)])
        g64 = g32.with_ids(ID64)
        assert g64.memory_bytes() == 2 * g32.memory_bytes()

    def test_preserves_structure(self):
        g32 = from_edges(5, [(0, 1), (1, 2), (3, 4)])
        g64 = g32.with_ids(ID64)
        assert np.array_equal(
            g64.col_indices.astype(np.int64),
            g32.col_indices.astype(np.int64),
        )
