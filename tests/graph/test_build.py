"""Build pipeline: cleanup recipe, weights, special graphs."""

import numpy as np
import pytest

from repro.graph.build import (
    add_random_weights,
    build_csr,
    from_edges,
    line_graph_path,
)
from repro.graph.coo import CooGraph


class TestBuildCsr:
    def test_paper_recipe(self):
        """Undirected, self-loops and duplicates removed (Section VII-A)."""
        coo = CooGraph(
            4,
            np.array([0, 0, 0, 1, 2]),
            np.array([1, 1, 0, 2, 2]),
        )
        g = build_csr(coo)
        assert not g.directed
        back = g.to_coo()
        pairs = list(zip(back.src.tolist(), back.dst.tolist()))
        assert len(pairs) == len(set(pairs))  # no dups
        assert all(a != b for a, b in pairs)  # no loops

    def test_directed_mode(self):
        coo = CooGraph(3, np.array([0, 0]), np.array([1, 1]))
        g = build_csr(coo, undirected=False)
        assert g.directed
        assert g.num_edges == 1  # dedup still applied

    def test_keep_duplicates(self):
        coo = CooGraph(3, np.array([0, 0]), np.array([1, 1]))
        g = build_csr(coo, undirected=False, remove_duplicates=False)
        assert g.num_edges == 2


class TestFromEdges:
    def test_accepts_list(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 4  # both directions

    def test_accepts_array(self):
        g = from_edges(3, np.array([[0, 1]]))
        assert g.num_edges == 2

    def test_empty_edges(self):
        g = from_edges(4, [])
        assert g.num_edges == 0
        assert g.num_vertices == 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            from_edges(3, np.array([0, 1, 2]))


class TestWeights:
    def test_range(self):
        g = add_random_weights(from_edges(50, [(i, i + 1) for i in range(49)]),
                               0, 64, seed=1)
        assert g.values.min() >= 0
        assert g.values.max() < 64

    def test_deterministic(self):
        base = from_edges(10, [(i, i + 1) for i in range(9)])
        a = add_random_weights(base, 1, 64, seed=5)
        b = add_random_weights(base, 1, 64, seed=5)
        assert np.array_equal(a.values, b.values)

    def test_does_not_mutate_input(self):
        base = from_edges(4, [(0, 1)])
        add_random_weights(base, 1, 10)
        assert base.values is None


class TestLinePath:
    def test_structure(self):
        g = line_graph_path(6)
        assert g.num_vertices == 6
        assert g.num_edges == 10  # 5 undirected edges both directions
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(3).tolist() == [2, 4]

    def test_minimal_iteration_workload(self):
        """Each BFS level visits exactly one new vertex (Section V-B)."""
        from repro.graph.properties import bfs_levels

        g = line_graph_path(100)
        levels = bfs_levels(g, 0)
        counts = np.bincount(levels[levels >= 0])
        assert np.all(counts == 1)

    def test_tiny(self):
        assert line_graph_path(1).num_edges == 0
        assert line_graph_path(2).num_edges == 2
