"""Graph property measurement: BFS levels, diameter, degree stats."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.properties import (
    approximate_diameter,
    bfs_levels,
    degree_stats,
    largest_component_fraction,
)


class TestBfsLevels:
    def test_path(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert levels.tolist() == list(range(10))

    def test_from_middle(self, path_graph):
        levels = bfs_levels(path_graph, 5)
        assert levels[0] == 5
        assert levels[9] == 4

    def test_star(self, star_graph):
        levels = bfs_levels(star_graph, 0)
        assert levels[0] == 0
        assert np.all(levels[1:] == 1)

    def test_disconnected(self, two_components_graph):
        levels = bfs_levels(two_components_graph, 0)
        assert np.all(levels[:3] >= 0)
        assert np.all(levels[3:] == -1)

    def test_matches_networkx(self, small_rmat):
        nx = pytest.importorskip("networkx")
        g = small_rmat
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        back = g.to_coo()
        G.add_edges_from(zip(back.src.tolist(), back.dst.tolist()))
        ours = bfs_levels(g, 3)
        theirs = nx.single_source_shortest_path_length(G, 3)
        for v in range(g.num_vertices):
            if v in theirs:
                assert ours[v] == theirs[v]
            else:
                assert ours[v] == -1

    def test_single_vertex(self):
        g = from_edges(1, [])
        assert bfs_levels(g, 0).tolist() == [0]


class TestDiameter:
    def test_path_diameter(self, path_graph):
        # approximate diameter is a lower bound; with several sources the
        # path's true diameter (9) is found from an endpoint
        d = approximate_diameter(path_graph, num_sources=16, seed=1)
        assert 5 <= d <= 9

    def test_star_diameter(self, star_graph):
        assert approximate_diameter(star_graph, 8) == 2

    def test_empty(self):
        g = from_edges(0, [])
        assert approximate_diameter(g) == 0


class TestComponents:
    def test_connected(self, path_graph):
        assert largest_component_fraction(path_graph) == 1.0

    def test_two_components(self, two_components_graph):
        assert largest_component_fraction(two_components_graph) == 0.5


class TestDegreeStats:
    def test_uniform(self, path_graph):
        s = degree_stats(path_graph)
        assert s.maximum == 2
        assert not s.is_power_law_like

    def test_star(self, star_graph):
        s = degree_stats(star_graph)
        assert s.maximum == 15
        assert s.mean == pytest.approx(30 / 16)

    def test_empty(self):
        s = degree_stats(from_edges(0, []))
        assert s.mean == 0.0
        assert s.gini == 0.0

    def test_gini_bounds(self, small_rmat):
        s = degree_stats(small_rmat)
        assert 0.0 <= s.gini <= 1.0
