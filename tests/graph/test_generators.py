"""Generators: determinism, family structure properties."""

import numpy as np
import pytest

from repro.graph.generators import (
    MERRILL_RMAT,
    PAPER_RMAT,
    RmatParams,
    generate_rmat,
    generate_road,
    generate_social,
    generate_web,
    rmat_coo,
    road_coo,
)
from repro.graph.properties import (
    approximate_diameter,
    degree_stats,
    largest_component_fraction,
)


class TestRmatParams:
    def test_paper_params(self):
        assert PAPER_RMAT.a == 0.57
        assert (PAPER_RMAT.b, PAPER_RMAT.c, PAPER_RMAT.d) == (0.19, 0.19, 0.05)

    def test_merrill_params(self):
        assert MERRILL_RMAT.a == 0.45

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            RmatParams(0.5, 0.5, 0.5, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RmatParams(1.2, -0.1, -0.05, -0.05)


class TestRmat:
    def test_sizes(self):
        c = rmat_coo(8, 4, seed=1)
        assert c.num_vertices == 256
        assert c.num_edges == 1024

    def test_deterministic(self):
        a = rmat_coo(8, 4, seed=9)
        b = rmat_coo(8, 4, seed=9)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_seed_changes_graph(self):
        a = rmat_coo(8, 4, seed=1)
        b = rmat_coo(8, 4, seed=2)
        assert not np.array_equal(a.src, b.src)

    def test_power_law_degrees(self):
        g = generate_rmat(11, 16, seed=1)
        stats = degree_stats(g)
        assert stats.is_power_law_like

    def test_skew_follows_params(self):
        # with a = 0.57 low-numbered vertices get most edges
        c = rmat_coo(10, 16, seed=1)
        low = int((c.src < 256).sum())
        assert low > c.num_edges * 0.4

    def test_undirected_output(self):
        g = generate_rmat(8, 4, seed=1)
        assert not g.directed
        # symmetric adjacency
        back = g.to_coo()
        pairs = set(zip(back.src.tolist(), back.dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_zero_scale(self):
        c = rmat_coo(0, 3)
        assert c.num_vertices == 1

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat_coo(-1, 3)

    def test_low_diameter(self):
        g = generate_rmat(11, 16, seed=1)
        assert approximate_diameter(g, 4) <= 8


class TestSocial:
    def test_power_law(self):
        g = generate_social(1024, 16, seed=3)
        assert degree_stats(g).is_power_law_like

    def test_giant_component(self):
        g = generate_social(1024, 16, seed=3)
        assert largest_component_fraction(g) > 0.9

    def test_low_diameter(self):
        g = generate_social(1024, 16, seed=3)
        assert approximate_diameter(g, 4) <= 6

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            generate_social(100, 4, gamma=0.9)

    def test_deterministic(self):
        a = generate_social(256, 8, seed=5)
        b = generate_social(256, 8, seed=5)
        assert np.array_equal(a.col_indices, b.col_indices)


class TestWeb:
    def test_locality_beats_social(self):
        """Web crawls have intra-host locality social graphs lack."""
        from repro.partition import RandomPartitioner, MetisLikePartitioner
        from repro.partition.border import edge_cut

        web = generate_web(1024, 12, seed=11)
        rand_cut = edge_cut(web, RandomPartitioner(0).partition(web, 4))
        metis_cut = edge_cut(web, MetisLikePartitioner(0).partition(web, 4))
        # a locality-seeking partitioner must find real structure here
        assert metis_cut < rand_cut * 0.9

    def test_deterministic(self):
        a = generate_web(512, 8, seed=2)
        b = generate_web(512, 8, seed=2)
        assert np.array_equal(a.col_indices, b.col_indices)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_web(0, 8)


class TestRoad:
    def test_high_diameter(self):
        g = generate_road(32, 32, seed=7)
        rmat = generate_rmat(10, 8, seed=7)
        assert approximate_diameter(g, 4) > 4 * approximate_diameter(rmat, 4)

    def test_low_uniform_degree(self):
        g = generate_road(32, 32, seed=7)
        stats = degree_stats(g)
        assert stats.mean < 5
        assert stats.maximum <= 8
        assert not stats.is_power_law_like

    def test_grid_dimensions(self):
        g = generate_road(10, 7, shortcut_fraction=0.0, delete_fraction=0.0)
        assert g.num_vertices == 70
        # interior grid edge count: 9*7 + 10*6 undirected, stored twice
        assert g.num_edges == 2 * (9 * 7 + 10 * 6)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            road_coo(0, 5)
