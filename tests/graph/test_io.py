"""Edge-list and MatrixMarket I/O round trips."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = from_edges(5, [(0, 1), (1, 2), (3, 4)], undirected=False)
        p = tmp_path / "g.el"
        write_edge_list(g, p)
        back = read_edge_list(p)
        assert back.num_vertices == 5
        got = sorted(zip(back.src.tolist(), back.dst.tolist()))
        orig = sorted(zip(g.to_coo().src.tolist(), g.to_coo().dst.tolist()))
        assert got == orig

    def test_weighted_round_trip(self, tmp_path):
        from repro.graph.build import add_random_weights

        g = add_random_weights(
            from_edges(4, [(0, 1), (2, 3)], undirected=False), 1, 10
        )
        p = tmp_path / "w.el"
        write_edge_list(g, p)
        back = read_edge_list(p, weighted=True)
        assert back.values is not None
        assert back.values.size == g.num_edges

    def test_comments_skipped(self):
        buf = io.StringIO("# header\n0 1\n# mid\n1 2\n")
        g = read_edge_list(buf)
        assert g.num_edges == 2

    def test_explicit_vertex_count(self):
        buf = io.StringIO("0 1\n")
        g = read_edge_list(buf, num_vertices=10)
        assert g.num_vertices == 10

    def test_bad_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0\n"))

    def test_missing_weight_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0 1\n"), weighted=True)

    def test_empty_file(self):
        g = read_edge_list(io.StringIO(""), num_vertices=3)
        assert g.num_edges == 0


class TestMatrixMarket:
    def test_round_trip(self, tmp_path):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)], undirected=False)
        p = tmp_path / "g.mtx"
        write_matrix_market(g, p)
        back = read_matrix_market(p)
        assert back.num_vertices == 4
        assert back.num_edges == 3

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "3 2\n"
        )
        g = read_matrix_market(io.StringIO(text))
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert pairs == {(1, 0), (0, 1), (2, 1), (1, 2)}

    def test_symmetric_diagonal_not_doubled(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "2 2 2\n"
            "1 1\n"
            "2 1\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 3  # (0,0) once, (1,0) and (0,1)

    def test_real_values(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.values.tolist() == [3.5]

    def test_rejects_rectangular(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO(text))

    def test_rejects_missing_header(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("3 3 0\n"))

    def test_rejects_complex_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n2 2 0\n"
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO(text))

    def test_comment_lines(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 1


class TestNpzFormat:
    def test_round_trip_unweighted(self, tmp_path):
        from repro.graph.binformat import load_npz, save_npz

        g = from_edges(6, [(0, 1), (2, 3), (4, 5)])
        p = tmp_path / "g.npz"
        save_npz(g, p)
        back = load_npz(p)
        assert back.num_vertices == g.num_vertices
        assert np.array_equal(back.row_offsets, g.row_offsets)
        assert np.array_equal(back.col_indices, g.col_indices)
        assert back.directed == g.directed
        assert back.values is None

    def test_round_trip_weighted_and_ids(self, tmp_path):
        from repro.graph.binformat import load_npz, save_npz
        from repro.graph.build import add_random_weights
        from repro.types import ID64

        g = add_random_weights(
            from_edges(5, [(0, 1), (1, 2)]), 1, 9
        ).with_ids(ID64)
        p = tmp_path / "g64.npz"
        save_npz(g, p)
        back = load_npz(p)
        assert back.ids == g.ids
        assert np.array_equal(back.values, g.values)

    def test_version_check(self, tmp_path):
        import numpy as np2
        from repro.errors import GraphFormatError
        from repro.graph.binformat import load_npz

        p = tmp_path / "bad.npz"
        np2.savez(p, format_version=np2.int64(99))
        with pytest.raises(GraphFormatError):
            load_npz(p)

    def test_loaded_graph_runs(self, tmp_path, small_rmat, machine2):
        from repro.baselines.reference import bfs_reference
        from repro.graph.binformat import load_npz, save_npz
        from repro.primitives import run_bfs

        p = tmp_path / "rmat.npz"
        save_npz(small_rmat, p)
        g = load_npz(p)
        ref, _ = bfs_reference(small_rmat, 3)
        labels, _, _ = run_bfs(g, machine2, src=3)
        assert np.array_equal(labels, ref)
