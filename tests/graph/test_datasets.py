"""Dataset registry: completeness vs the paper's Table II, family shapes."""

import numpy as np
import pytest

from repro.graph import datasets
from repro.graph.properties import degree_stats
from repro.types import ID64

TABLE_II = [
    "soc-LiveJournal1",
    "hollywood-2009",
    "soc-orkut",
    "soc-sinaweibo",
    "soc-twitter-2010",
    "indochina-2004",
    "uk-2002",
    "arabic-2005",
    "uk-2005",
    "webbase-2001",
    "rmat_n20_512",
    "rmat_n21_256",
    "rmat_n22_128",
    "rmat_n23_64",
    "rmat_n24_32",
    "rmat_n25_16",
]

COMPARISON_GRAPHS = [
    "kron_n24_32",
    "kron_n23_16",
    "kron_n25_16",
    "kron_n25_32",
    "kron_n23_32",
    "com-orkut",
    "com-Friendster",
    "coPapersCiteseer",
    "twitter-mpi",
    "twitter-rv",
    "friendster",
    "sk-2005",
]


class TestRegistry:
    def test_every_table2_dataset_present(self):
        for name in TABLE_II:
            assert name in datasets.REGISTRY, name

    def test_every_comparison_graph_present(self):
        for name in COMPARISON_GRAPHS:
            assert name in datasets.REGISTRY, name

    def test_road_network_present(self):
        assert "road-grid" in datasets.names("road")

    def test_family_filter(self):
        assert set(datasets.names("soc")) <= set(datasets.names())
        for n in datasets.names("rmat"):
            assert datasets.family_of(n) == "rmat"

    def test_spec_lookup(self):
        s = datasets.spec("soc-orkut")
        assert s.paper_vertices == pytest.approx(3.00e6)
        assert s.family == "soc"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            datasets.spec("no-such-graph")


class TestLoading:
    def test_load_caches(self):
        a = datasets.load("soc-LiveJournal1")
        b = datasets.load("soc-LiveJournal1")
        assert a is b

    def test_load_with_ids(self):
        g = datasets.load("soc-LiveJournal1", ids=ID64)
        assert g.col_indices.dtype == np.int64

    @pytest.mark.parametrize("name", ["soc-orkut", "uk-2002", "rmat_n25_16"])
    def test_nonempty_and_undirected(self, name):
        g = datasets.load(name)
        assert g.num_edges > 0
        assert not g.directed

    def test_soc_graphs_are_power_law(self):
        assert degree_stats(datasets.load("soc-orkut")).is_power_law_like

    def test_rmat_graphs_are_power_law(self):
        assert degree_stats(datasets.load("rmat_n24_32")).is_power_law_like

    def test_road_is_not_power_law(self):
        assert not degree_stats(datasets.load("road-grid")).is_power_law_like

    def test_edge_vertex_ratio_tracks_paper(self):
        """Stand-ins should roughly preserve the original |E|/|V| regime."""
        for name in ["soc-orkut", "rmat_n24_32", "uk-2002"]:
            s = datasets.spec(name)
            g = datasets.load(name)
            paper_ratio = s.paper_edges / s.paper_vertices
            ours = g.num_edges / g.num_vertices
            assert ours == pytest.approx(paper_ratio, rel=1.0), name


class TestMachineScale:
    def test_scale_is_paper_ratio(self):
        g = datasets.load("soc-orkut")
        s = datasets.machine_scale("soc-orkut")
        assert s == pytest.approx(3.00e6 / g.num_vertices)

    def test_scales_are_large(self):
        """Every stand-in is a substantial downscale (>= 2^6)."""
        for name in TABLE_II:
            assert datasets.machine_scale(name) >= 64, name


class TestComparisonExtras:
    def test_merrill_rmat_dataset(self):
        """The B40C comparison graph uses Merrill's rmat parameters."""
        g = datasets.load("rmat_2Mv_128Me")
        assert g.num_edges > 0
        s = datasets.spec("rmat_2Mv_128Me")
        assert "Merrill" in s.notes

    def test_road_grid_is_long_and_thin(self):
        """The road stand-in must keep a high diameter (~paper's regime)."""
        from repro.graph.properties import approximate_diameter

        g = datasets.load("road-grid")
        assert approximate_diameter(g, 2) > 400

    def test_float32_values_config(self):
        from repro.graph.build import add_random_weights
        from repro.types import ID32_F32

        g = datasets.load("soc-LiveJournal1", ids=ID32_F32)
        gw = add_random_weights(g, 1, 64)
        assert gw.values.dtype == np.float32
