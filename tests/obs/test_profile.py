"""BSP term mapping and the per-operator hot-spot table."""

from repro.obs import COMM_TRACK, Tracer, profile_rows, render_profile, term_of_span
from repro.primitives import run_bfs
from repro.sim.machine import Machine


class TestTermMapping:
    def test_terms(self):
        t = Tracer()
        cases = [
            (t.span("op", "advance", 0.0, 1.0, track=0), "W"),
            (t.span("op", "compute", 0.0, 1.0, track=0), "W"),
            (t.span("comm", "send", 0.0, 1.0, track=COMM_TRACK), "H"),
            (t.span("op", "split", 0.0, 1.0, track=0), "C"),
            (t.span("op", "package", 0.0, 1.0, track=0), "C"),
            (t.span("op", "unique", 0.0, 1.0, track=0), "C"),
            (t.span("op", "framework", 0.0, 1.0, track=0), "S"),
            (t.span("op", "checkpoint", 0.0, 1.0, track=0), "S"),
        ]
        for span, term in cases:
            assert term_of_span(span) == term, span.name


class TestProfileRows:
    def test_aggregation_and_sort(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 2.0, track=0)
        t.span("op", "advance", 2.0, 2.0, track=1)
        t.span("op", "filter", 0.0, 1.0, track=0)
        t.span("superstep", "superstep 0", 0.0, 4.0, track=0)  # excluded
        t.op_wall_sample("advance", 0.125)
        rows = profile_rows(t)
        assert [r["op"] for r in rows] == ["advance", "filter"]
        adv = rows[0]
        assert adv["calls"] == 2 and adv["virtual_s"] == 4.0
        assert adv["pct"] == 80.0 and adv["wall_s"] == 0.125

    def test_barrier_sync_row(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 1.0, track=0)
        t.instant("barrier", vt=1.5, iteration=0, sync=0.5)
        t.instant("barrier", vt=3.0, iteration=1, sync=0.5)
        (row,) = [r for r in profile_rows(t) if r["op"] == "barrier(sync)"]
        assert row["term"] == "S" and row["calls"] == 2
        assert row["virtual_s"] == 1.0

    def test_real_run_covers_all_terms(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(2), src=0, tracer=tracer)
        terms = {r["term"] for r in profile_rows(tracer)}
        assert terms == {"W", "H", "C", "S"}


class TestRender:
    def test_render_contains_legend_and_ops(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(2), src=0, tracer=tracer)
        text = render_profile(tracer)
        assert "bfs per-operator profile" in text
        assert "BSP terms (W + H·g + C + S·l):" in text
        assert "advance" in text and "barrier(sync)" in text
