"""BSP term mapping and the per-operator hot-spot table."""

from repro.obs import COMM_TRACK, Tracer, profile_rows, render_profile, term_of_span
from repro.primitives import run_bfs
from repro.sim.machine import Machine
from repro.sim.memory import PreallocFusion


class TestTermMapping:
    def test_terms(self):
        t = Tracer()
        cases = [
            (t.span("op", "advance", 0.0, 1.0, track=0), "W"),
            (t.span("op", "compute", 0.0, 1.0, track=0), "W"),
            (t.span("comm", "send", 0.0, 1.0, track=COMM_TRACK), "H"),
            (t.span("op", "split", 0.0, 1.0, track=0), "C"),
            (t.span("op", "package", 0.0, 1.0, track=0), "C"),
            (t.span("op", "unique", 0.0, 1.0, track=0), "C"),
            (t.span("op", "framework", 0.0, 1.0, track=0), "S"),
            (t.span("op", "checkpoint", 0.0, 1.0, track=0), "S"),
        ]
        for span, term in cases:
            assert term_of_span(span) == term, span.name


class TestProfileRows:
    def test_aggregation_and_sort(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 2.0, track=0)
        t.span("op", "advance", 2.0, 2.0, track=1)
        t.span("op", "filter", 0.0, 1.0, track=0)
        t.span("superstep", "superstep 0", 0.0, 4.0, track=0)  # excluded
        t.op_wall_sample("advance", 0.125)
        rows = profile_rows(t)
        assert [r["op"] for r in rows] == ["advance", "filter"]
        adv = rows[0]
        assert adv["calls"] == 2 and adv["virtual_s"] == 4.0
        assert adv["pct"] == 80.0 and adv["wall_s"] == 0.125

    def test_barrier_sync_row(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 1.0, track=0)
        t.instant("barrier", vt=1.5, iteration=0, sync=0.5)
        t.instant("barrier", vt=3.0, iteration=1, sync=0.5)
        (row,) = [r for r in profile_rows(t) if r["op"] == "barrier(sync)"]
        assert row["term"] == "S" and row["calls"] == 2
        assert row["virtual_s"] == 1.0

    def test_real_run_covers_all_terms(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(2), src=0, tracer=tracer)
        terms = {r["term"] for r in profile_rows(tracer)}
        assert terms == {"W", "H", "C", "S"}


class TestRender:
    def test_render_contains_legend_and_ops(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(2), src=0, tracer=tracer)
        text = render_profile(tracer)
        assert "bfs per-operator profile" in text
        assert "BSP terms (W + H·g + C + S·l):" in text
        assert "advance" in text and "barrier(sync)" in text


class TestEdgeCases:
    def test_empty_trace_yields_no_rows(self):
        t = Tracer()
        assert profile_rows(t) == []
        # rendering an empty profile must not crash
        assert isinstance(render_profile(t), str)

    def test_single_gpu_run_profiles_without_comm(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(1), src=0, tracer=tracer)
        rows = profile_rows(tracer)
        assert rows, "single-GPU run must still produce operator rows"
        terms = {r["term"] for r in rows}
        assert "W" in terms
        # one GPU never sends frontier items to a peer
        assert not any(r["term"] == "H" for r in rows)
        assert sum(r["pct"] for r in rows) == 100.0 or len(rows) == 1

    def test_fused_operator_sampling(self, small_rmat):
        """Fusion collapses advance+filter into one operator row, and
        per-op wall samples aggregate under the fused name."""
        tracer = Tracer()
        run_bfs(small_rmat, Machine(2), src=0, tracer=tracer,
                scheme=PreallocFusion())
        rows = {r["op"]: r for r in profile_rows(tracer)}
        fused = rows["advance+filter(fused)"]
        assert fused["term"] == "W" and fused["calls"] > 0
        # the unfused pipeline stages must not also appear
        assert "advance" not in rows and "filter" not in rows

    def test_fused_wall_samples_aggregate(self):
        t = Tracer()
        t.span("op", "advance+filter(fused)", 0.0, 1.0, track=0)
        t.op_wall_sample("advance+filter(fused)", 0.125)
        t.op_wall_sample("advance+filter(fused)", 0.25)
        (row,) = profile_rows(t)
        assert row["wall_s"] == 0.375

    def test_rollback_drops_staged_spans(self):
        """A superstep aborted mid-flight (rollback) must not leak its
        staged spans into the profile."""
        t = Tracer()
        t.span("op", "advance", 0.0, 1.0, track=0, iteration=0)
        t.begin_gpu(0, iteration=1)
        t.span("op", "advance", 1.0, 5.0)    # staged, then aborted
        t.op_wall_sample("advance", 9.0)     # staged wall sample too
        t.drop_staged()
        t.instant("recovery.rollback", vt=1.0, iteration=1)
        (row,) = profile_rows(t)
        assert row["virtual_s"] == 1.0
        assert row["wall_s"] == 0.0
        # the rollback instant committed despite the open bracket
        assert t.count("recovery.rollback") == 1
