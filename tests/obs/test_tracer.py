"""Tracer mechanics: staging, barrier merge order, rollback, wall stats."""

import threading

from repro.obs import COMM_TRACK, EventBus, Tracer


class TestSpans:
    def test_unstaged_span_commits_immediately(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 1.0, track=0)
        assert len(t.spans) == 1
        assert t.spans[0].key()[:2] == ("op", "advance")

    def test_span_defaults_from_gpu_bracket(self):
        t = Tracer()
        t.begin_gpu(2, 5)
        t.span("op", "filter", 0.0, 1.0)
        t.end_gpu()
        assert not t.spans  # still staged
        t.on_barrier(5)
        (s,) = t.spans
        assert s.track == 2 and s.iteration == 5

    def test_comm_track_record(self):
        t = Tracer()
        s = t.span("comm", "send", 1.0, 0.5, track=COMM_TRACK, src=0, dst=1)
        rec = s.to_record()
        assert rec["type"] == "span" and rec["gpu"] == COMM_TRACK
        assert rec["args"] == {"src": 0, "dst": 1}


class TestBarrierMerge:
    def test_merge_is_gpu_index_ordered(self):
        t = Tracer()
        # stage out of order: GPU 3 first, then 0, then 1
        for gpu in (3, 0, 1):
            t.begin_gpu(gpu, 0)
            t.span("op", f"op{gpu}", 0.0, 1.0)
            t.end_gpu()
        t.on_barrier(0)
        assert [s.track for s in t.spans] == [0, 1, 3]

    def test_merge_deterministic_under_threads(self):
        def record(tracer, gpu):
            tracer.begin_gpu(gpu, 0)
            tracer.span("op", "advance", float(gpu), 1.0)
            tracer.instant("superstep.end", vt=float(gpu), gpu=gpu)
            tracer.op_wall_sample("advance", 0.001)
            tracer.end_gpu()

        streams = []
        for _ in range(2):
            t = Tracer()
            threads = [
                threading.Thread(target=record, args=(t, g))
                for g in (2, 0, 3, 1)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            t.on_barrier(0)
            streams.append(
                ([s.key() for s in t.spans], t.events, dict(t.op_wall))
            )
        assert streams[0] == streams[1]
        assert [k[2] for k in streams[0][0]] == [0, 1, 2, 3]

    def test_drop_staged_discards_and_reopens_bracket(self):
        t = Tracer()
        t.begin_gpu(0, 0)
        t.span("op", "advance", 0.0, 1.0)
        t.instant("recovery.retry", vt=0.5, gpu=0)
        # superstep aborts: bracket never reaches end_gpu()
        t.drop_staged()
        assert not t.spans and not t.events
        # recovery instants recorded after the drop commit directly
        t.instant("recovery.rollback", vt=1.0, to_iteration=0)
        assert t.count("recovery.rollback") == 1

    def test_wall_samples_survive_merge(self):
        t = Tracer()
        t.begin_gpu(0, 0)
        t.op_wall_sample("advance", 0.25)
        t.op_wall_sample("advance", 0.25)
        t.end_gpu()
        assert "advance" not in t.op_wall
        t.on_barrier(0)
        assert t.op_wall["advance"] == [2, 0.5]


class TestBusAndViews:
    def test_bus_receives_committed_records_only(self):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append)
        t = Tracer(bus=bus)
        t.begin_gpu(0, 0)
        t.span("op", "advance", 0.0, 1.0)
        t.end_gpu()
        assert seen == []  # staged, not yet visible
        t.on_barrier(0)
        assert [r["type"] for r in seen] == ["span"]
        bus.unsubscribe(seen.append)

    def test_begin_run_sets_metadata_and_emits(self):
        t = Tracer()
        t.begin_run("bfs", 4, "threads")
        assert (t.primitive, t.num_gpus, t.backend) == ("bfs", 4, "threads")
        (e,) = t.events_of("run.begin")
        assert e["vt"] == 0.0 and e["num_gpus"] == 4

    def test_clear_resets_everything(self):
        t = Tracer()
        t.span("op", "advance", 0.0, 1.0, track=0)
        t.instant("barrier", vt=1.0)
        t.op_wall_sample("advance", 0.1)
        t.clear()
        assert not t.spans and not t.events and not t.op_wall
