"""Event schema, JSONL sink, and file validation."""

import json

from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EventBus,
    JsonlWriter,
    Tracer,
    validate_event,
    validate_events_jsonl,
)
from repro.primitives import run_bfs
from repro.sim.machine import Machine


class TestValidateEvent:
    def test_clean_record(self):
        assert validate_event({"type": "barrier", "vt": 1.0, "iteration": 0}) == []

    def test_unknown_type(self):
        (p,) = validate_event({"type": "meteor"})
        assert "unknown event type" in p

    def test_missing_type(self):
        (p,) = validate_event({"vt": 1.0})
        assert "missing or non-string 'type'" in p

    def test_negative_vt(self):
        (p,) = validate_event({"type": "barrier", "vt": -0.5})
        assert "negative 'vt'" in p

    def test_bool_vt_rejected(self):
        (p,) = validate_event({"type": "barrier", "vt": True})
        assert "non-numeric 'vt'" in p

    def test_non_integer_gpu(self):
        (p,) = validate_event({"type": "superstep.begin", "gpu": 1.5})
        assert "non-integer 'gpu'" in p

    def test_span_needs_dur(self):
        problems = validate_event(
            {"type": "span", "cat": "op", "name": "advance", "vt": 0.0}
        )
        assert any("missing or non-numeric 'dur'" in p for p in problems)

    def test_line_number_prefix(self):
        (p,) = validate_event({"type": "meteor"}, line_no=7)
        assert p.startswith("line 7: ")


class TestSchemaV2:
    def test_version_constant(self):
        from repro.obs.events import EVENT_TYPES

        assert EVENT_SCHEMA_VERSION == 2
        # v2 promotes the observability products to first-class events
        assert {"recorder.dump", "analysis.report"} <= EVENT_TYPES

    def test_recorder_dump_validates(self):
        assert validate_event({
            "type": "recorder.dump",
            "reason": "supervisor-escalation",
            "num_gpus": 2,
        }) == []

    def test_analysis_report_validates(self):
        assert validate_event({
            "type": "analysis.report",
            "num_gpus": 4,
            "iteration": 0,
        }) == []

    def test_new_types_still_check_int_fields(self):
        (p,) = validate_event({"type": "recorder.dump", "num_gpus": 2.5})
        assert "non-integer 'num_gpus'" in p


class TestJsonlRoundTrip:
    def test_traced_run_writes_valid_jsonl(self, small_rmat, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlWriter(path) as writer:
            bus.subscribe(writer)
            tracer = Tracer(bus=bus)
            run_bfs(small_rmat, Machine(2), src=0, tracer=tracer)
            bus.unsubscribe(writer)
        assert writer.count > 0
        assert validate_events_jsonl(path) == []
        lines = [json.loads(l) for l in path.read_text("utf-8").splitlines()]
        assert writer.count == len(lines)
        types = {r["type"] for r in lines}
        assert {"run.begin", "superstep.begin", "barrier",
                "span", "run.end"} <= types

    def test_empty_file_is_a_problem(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_events_jsonl(path) == ["file contains no events"]

    def test_bad_lines_reported_with_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "barrier", "vt": 1.0}\n'
            "not json\n"
            '{"type": "meteor"}\n',
            encoding="utf-8",
        )
        problems = validate_events_jsonl(path)
        assert any(p.startswith("line 2: invalid JSON") for p in problems)
        assert any(p.startswith("line 3: ") and "unknown event type" in p
                   for p in problems)
