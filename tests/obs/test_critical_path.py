"""Critical-path analyzer: reconciliation, slack, and what-ifs.

The acceptance bar for the analyzer is *exact* agreement with the
profiler: both consume the same spans through the same ``term_of_span``
mapping, so the run-level W/H/C/S totals must match with ``==``, not
``pytest.approx``.  The zero-comm counterfactual must never exceed the
serial span sum (one chain can't beat running everything back to back),
which is checked on real runs and property-tested on random traces.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    COMM_TRACK,
    TraceData,
    Tracer,
    analyze_trace,
    profile_rows,
    render_analysis,
    to_chrome_trace,
    validate_event,
)
from repro.primitives import run_bfs
from repro.sim.machine import Machine

TERMS = ("W", "H", "C", "S")


@pytest.fixture(scope="module")
def traced_run(small_rmat):
    tracer = Tracer()
    labels, metrics, _ = run_bfs(small_rmat, Machine(4), src=0,
                                 tracer=tracer)
    return tracer, metrics


@pytest.fixture(scope="module")
def report(traced_run):
    tracer, _ = traced_run
    return analyze_trace(tracer)


class TestReconciliation:
    def test_terms_match_profile_exactly(self, traced_run, report):
        """Bit-identical W/H/C/S totals: same rows, same summation
        order as render_profile's legend."""
        tracer, _ = traced_run
        expected = {t: 0.0 for t in TERMS}
        for row in profile_rows(tracer):
            expected[row["term"]] += row["virtual_s"]
        for t in TERMS:
            assert report["terms"][t] == expected[t], t

    def test_per_step_buckets_sum_to_busy(self, report):
        total = 0.0
        for step in report["steps"]:
            for entry in step["gpus"].values():
                total += sum(entry[t] for t in TERMS)
        total += report["unattributed_s"] + report["sync_s"]
        assert total == pytest.approx(report["busy_s"], abs=1e-12)
        assert report["busy_s"] == pytest.approx(
            sum(report["terms"].values()), abs=1e-12
        )

    def test_slack_split_sums_to_slack(self, report):
        for step in report["steps"]:
            assert sum(step["slack"].values()) == pytest.approx(
                step["slack_s"], abs=1e-12
            )
        assert sum(report["slack"].values()) == pytest.approx(
            report["slack_s"], abs=1e-12
        )

    def test_stragglers_cover_all_supersteps(self, report):
        assert sum(report["stragglers"].values()) == report["supersteps"]
        assert report["supersteps"] == len(report["steps"])
        assert report["supersteps"] > 0

    def test_critical_path_bounded_by_elapsed(self, report):
        assert report["critical_path_s"] <= report["elapsed_s"] + 1e-12
        for step in report["steps"]:
            crit = step["gpus"][str(step["critical_gpu"])]
            assert crit["slack_s"] == 0.0

    def test_report_is_a_valid_event(self, report):
        assert validate_event(report) == []
        assert report["type"] == "analysis.report"
        assert report["schema_version"] == 2

    def test_report_is_json_serializable(self, report):
        parsed = json.loads(json.dumps(report))
        assert parsed["primitive"] == "bfs"
        assert parsed["num_gpus"] == 4


class TestWhatIf:
    def test_zero_comm_bounded_by_serial_span_sum(self, report):
        wi = report["what_if"]
        assert wi["zero_comm_s"] <= wi["serial_span_sum_s"] + 1e-12

    def test_estimates_never_beat_physics(self, report):
        wi = report["what_if"]
        # removing comm or imbalance can only help, never hurt
        assert wi["zero_comm_s"] <= report["critical_path_s"] + 1e-12
        assert wi["perfect_balance_s"] <= report["critical_path_s"] + 1e-12
        assert wi["zero_comm_speedup"] >= 1.0 - 1e-12
        assert wi["perfect_balance_speedup"] >= 1.0 - 1e-12


class TestChromeRoundtrip:
    def test_offline_analysis_matches_live(self, traced_run, report):
        tracer, _ = traced_run
        data = TraceData.from_chrome_trace(to_chrome_trace(tracer))
        offline = analyze_trace(data)
        assert offline["supersteps"] == report["supersteps"]
        assert offline["critical_path_s"] == pytest.approx(
            report["critical_path_s"], abs=1e-9
        )
        for t in TERMS:
            assert offline["terms"][t] == pytest.approx(
                report["terms"][t], abs=1e-9
            )
        assert offline["stragglers"] == report["stragglers"]


class TestDegenerateInputs:
    def test_empty_trace(self):
        report = analyze_trace(TraceData())
        assert report["supersteps"] == 0
        assert report["critical_path_s"] == 0.0
        assert report["slack_s"] == 0.0
        assert report["load_imbalance"] == 1.0
        assert validate_event(report) == []
        # rendering an empty report must not crash
        assert "critical path" in render_analysis(report, what_if=True)

    def test_single_gpu_has_no_slack(self, small_rmat):
        tracer = Tracer()
        run_bfs(small_rmat, Machine(1), src=0, tracer=tracer)
        report = analyze_trace(tracer)
        assert report["slack_s"] == 0.0
        assert report["load_imbalance"] == pytest.approx(1.0)
        assert set(report["stragglers"]) == {"0"}


class TestRender:
    def test_contains_summary_lines(self, report):
        text = render_analysis(report, what_if=True)
        assert "bfs critical path (4 GPUs" in text
        assert "BSP terms (W + H·g + C + S·l):" in text
        assert "critical path:" in text
        assert "stragglers" in text
        assert "what-if: zero-comm" in text

    def test_top_limits_rows(self, report):
        full = render_analysis(report)
        top1 = render_analysis(report, top=1)
        assert len(top1.splitlines()) < len(full.splitlines())
        # the kept row is the longest superstep
        longest = max(report["steps"], key=lambda s: s["critical_s"])
        assert f"{longest['critical_s'] * 1e3:.3f}" in top1

    def test_what_if_off_by_default(self, report):
        assert "what-if" not in render_analysis(report)


# ---------------------------------------------------------------------------
# property tests on random synthetic traces
# ---------------------------------------------------------------------------

_SPAN_KINDS = (
    ("op", "advance"),    # W
    ("op", "filter"),     # W
    ("comm", "send"),     # H
    ("op", "split"),      # C
    ("op", "framework"),  # S
)


@st.composite
def synthetic_traces(draw):
    tracer = Tracer()
    n_spans = draw(st.integers(min_value=1, max_value=40))
    for _ in range(n_spans):
        cat, name = draw(st.sampled_from(_SPAN_KINDS))
        gpu = draw(st.integers(min_value=0, max_value=3))
        iteration = draw(st.integers(min_value=0, max_value=4))
        start = draw(st.floats(min_value=0.0, max_value=10.0,
                               allow_nan=False))
        dur = draw(st.floats(min_value=0.0, max_value=2.0,
                             allow_nan=False))
        if cat == "comm":
            tracer.span(cat, name, start, dur, track=COMM_TRACK,
                        iteration=iteration, src=gpu, dst=(gpu + 1) % 4)
        else:
            tracer.span(cat, name, start, dur, track=gpu,
                        iteration=iteration)
    for i in range(draw(st.integers(min_value=0, max_value=5))):
        sync = draw(st.floats(min_value=0.0, max_value=0.5,
                              allow_nan=False))
        tracer.instant("barrier", vt=float(i + 1), iteration=i, sync=sync)
    return tracer


@settings(max_examples=60, deadline=None)
@given(tracer=synthetic_traces())
def test_property_zero_comm_bounded_by_serial_sum(tracer):
    report = analyze_trace(tracer)
    wi = report["what_if"]
    assert wi["zero_comm_s"] <= wi["serial_span_sum_s"] + 1e-9
    assert wi["perfect_balance_s"] <= wi["serial_span_sum_s"] + 1e-9


@settings(max_examples=60, deadline=None)
@given(tracer=synthetic_traces())
def test_property_terms_reconcile_and_slack_sums(tracer):
    report = analyze_trace(tracer)
    expected = {t: 0.0 for t in TERMS}
    for row in profile_rows(tracer):
        expected[row["term"]] += row["virtual_s"]
    for t in TERMS:
        assert report["terms"][t] == expected[t]
    for step in report["steps"]:
        assert sum(step["slack"].values()) == pytest.approx(
            step["slack_s"], abs=1e-9
        )
        assert step["critical_s"] >= 0.0
