"""OpenMetrics exposition of RunMetrics."""

from repro.obs import to_openmetrics, write_openmetrics
from repro.primitives import run_bfs
from repro.sim.faults import GPU_LOSS, FaultPlan, FaultSpec
from repro.sim.machine import Machine
from repro.sim.metrics import RunMetrics


def _families(text):
    return {
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE ")
    }


class TestExposition:
    def test_run_exposes_all_families(self, small_rmat):
        _, metrics, _ = run_bfs(small_rmat, Machine(2), src=0)
        text = to_openmetrics(metrics)
        assert text.endswith("# EOF\n")
        assert _families(text) >= {
            "repro_schema_info",
            "repro_run_elapsed_virtual_seconds",
            "repro_run_supersteps",
            "repro_run_edges_visited_total",
            "repro_run_items_sent_total",
            "repro_run_load_imbalance_ratio",
            "repro_gpu_peak_memory_bytes",
            "repro_recovery_actions_total",
            "repro_recovery_seconds",
            "repro_superstep_duration_virtual_seconds",
            "repro_superstep_gpu_compute_virtual_seconds",
            "repro_superstep_gpu_comm_virtual_seconds",
        }
        # schema advertised in lock-step with the event stream
        assert 'event_schema="2"' in text
        # per-GPU and per-superstep labels present
        assert 'gpu="1"' in text
        assert 'iteration="0"' in text
        assert 'kind="rollbacks"' in text

    def test_recovery_counters_surface(self, small_rmat):
        machine = Machine(2)
        machine.arm_faults(
            FaultPlan([FaultSpec(GPU_LOSS, gpu=1, iteration=1)])
        )
        _, metrics, _ = run_bfs(small_rmat, machine, src=0,
                                checkpoint_every=2)
        text = to_openmetrics(metrics)
        rollback_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_recovery_actions_total")
            and 'kind="rollbacks"' in line
        ]
        assert rollback_lines and rollback_lines[0].endswith(" 1")

    def test_label_values_escaped(self):
        metrics = RunMetrics(num_gpus=1, primitive="bfs",
                             dataset='we"ird\nname')
        text = to_openmetrics(metrics)
        assert 'dataset="we\\"ird\\nname"' in text
        assert text.endswith("# EOF\n")

    def test_write_roundtrip(self, small_rmat, tmp_path):
        _, metrics, _ = run_bfs(small_rmat, Machine(2), src=0)
        path = tmp_path / "metrics.prom"
        text = write_openmetrics(metrics, path)
        assert path.read_text("utf-8") == text
