"""Flight recorder: bounded ring, superstep window, and crash dumps."""

import json

import pytest

from repro.errors import CommunicationError
from repro.obs import FlightRecorder, validate_event
from repro.primitives import run_bfs
from repro.sim.faults import TRANSIENT_COMM, FaultPlan, FaultSpec
from repro.sim.machine import Machine


class TestRing:
    def test_capacity_bounds_memory(self):
        r = FlightRecorder(capacity=4, keep_supersteps=2)
        for i in range(10):
            r.record("barrier", vt=float(i), iteration=i)
        assert r.recorded == 10
        assert len(r.ring) == 4
        # oldest entries dropped, newest kept, order preserved
        assert [e["vt"] for e in r.ring] == [6.0, 7.0, 8.0, 9.0]

    def test_clear_resets_everything(self):
        r = FlightRecorder(capacity=4)
        r.record("barrier", vt=1.0)
        r.dump("test")
        r.clear()
        assert r.recorded == 0
        assert len(r.ring) == 0 and not r.dumps
        assert r.metrics is None


class TestDump:
    def test_dump_is_a_valid_event(self):
        r = FlightRecorder(capacity=8)
        r.begin_run("bfs", 2, backend="serial")
        r.record("barrier", vt=1.0, iteration=0)
        report = r.dump("unit-test")
        assert validate_event(report) == []
        assert report["type"] == "recorder.dump"
        assert report["schema_version"] == 2
        assert report["reason"] == "unit-test"
        assert report["primitive"] == "bfs"
        assert report["events"][-1]["type"] == "barrier"
        assert report in r.dumps

    def test_dump_captures_error_and_heartbeats(self):
        r = FlightRecorder()
        err = CommunicationError("link down", gpu_id=1, iteration=3)
        report = r.dump("escalation", error=err,
                        heartbeats={0: 0.5, 1: 12.0})
        assert report["error"]["class"] == "CommunicationError"
        assert report["error"]["gpu"] == 1
        assert report["error"]["iteration"] == 3
        assert report["heartbeat_ages"] == {"0": 0.5, "1": 12.0}

    def test_dump_captures_fault_plan_state(self):
        machine = Machine(2)
        machine.arm_faults(FaultPlan([
            FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=2),
        ]))
        report = FlightRecorder().dump("x", faults=machine.faults)
        assert report["pending_faults"]["planned"] == 1
        assert isinstance(report["pending_faults"]["injected"], dict)

    def test_dump_writes_path(self, tmp_path):
        path = tmp_path / "crash.json"
        r = FlightRecorder(path=str(path))
        r.record("barrier", vt=1.0)
        r.dump("boom")
        on_disk = json.loads(path.read_text("utf-8"))
        assert on_disk["reason"] == "boom"
        assert on_disk["events"][0]["vt"] == 1.0


class TestLiveRuns:
    def test_clean_run_records_supersteps(self, small_rmat):
        r = FlightRecorder(keep_supersteps=3)
        _, metrics, _ = run_bfs(small_rmat, Machine(2), src=0,
                                flight_recorder=r)
        assert not r.dumps
        assert r.primitive == "bfs" and r.num_gpus == 2
        assert r.recorded >= len(metrics.iterations)
        # the window holds the *last* k summaries
        assert len(r.supersteps) == 3
        kept = [s["iteration"] for s in r.supersteps]
        assert kept == [m.iteration for m in metrics.iterations[-3:]]
        assert r.metrics is metrics

    def test_repro_error_out_of_enact_dumps(self, small_rmat):
        from repro.core.checkpoint import RecoveryPolicy

        r = FlightRecorder()
        machine = Machine(2)
        machine.arm_faults(FaultPlan([
            FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=50),
        ]))
        with pytest.raises(CommunicationError):
            run_bfs(small_rmat, machine, src=0, flight_recorder=r,
                    recovery=RecoveryPolicy(max_comm_retries=3))
        assert len(r.dumps) == 1
        report = r.dumps[0]
        assert report["reason"] == "enact-error"
        assert report["error"]["class"] == "CommunicationError"
        assert report["pending_faults"]["planned"] == 1
        # the metrics accumulated up to the crash ride along
        assert report["metrics"]["primitive"] == "bfs"
        assert validate_event(report) == []
