"""Chrome trace_event export: layout contract, validation, recovery."""

import json

from repro.obs import (
    Tracer,
    export_chrome_trace,
    load_chrome_trace,
    summarize_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.primitives import run_bfs
from repro.sim.faults import GPU_LOSS, TRANSIENT_COMM, FaultPlan, FaultSpec
from repro.sim.machine import Machine


def _traced_bfs(graph, num_gpus=2, plan=None, **kwargs):
    tracer = Tracer()
    machine = Machine(num_gpus)
    if plan is not None:
        machine.arm_faults(plan)
    run_bfs(graph, machine, src=0, tracer=tracer, **kwargs)
    return tracer


class TestExport:
    def test_valid_and_loadable(self, small_rmat, tmp_path):
        tracer = _traced_bfs(small_rmat)
        path = tmp_path / "out.trace.json"
        trace = export_chrome_trace(tracer, path)
        assert validate_chrome_trace(trace) == []
        assert load_chrome_trace(path) == json.loads(json.dumps(trace))

    def test_per_gpu_and_comm_rows(self, small_rmat):
        trace = to_chrome_trace(_traced_bfs(small_rmat, num_gpus=4))
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {names[(0, g)] for g in range(4)} == {f"GPU {g}" for g in range(4)}
        assert names[(0, 4)] == "comm"
        # comm sends land on the comm row
        comm = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "comm"
        ]
        assert comm and all(e["tid"] == 4 for e in comm)

    def test_wall_clock_process(self, small_rmat):
        trace = to_chrome_trace(_traced_bfs(small_rmat))
        wall = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1
        ]
        assert wall and all(e["cat"] == "wall" for e in wall)

    def test_retry_instants_on_flaky_link(self, small_rmat):
        plan = FaultPlan(
            [FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=2)]
        )
        tracer = _traced_bfs(small_rmat, plan=plan)
        instants = {
            e["name"]
            for e in to_chrome_trace(tracer)["traceEvents"]
            if e["ph"] == "i"
        }
        assert "recovery.retry" in instants

    def test_recovery_instants_on_gpu_loss(self, small_rmat):
        plan = FaultPlan([FaultSpec(GPU_LOSS, gpu=1, iteration=1)])
        tracer = _traced_bfs(small_rmat, plan=plan, checkpoint_every=1)
        trace = to_chrome_trace(tracer)
        instants = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "i"
        }
        assert {"recovery.gpu-loss", "recovery.rollback",
                "checkpoint"} <= instants
        assert validate_chrome_trace(trace) == []

    def test_summary_counts(self, small_rmat):
        tracer = _traced_bfs(small_rmat)
        s = summarize_chrome_trace(to_chrome_trace(tracer))
        assert s["primitive"] == "bfs" and s["num_gpus"] == 2
        assert s["spans"] == len(tracer.spans) + len(
            [x for x in tracer.spans if x.cat == "superstep"]
        )
        assert "GPU 0" in s["tracks"] and "comm" in s["tracks"]
        assert s["instants"].get("barrier")
        # no faults, no supervision: both special buckets stay empty
        assert s["supervisor"] == {} and s["recovery"] == {}

    def test_summary_recovery_bucket(self, small_rmat):
        """Recovery/checkpoint instants are pulled into their own
        summary bucket so ``repro trace`` surfaces a faulted history."""
        plan = FaultPlan([FaultSpec(GPU_LOSS, gpu=1, iteration=1)])
        tracer = _traced_bfs(small_rmat, plan=plan, checkpoint_every=1)
        s = summarize_chrome_trace(to_chrome_trace(tracer))
        assert s["recovery"].get("recovery.rollback", 0) >= 1
        assert s["recovery"].get("checkpoint", 0) >= 1
        assert s["recovery"].get("recovery.gpu-loss", 0) >= 1
        # checkpoint *captures* now carry a vt, so they round-trip too
        assert s["recovery"].get("checkpoint.capture", 0) >= 1
        # every bucketed instant is also in the plain instant counts
        for name, count in s["recovery"].items():
            assert s["instants"][name] == count

    def test_summary_supervisor_bucket(self, small_rmat):
        tracer = _traced_bfs(small_rmat)
        # supervision events come from the worker supervisor; synthesize
        # the instants rather than spinning up real worker processes
        tracer.instant("worker.respawn", vt=1.0, worker=1, gpu=1)
        tracer.instant("heartbeat.stale", vt=1.5, worker=1)
        s = summarize_chrome_trace(to_chrome_trace(tracer))
        assert s["supervisor"] == {
            "worker.respawn": 1, "heartbeat.stale": 1,
        }
        # supervision instants do not leak into the recovery bucket
        assert "worker.respawn" not in s["recovery"]


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing 'traceEvents' list"]

    def test_reports_malformed_events(self, small_rmat):
        trace = to_chrome_trace(_traced_bfs(small_rmat))
        trace["traceEvents"][5] = {"ph": "X", "pid": 0, "tid": 0,
                                   "name": "bad", "ts": 0.0, "dur": -1.0}
        trace["traceEvents"].append({"ph": "Z", "pid": 0, "tid": 0})
        problems = validate_chrome_trace(trace)
        assert any("negative 'dur'" in p for p in problems)
        assert any("unsupported ph" in p for p in problems)

    def test_reports_missing_layout(self):
        problems = validate_chrome_trace({"traceEvents": []})
        assert "no 'comm' thread row" in problems
        assert any("per-GPU" in p for p in problems)
