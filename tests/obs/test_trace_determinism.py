"""Acceptance gate: tracing must not change a single observable bit.

A traced run of every primitive must produce results and RunMetrics
bit-identical to an untraced run, on both backends; and because staged
records merge in GPU-index order at barriers, the span stream itself
(virtual-clock identity only — ``Span.key()``) must be identical between
the serial and threads backends.
"""

import json

import numpy as np
import pytest

from repro.obs import Tracer
from repro.primitives import (
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from repro.sim.machine import Machine

RUNNERS = {
    "bfs": (run_bfs, {"src": 0}),
    "dobfs": (run_dobfs, {"src": 0}),
    "sssp": (run_sssp, {"src": 0}),
    "cc": (run_cc, {}),
    "bc": (run_bc, {"src": 0}),
    "pr": (run_pagerank, {"max_iter": 30}),
}


def _run(name, graph, num_gpus, tracer=None, **kwargs):
    runner, rkwargs = RUNNERS[name]
    if tracer is not None:
        kwargs["tracer"] = tracer
    result, metrics, _ = runner(graph, Machine(num_gpus), **rkwargs, **kwargs)
    return np.asarray(result), metrics


def _graph_for(name, small_rmat, weighted_rmat):
    return weighted_rmat if name == "sssp" else small_rmat


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
@pytest.mark.parametrize("backend", ["serial", "threads"])
def test_traced_run_bit_identical(
    primitive, backend, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_plain, m_plain = _run(primitive, graph, 2, backend=backend)
    tracer = Tracer()
    r_traced, m_traced = _run(
        primitive, graph, 2, tracer=tracer, backend=backend
    )
    np.testing.assert_array_equal(r_plain, r_traced)
    assert json.dumps(m_plain.to_dict()) == json.dumps(m_traced.to_dict())
    # and the tracer actually recorded the run
    assert tracer.spans_of("superstep")
    assert tracer.spans_of("op")


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
def test_span_stream_backend_invariant(
    primitive, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    t_ser, t_thr = Tracer(), Tracer()
    _run(primitive, graph, 4, tracer=t_ser, backend="serial")
    _run(primitive, graph, 4, tracer=t_thr, backend="threads")
    assert [s.key() for s in t_ser.spans] == [s.key() for s in t_thr.spans]
    # structured events too, modulo the wall-clock fields some carry
    def strip(events):
        drop = {"wall_dur", "workers", "backend"}
        return [
            {k: v for k, v in e.items() if k not in drop}
            for e in events
            if e.get("type") != "backend.dispatch"
        ]

    assert strip(t_ser.events) == strip(t_thr.events)


def test_superstep_spans_cover_every_iteration(small_rmat):
    tracer = Tracer()
    _, metrics = _run("bfs", small_rmat, 2, tracer=tracer)
    supersteps = tracer.spans_of("superstep")
    # one span per GPU per superstep
    assert len(supersteps) == 2 * metrics.supersteps
    assert {s.iteration for s in supersteps} == set(
        range(metrics.supersteps)
    )
    # virtual timestamps are non-negative and end within the run
    for s in supersteps:
        assert s.vt_start >= 0.0
        assert s.vt_start + s.vt_dur <= metrics.elapsed + 1e-9


def test_sanitize_and_trace_coexist(small_rmat):
    tracer = Tracer()
    _, m = _run("bfs", small_rmat, 2, tracer=tracer, sanitize=True)
    assert m.sanitizer_hazards == []
