"""End-to-end tests for the superstep interleaving model checker
(``repro.check.deep.modelcheck``): the six-primitive classification
matrix, REP116/117 findings, certificate round-trips, the Enactor's
tier-2 relaxed-barrier gate, and Chrome-trace export of counterexample
schedules."""

import json
import pathlib

import pytest

from repro.check.deep import modelcheck_source
from repro.check.deep.modelcheck import (
    MC_CERTIFIED,
    MC_REFUTED,
    ScheduleCertificate,
    certify_schedule_for,
)
from repro.check.deep.schedules import schedule_trace_to_tracer
from repro.core.enactor import Enactor
from repro.errors import SimulationError
from repro.graph import add_random_weights
from repro.graph.generators.rmat import generate_rmat
from repro.obs.chrome_trace import (
    export_chrome_trace,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.primitives.sssp import SSSPIteration, SSSPProblem
from repro.sim.machine import Machine

PRIMITIVES = pathlib.Path(__file__).resolve().parents[2] / (
    "src/repro/primitives")


def _check(fname):
    src = (PRIMITIVES / fname).read_text(encoding="utf-8")
    return modelcheck_source(src, str(PRIMITIVES / fname))


class TestPrimitiveMatrix:
    """The acceptance matrix from the paper's BSP contract: all six
    primitives are strict-deterministic; only the idempotent label-
    propagation family survives relaxed barriers."""

    @pytest.mark.parametrize("fname,cls", [
        ("bfs.py", "BFSIteration"),
        ("dobfs.py", "DOBFSIteration"),
        ("cc.py", "CCIteration"),
    ])
    def test_relaxed_safe_primitives(self, fname, cls):
        findings, certs = _check(fname)
        assert not findings, [f.message for f in findings]
        cert = next(c for c in certs if c.primitive == cls)
        assert cert.status == MC_CERTIFIED
        assert cert.strict_deterministic and cert.relaxed_safe
        assert cert.certified_relaxed_safe
        assert cert.counterexample is None

    @pytest.mark.parametrize("fname,cls", [
        ("sssp.py", "SSSPIteration"),
        ("pr.py", "PRIteration"),
        ("bc.py", "BCIteration"),
    ])
    def test_relaxed_unsafe_primitives(self, fname, cls):
        findings, certs = _check(fname)
        cert = next(c for c in certs if c.primitive == cls)
        assert cert.status == MC_REFUTED
        assert cert.strict_deterministic, "strict BSP must still hold"
        assert not cert.relaxed_safe
        assert not cert.certified_relaxed_safe
        assert cert.reasons, "refutation must carry machine reasons"
        # a refutation ships a concrete counterexample schedule pair
        ce = cert.counterexample
        assert ce is not None and ce["model"] == "relaxed"
        assert ce["witness"]["final_state"] != ce["divergent"]["final_state"]
        rep117 = [f for f in findings if f.rule_id == "REP117"]
        assert len(rep117) == 1
        assert rep117[0].severity == "warning"
        assert rep117[0].extra["cls"] == cls

    def test_no_primitive_violates_strict_contract(self):
        for fname in ("bfs.py", "dobfs.py", "cc.py",
                      "sssp.py", "pr.py", "bc.py"):
            findings, _ = _check(fname)
            assert not [f for f in findings if f.rule_id == "REP116"], fname


PEER_POKE_SRC = '''
"""doc"""
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase
from repro.core.combine import Combiner


class PokeProblem(ProblemBase):
    combiners = {"state": Combiner("min", commutative=True,
                                   idempotent=True)}


class PokeIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        peer = self.problem.data_slices[1]["state"]
        peer[frontier] = ctx.slice["state"][frontier] + 1
        return frontier, []

    def expand_incoming(self, ctx, msg):
        return msg
'''


class TestStrictDivergence:
    def test_peer_write_is_rep116(self):
        findings, certs = modelcheck_source(PEER_POKE_SRC, "poke.py")
        rep116 = [f for f in findings if f.rule_id == "REP116"]
        assert len(rep116) == 1
        assert rep116[0].severity == "error"
        cert = certs[0]
        assert not cert.strict_deterministic
        assert not cert.certified_relaxed_safe


class TestCertificateSerialization:
    def test_round_trip(self):
        _, certs = _check("sssp.py")
        cert = certs[0]
        doc = cert.to_dict()
        json.dumps(doc)  # must be JSON-serializable as-is
        back = ScheduleCertificate.from_dict(doc)
        assert back.to_dict() == doc
        assert back.certified_relaxed_safe == cert.certified_relaxed_safe

    def test_describe_mentions_verdict(self):
        _, certs = _check("cc.py")
        text = certs[0].describe()
        assert "CCIteration" in text and "relaxed-safe" in text


class TestRuntimeGate:
    """``Enactor(relaxed_barriers=True)`` = combiner certificates
    (tier 1) AND a schedule certificate (tier 2)."""

    def _graph(self, weighted=False):
        g = generate_rmat(9, 8, seed=7)
        return add_random_weights(g, seed=1) if weighted else g

    def test_certify_schedule_for_resolves_runtime_class(self):
        cert = certify_schedule_for(BFSIteration)
        assert cert is not None and cert.certified_relaxed_safe
        assert certify_schedule_for(SSSPIteration).status == MC_REFUTED

    def test_bfs_relaxed_stores_schedule_certificate(self):
        p = BFSProblem(self._graph(), Machine(num_gpus=2))
        e = Enactor(p, BFSIteration, relaxed_barriers=True)
        assert e.schedule_certificate is not None
        assert e.schedule_certificate.certified_relaxed_safe

    def test_strict_enactor_skips_certification(self):
        p = BFSProblem(self._graph(), Machine(num_gpus=2))
        e = Enactor(p, BFSIteration)
        assert e.schedule_certificate is None

    def test_sssp_relaxed_is_refused_by_schedule_tier(self):
        # SSSP passes tier 1 (MIN certifies idempotent+commutative) but
        # its composition of effects is relaxed-unsafe: tier 2 refuses.
        p = SSSPProblem(self._graph(weighted=True), Machine(num_gpus=2))
        with pytest.raises(SimulationError, match="relaxed_barriers"):
            Enactor(p, SSSPIteration, relaxed_barriers=True)


class TestCounterexampleTrace:
    def test_chrome_trace_round_trip(self, tmp_path):
        _, certs = _check("sssp.py")
        ce = certs[0].counterexample
        tracer = schedule_trace_to_tracer(
            ce["divergent"], divergent_step=ce["first_divergent_step"])
        out = tmp_path / "sssp.trace.json"
        export_chrome_trace(tracer, str(out))
        trace = load_chrome_trace(str(out))
        assert validate_chrome_trace(trace) == []
        names = {ev.get("name") for ev in trace["traceEvents"]}
        assert "mc.divergence" in names
