"""Unit tests for each static lint rule (REP101-REP107) and the waiver
machinery, plus the self-cleanliness gate: ``src/repro`` must lint clean
with the default rule set."""

import pathlib

import pytest

import repro
from repro.check import (
    DEFAULT_RULES,
    findings_to_json,
    lint_paths,
    lint_source,
    render_findings,
    rule_index,
)


def ids_of(findings):
    return [f.rule_id for f in findings]


PROBLEM_PREAMBLE = '''
"""doc"""
import numpy as np
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase
'''


class TestHookRule:
    def test_missing_full_queue_core(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def expand_incoming(self, ctx, msg):
        return None, []
'''
        findings = lint_source(src, "t.py")
        assert "REP101" in ids_of(findings)
        assert any("full_queue_core" in f.message for f in findings)

    def test_wrong_arity(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx):
        return None, []
'''
        findings = lint_source(src, "t.py")
        msgs = [f for f in findings if f.rule_id == "REP101"]
        assert any("argument" in f.message for f in msgs)

    def test_star_args_accepted(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, *args, **kwargs):
        return None, []
'''
        assert "REP101" not in ids_of(lint_source(src, "t.py"))

    def test_conforming_iteration_clean(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return frontier, []

    def expand_incoming(self, ctx, msg):
        return None, []
'''
        assert lint_source(src, "t.py") == []


class TestCombinerRule:
    def test_value_associates_without_combiners(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    NUM_VALUE_ASSOCIATES = 1
'''
        assert "REP102" in ids_of(lint_source(src, "t.py"))

    def test_declared_combiners_clean(self):
        src = PROBLEM_PREAMBLE + '''
from repro.core import combine


class ToyProblem(ProblemBase):
    NUM_VALUE_ASSOCIATES = 1
    combiners = {"dist": combine.MIN}
'''
        assert "REP102" not in ids_of(lint_source(src, "t.py"))

    def test_zero_associates_need_no_combiners(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    NUM_VALUE_ASSOCIATES = 0
'''
        assert "REP102" not in ids_of(lint_source(src, "t.py"))


class TestDtypeRule:
    def test_bare_dtype_in_allocate(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    def init_data_slice(self, ds, sub):
        ds.allocate("dist", sub.num_vertices, np.float64)
'''
        assert "REP103" in ids_of(lint_source(src, "t.py"))

    def test_bare_dtype_kwarg(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    def init_data_slice(self, ds, sub):
        ds.allocate("labels", sub.num_vertices, dtype=np.int64)
'''
        assert "REP103" in ids_of(lint_source(src, "t.py"))

    def test_idconfig_dtype_clean(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    def init_data_slice(self, ds, sub):
        ids = sub.csr.ids
        ds.allocate("labels", sub.num_vertices, ids.vertex_dtype)
        ds.allocate("bitmap", sub.num_vertices, bool)
'''
        assert "REP103" not in ids_of(lint_source(src, "t.py"))


class TestHotLoopRule:
    def test_for_loop_in_hot_path(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        for v in frontier:
            pass
        return frontier, []
'''
        assert "REP104" in ids_of(lint_source(src, "t.py"))

    def test_while_fixpoint_allowed(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        while True:
            break
        return frontier, []
'''
        assert "REP104" not in ids_of(lint_source(src, "t.py"))

    def test_control_hooks_exempt(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return frontier, []

    def on_iteration_end(self, record):
        for k in (1, 2):
            pass
'''
        assert "REP104" not in ids_of(lint_source(src, "t.py"))


class TestAllocRule:
    def test_raw_alloc_in_init(self):
        src = PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    def init_data_slice(self, ds, sub):
        buf = np.zeros(sub.num_vertices)
'''
        assert "REP105" in ids_of(lint_source(src, "t.py"))

    def test_raw_alloc_in_hot_path(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        tmp = np.empty(frontier.size)
        return frontier, []
'''
        assert "REP105" in ids_of(lint_source(src, "t.py"))

    def test_empty_sentinel_allowed(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return np.empty(0, dtype=np.int64), []
'''
        assert "REP105" not in ids_of(lint_source(src, "t.py"))


class TestPeerRule:
    def test_peer_subscript_write(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        self.problem.data_slices[1]["dist"][0] = 9.9
        return frontier, []
'''
        assert "REP106" in ids_of(lint_source(src, "t.py"))

    def test_peer_mutator_call(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        self.problem.data_slices[0]["dist"].fill(0)
        return frontier, []
'''
        assert "REP106" in ids_of(lint_source(src, "t.py"))

    def test_plain_read_allowed(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def should_stop(self, iteration, frontier_sizes, messages_in_flight):
        labels = self.problem.data_slices[0]["labels"]
        return bool(labels.max() > 3)

    def full_queue_core(self, ctx, frontier):
        return frontier, []
'''
        assert "REP106" not in ids_of(lint_source(src, "t.py"))


class TestWaivers:
    SRC = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        for v in frontier:  # repro-check: disable=hot-loop
            pass
        return frontier, []
'''

    def test_same_line_waiver(self):
        assert "REP104" not in ids_of(lint_source(self.SRC, "t.py"))

    def test_comment_line_covers_next(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        # repro-check: disable=REP104
        for v in frontier:
            pass
        return frontier, []
'''
        assert "REP104" not in ids_of(lint_source(src, "t.py"))

    def test_disable_all(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        for v in frontier:  # repro-check: disable=all
            pass
        return frontier, []
'''
        assert "REP104" not in ids_of(lint_source(src, "t.py"))

    def test_waiver_is_rule_specific(self):
        src = PROBLEM_PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        for v in frontier:  # repro-check: disable=raw-alloc
            pass
        return frontier, []
'''
        assert "REP104" in ids_of(lint_source(src, "t.py"))


class TestWorkspaceBypassRule:
    WS_PREAMBLE = '"""doc"""\nimport numpy as np\n'

    def test_alloc_outside_fallback_flagged(self):
        src = self.WS_PREAMBLE + '''
def gather(csr, frontier, ws=None):
    idx = np.arange(10, dtype=np.int64)
    return idx
'''
        findings = lint_source(src, "t.py")
        assert "REP107" in ids_of(findings)

    def test_alloc_inside_is_none_fallback_ok(self):
        src = self.WS_PREAMBLE + '''
def gather(csr, frontier, ws=None):
    if ws is None:
        idx = np.arange(10, dtype=np.int64)
    else:
        idx = ws.take("idx", 10)
    return idx
'''
        assert "REP107" not in ids_of(lint_source(src, "t.py"))

    def test_alloc_in_orelse_of_is_not_none_ok(self):
        src = self.WS_PREAMBLE + '''
def gather(csr, frontier, workspace=None):
    if workspace is not None:
        idx = workspace.take("idx", 10)
    else:
        idx = np.zeros(10, dtype=np.int64)
    return idx
'''
        assert "REP107" not in ids_of(lint_source(src, "t.py"))

    def test_empty_sentinel_exempt(self):
        src = self.WS_PREAMBLE + '''
def gather(csr, frontier, ws=None):
    return np.empty(0, dtype=np.int64)
'''
        assert "REP107" not in ids_of(lint_source(src, "t.py"))

    def test_functions_without_workspace_ignored(self):
        src = self.WS_PREAMBLE + '''
def gather(csr, frontier):
    return np.empty(10, dtype=np.int64)
'''
        assert "REP107" not in ids_of(lint_source(src, "t.py"))


class TestInfrastructure:
    def test_parse_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert ids_of(findings) == ["REP000"]

    def test_rule_index_covers_ids_and_names(self):
        idx = rule_index()
        for rule in DEFAULT_RULES:
            assert idx[rule.rule_id] is rule
            assert idx[rule.name] is rule

    def test_rule_ids_unique(self):
        ids = [r.rule_id for r in DEFAULT_RULES]
        assert len(ids) == len(set(ids))

    def test_render_and_json(self):
        findings = lint_source(
            PROBLEM_PREAMBLE + '''
class ToyProblem(ProblemBase):
    NUM_VALUE_ASSOCIATES = 1
''',
            "t.py",
        )
        text = render_findings(findings)
        assert "REP102" in text and "1 finding" in text
        import json

        payload = json.loads(findings_to_json(findings))
        assert payload["count"] == 1
        assert payload["by_rule"] == {"REP102": 1}

    def test_lint_paths_rejects_non_python(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(FileNotFoundError):
            lint_paths([target])


class TestSelfLint:
    def test_src_repro_is_clean(self):
        """Satellite 1: the whole framework passes its own linter."""
        pkg = pathlib.Path(repro.__file__).parent
        findings = lint_paths([pkg])
        assert findings == [], render_findings(findings)
