"""Algebraic combiner certification: exhaustive evaluation of declared
merge ops (REP114), CombinerCertificate semantics, and the Enactor's
relaxed-barrier precondition that consumes the certificates."""

import pathlib

import numpy as np
import pytest

import repro
from repro.check.deep import deep_analyze_source
from repro.check.deep.certify import (
    certify_combiner,
    certify_problem_combiners,
    evaluate_op,
)
from repro.core.combine import (
    ANY,
    MIN,
    OVERWRITE,
    SUM,
    WITNESS,
    Combiner,
    op_semantics,
    register_op_semantics,
)
from repro.core.enactor import Enactor
from repro.errors import SimulationError
from repro.graph.generators.rmat import generate_rmat
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine


def ids_of(findings):
    return [f.rule_id for f in findings]


class TestEvaluateOp:
    def test_min_has_all_three_properties(self):
        idem, comm, assoc, counter = evaluate_op(op_semantics("min"))
        assert idem and comm and assoc
        assert counter == {}

    def test_sum_is_commutative_not_idempotent(self):
        idem, comm, assoc, counter = evaluate_op(op_semantics("sum"))
        assert comm and assoc and not idem
        assert "idempotent" in counter

    def test_overwrite_is_order_dependent(self):
        idem, comm, assoc, counter = evaluate_op(op_semantics("overwrite"))
        # apply-order commutativity: f(f(s,a),b) vs f(f(s,b),a) differ
        assert not comm
        assert "commutative" in counter

    def test_sub_is_apply_order_commutative_not_idempotent(self):
        # s - a - b == s - b - a: subtraction commutes as an *action*,
        # but re-applying an update double-subtracts
        idem, comm, assoc, counter = evaluate_op(op_semantics("sub"))
        assert comm and not idem and not assoc


class TestCertifyCombiner:
    def test_min_certificate(self):
        cert = certify_combiner("labels", MIN)
        assert cert.status == "certified"
        assert cert.certified_order_independent
        assert cert.idempotent and cert.commutative and cert.associative
        assert cert.overclaims == []

    def test_any_certificate(self):
        cert = certify_combiner("in_frontier", ANY)
        assert cert.certified_order_independent

    def test_sum_not_certifiable_for_relaxed(self):
        cert = certify_combiner("acc", SUM)
        assert cert.status == "certified"  # declaration is honest
        assert not cert.certified_order_independent  # but not idempotent

    def test_witness_is_nondeterministic(self):
        cert = certify_combiner("preds", WITNESS)
        assert cert.status == "nondeterministic"
        assert not cert.certified_order_independent
        assert cert.idempotent is None and cert.commutative is None

    def test_overwrite_underclaim_is_allowed(self):
        # OVERWRITE declares commutative=False: the evaluation agrees,
        # so there is no over-claim even though it isn't certifiable
        cert = certify_combiner("x", OVERWRITE)
        assert cert.status == "certified"
        assert cert.overclaims == []
        assert not cert.certified_order_independent

    def test_overclaim_is_refuted_with_counterexample(self):
        lying = Combiner("overwrite", commutative=True, idempotent=True)
        cert = certify_combiner("x", lying)
        assert cert.status == "refuted"
        assert "commutative" in cert.overclaims
        assert "commutative" in cert.counterexamples

    def test_unknown_op(self):
        cert = certify_combiner("x", Combiner("frobnicate"))
        assert cert.status == "unknown-op"
        assert not cert.certified_order_independent

    def test_registered_custom_op_certifies(self):
        register_op_semantics("gcd2", lambda a, b: abs(a) | abs(b),
                              domain=(0, 1, 2, 3))
        cert = certify_combiner(
            "x", Combiner("gcd2", commutative=True, idempotent=True)
        )
        assert cert.status == "certified"
        assert cert.certified_order_independent

    def test_certificate_roundtrips_to_dict(self):
        d = certify_combiner("labels", MIN).to_dict()
        assert d["array"] == "labels"
        assert d["evaluated"]["idempotent"] is True
        assert d["certified_order_independent"] is True


TOY_REJECT = '''
"""doc"""
from repro.core.problem import ProblemBase
from repro.core.combine import Combiner

LYING = Combiner("overwrite", commutative=True, idempotent=True)


class ToyProblem(ProblemBase):
    combiners = {"state": LYING, "delta": Combiner("sub", idempotent=True)}
'''


class TestStaticCertification:
    def test_toy_noncommutative_primitive_rejected(self):
        findings, certs = deep_analyze_source(TOY_REJECT, "toy.py")
        rep114 = [f for f in findings if f.rule_id == "REP114"]
        assert rep114, "over-claimed combiners must be rejected"
        msgs = " | ".join(f.message for f in rep114)
        assert "commutative" in msgs and "counterexample" in msgs
        assert "idempotent" in msgs  # the sub over-claim
        by_array = {c.array: c for c in certs}
        assert by_array["state"].status == "refuted"

    def test_bfs_dobfs_cc_certified_idempotent_commutative(self):
        # the acceptance criterion, statically, on the shipped sources
        prim = pathlib.Path(repro.__path__[0]) / "primitives"
        for fname, arrays in [
            ("bfs.py", ["labels"]),
            ("dobfs.py", ["labels", "in_frontier"]),
            ("cc.py", ["comp"]),
        ]:
            src = (prim / fname).read_text(encoding="utf-8")
            findings, certs = deep_analyze_source(src, str(prim / fname))
            assert not [f for f in findings if f.rule_id == "REP114"]
            by_array = {c.array: c for c in certs}
            for arr in arrays:
                cert = by_array[arr]
                assert cert.certified_order_independent, (fname, arr)
                assert cert.idempotent and cert.commutative

    def test_unknown_op_with_claims_warns(self):
        src = '''
from repro.core.problem import ProblemBase
from repro.core.combine import Combiner


class P(ProblemBase):
    combiners = {"x": Combiner("mystery", commutative=True)}
'''
        findings, certs = deep_analyze_source(src, "p.py")
        warn = [f for f in findings if f.rule_id == "REP114"]
        assert warn and warn[0].severity == "warning"
        assert certs[0].status == "unknown-op"


class TestEnactorPrecondition:
    def _graph(self):
        return generate_rmat(9, 8, seed=7)

    def test_bfs_passes_and_stores_certificates(self):
        g = self._graph()
        p = BFSProblem(g, Machine(num_gpus=2))
        e = Enactor(p, BFSIteration, relaxed_barriers=True)
        assert e.relaxed_barriers
        assert e.combiner_certificates["labels"].certified_order_independent
        # semantics unchanged: relaxed run matches a plain run
        e.enact(src=0)
        p2 = BFSProblem(g, Machine(num_gpus=2))
        Enactor(p2, BFSIteration).enact(src=0)
        np.testing.assert_array_equal(
            p.extract("labels"), p2.extract("labels")
        )

    def test_witness_combiner_is_rejected(self):
        p = BFSProblem(self._graph(), Machine(num_gpus=2),
                       mark_predecessors=True)
        with pytest.raises(SimulationError, match="relaxed_barriers"):
            Enactor(p, BFSIteration, relaxed_barriers=True)

    def test_sum_combiner_is_rejected(self):
        from repro.primitives.pr import PRIteration, PRProblem

        p = PRProblem(self._graph(), Machine(num_gpus=2))
        with pytest.raises(SimulationError, match="certified"):
            Enactor(p, PRIteration, relaxed_barriers=True)

    def test_default_is_off_and_checks_nothing(self):
        p = BFSProblem(self._graph(), Machine(num_gpus=2),
                       mark_predecessors=True)
        e = Enactor(p, BFSIteration)  # WITNESS present, but gate is off
        assert e.combiner_certificates == {}

    def test_runtime_certifier_scopes_to_live_arrays(self):
        p = BFSProblem(self._graph(), Machine(num_gpus=2))
        certs = certify_problem_combiners(
            p, arrays=list(p.data_slices[0].arrays)
        )
        assert "preds" not in certs  # not allocated without the flag
        assert "labels" in certs
