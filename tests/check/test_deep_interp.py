"""Deep-tier abstract interpreter: REP110 (silent-upcast), REP111
(alias-write), REP112 (superstep-escape) — positives, negatives, the
interprocedural reach, waivers, and the shipped-package cleanliness
gate from the issue's acceptance criteria."""

import pathlib

import repro
from repro.check.deep import deep_analyze_paths, deep_analyze_source


def ids_of(findings):
    return [f.rule_id for f in findings]


PREAMBLE = '''
"""doc"""
import numpy as np
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase
from repro.core.combine import MIN


class ToyProblem(ProblemBase):
    combiners = {"labels": MIN}

    def init_data_slice(self, ds, sub):
        ids = sub.csr.ids
        ds.allocate("labels", sub.num_vertices, ids.vertex_dtype)
        ds.allocate("rank", sub.num_vertices, ids.value_dtype)
        ds.allocate("bitmap", sub.num_vertices, bool)
'''


def deep(src):
    findings, _certs = deep_analyze_source(src, "t.py")
    return findings


class TestSilentUpcast:
    def test_float_into_id_array_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        labels = ctx.slice["labels"]
        labels[frontier] = frontier * 0.5
        return frontier, []
'''
        findings = deep(src)
        assert "REP110" in ids_of(findings)
        assert any("labels" in f.message for f in findings)

    def test_true_division_is_float(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        labels = ctx.slice["labels"]
        labels[frontier] = frontier / 2
        return frontier, []
'''
        assert "REP110" in ids_of(deep(src))

    def test_float_fill_into_bool_bitmap_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["bitmap"].fill(0.5)
        return frontier, []
'''
        assert "REP110" in ids_of(deep(src))

    def test_explicit_astype_is_deliberate(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        labels = ctx.slice["labels"]
        labels[frontier] = (frontier * 0.5).astype(np.int64)
        return frontier, []
'''
        assert "REP110" not in ids_of(deep(src))

    def test_float_into_value_array_is_fine(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["rank"][frontier] = 0.5
        return frontier, []
'''
        assert "REP110" not in ids_of(deep(src))

    def test_integer_arithmetic_into_id_is_fine(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        labels = ctx.slice["labels"]
        labels[frontier] = ctx.iteration + 1
        return frontier, []
'''
        assert "REP110" not in ids_of(deep(src))


class TestAliasWrite:
    def test_write_through_slice_view_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        view = ctx.slice["labels"][1:]
        view[0] = 3
        return frontier, []
'''
        findings = deep(src)
        assert "REP111" in ids_of(findings)
        assert any("view" in f.message for f in findings)

    def test_fill_on_anonymous_view_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["labels"][:10].fill(0)
        return frontier, []
'''
        assert "REP111" in ids_of(deep(src))

    def test_fancy_index_copy_is_private(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        part = ctx.slice["labels"][frontier]
        part[0] = 1
        return frontier, []
'''
        assert "REP111" not in ids_of(deep(src))

    def test_direct_slice_array_write_is_fine(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["labels"][frontier] = ctx.iteration
        return frontier, []
'''
        assert "REP111" not in ids_of(deep(src))

    def test_write_into_message_payload_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def expand_incoming(self, ctx, msg):
        msg.vertices[0] = 0
        return msg.vertices, []
'''
        assert "REP111" in ids_of(deep(src))

    def test_asarray_preserves_message_alias(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def expand_incoming(self, ctx, msg):
        incoming = np.asarray(msg.value_associates[0])
        incoming[0] = 1.0
        return msg.vertices, []
'''
        assert "REP111" in ids_of(deep(src))

    def test_copy_of_message_is_private(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def expand_incoming(self, ctx, msg):
        incoming = np.asarray(msg.value_associates[0]).copy()
        incoming[0] = 1.0
        return msg.vertices, []
'''
        assert "REP111" not in ids_of(deep(src))


class TestSuperstepEscape:
    def test_undeclared_self_attr_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        self.cache = frontier
        return frontier, []
'''
        findings = deep(src)
        assert "REP112" in ids_of(findings)
        assert any("self.cache" in f.message for f in findings)

    def test_undeclared_attr_subscript_store_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def __init__(self, problem):
        super().__init__(problem)
        self._tmp = {}

    def full_queue_core(self, ctx, frontier):
        self._tmp[ctx.gpu.device_id] = frontier
        return frontier, []
'''
        assert "REP112" in ids_of(deep(src))

    def test_snapshot_exclude_declares_cache(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    SNAPSHOT_EXCLUDE = IterationBase.SNAPSHOT_EXCLUDE | {"_tmp"}

    def full_queue_core(self, ctx, frontier):
        self._tmp[ctx.gpu.device_id] = frontier
        return frontier, []
'''
        assert "REP112" not in ids_of(deep(src))

    def test_checkpoint_attrs_declares_effect(self):
        src = PREAMBLE.replace(
            'combiners = {"labels": MIN}',
            'combiners = {"labels": MIN}\n'
            '    CHECKPOINT_ATTRS = ("max_delta",)',
        ) + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        problem = self.problem
        problem.max_delta[0] = 1.0
        return frontier, []
'''
        assert "REP112" not in ids_of(deep(src))

    def test_control_hooks_are_exempt(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return frontier, []

    def should_stop(self, iteration, frontier_sizes, in_flight):
        self.phase_memo = iteration
        return True
'''
        assert "REP112" not in ids_of(deep(src))

    def test_init_is_exempt(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def __init__(self, problem):
        super().__init__(problem)
        self.anything = 1

    def full_queue_core(self, ctx, frontier):
        return frontier, []
'''
        assert "REP112" not in ids_of(deep(src))


class TestInterprocedural:
    def test_upcast_inside_module_helper_flagged(self):
        src = PREAMBLE + '''
def scatter_halves(labels, idx):
    labels[idx] = idx * 0.5


class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        scatter_halves(ctx.slice["labels"], frontier)
        return frontier, []
'''
        findings = deep(src)
        assert "REP110" in ids_of(findings)

    def test_view_write_inside_helper_flagged(self):
        src = PREAMBLE + '''
def stomp(arr):
    head = arr[1:]
    head[0] = 7


class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        stomp(ctx.slice["labels"])
        return frontier, []
'''
        assert "REP111" in ids_of(deep(src))

    def test_clean_helper_not_flagged(self):
        src = PREAMBLE + '''
def scatter_ints(labels, idx, val):
    labels[idx] = val


class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        scatter_ints(ctx.slice["labels"], frontier, ctx.iteration)
        return frontier, []
'''
        findings = deep(src)
        assert "REP110" not in ids_of(findings)
        assert "REP111" not in ids_of(findings)

    def test_helper_method_of_iteration_class_analyzed(self):
        # BC's self._forward_core pattern: helper methods are hot too
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return self._core(ctx, frontier)

    def _core(self, ctx, frontier):
        ctx.slice["labels"][frontier] = 0.5 * frontier
        return frontier, []
'''
        assert "REP110" in ids_of(deep(src))


class TestWaiversAndScope:
    def test_waiver_suppresses_deep_finding(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        view = ctx.slice["labels"][1:]
        view[0] = 3  # repro-check: disable=REP111 -- measured, single GPU
        return frontier, []
'''
        assert "REP111" not in ids_of(deep(src))

    def test_non_primitive_module_produces_nothing(self):
        findings, certs = deep_analyze_source(
            "import numpy as np\nx = np.zeros(4)\nx[0] = 0.5\n", "util.py"
        )
        assert findings == []
        assert certs == []


class TestShippedPackageClean:
    def test_no_deep_findings_across_all_six_primitives(self):
        # the acceptance criterion: zero non-baselined REP110-112
        # findings across the shipped primitives (and the rest of the
        # package), with the barrier obligations proved
        pkg = pathlib.Path(repro.__path__[0])
        report = deep_analyze_paths([str(pkg)])
        assert report.findings == []
        assert report.barrier is not None and report.barrier.all_proved
