"""``repro check`` CLI exit-code contract: 0 clean / 1 findings /
2 usage error — for both output modes and the deep tier."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


CLEAN_SRC = '''
"""doc"""
import numpy as np
'''

BAD_SRC = '''
"""doc"""
import numpy as np
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase


class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        total = sum(x for x in frontier)
        return frontier, []
'''

TOY_REJECT = '''
"""doc"""
from repro.core.problem import ProblemBase
from repro.core.combine import Combiner


class ToyProblem(ProblemBase):
    combiners = {"state": Combiner("overwrite", commutative=True)}
'''


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.py"
    p.write_text(CLEAN_SRC, encoding="utf-8")
    return str(p)


@pytest.fixture
def bad_file(tmp_path):
    p = tmp_path / "bad.py"
    p.write_text(BAD_SRC, encoding="utf-8")
    return str(p)


class TestExitCodes:
    def test_clean_is_zero(self, clean_file):
        code, out = run_cli("check", clean_file)
        assert code == 0
        assert "clean" in out

    def test_clean_json_is_zero(self, clean_file):
        code, out = run_cli("check", "--json", clean_file)
        assert code == 0
        doc = json.loads(out)
        assert doc["count"] == 0 and doc["findings"] == []

    def test_findings_is_one(self, bad_file):
        code, out = run_cli("check", bad_file)
        assert code == 1
        assert "REP" in out

    def test_findings_json_is_one(self, bad_file):
        code, out = run_cli("check", "--json", bad_file)
        assert code == 1
        doc = json.loads(out)
        assert doc["count"] >= 1
        assert all("rule_id" in f for f in doc["findings"])

    def test_missing_path_is_two(self, tmp_path):
        code, _ = run_cli("check", str(tmp_path / "nope.py"))
        assert code == 2

    def test_non_python_file_is_two(self, tmp_path):
        p = tmp_path / "notes.txt"
        p.write_text("hello", encoding="utf-8")
        code, _ = run_cli("check", str(p))
        assert code == 2

    def test_unknown_flag_is_usage_error(self, clean_file):
        with pytest.raises(SystemExit) as exc:
            run_cli("check", "--frobnicate", clean_file)
        assert exc.value.code == 2

    def test_bad_baseline_file_is_two(self, clean_file, tmp_path):
        bl = tmp_path / "baseline.json"
        bl.write_text("{}", encoding="utf-8")
        code, _ = run_cli("check", "--baseline", str(bl), clean_file)
        assert code == 2

    def test_missing_baseline_file_is_two(self, clean_file, tmp_path):
        code, _ = run_cli(
            "check", "--baseline", str(tmp_path / "none.json"), clean_file
        )
        assert code == 2


class TestDeepCli:
    def test_deep_clean_is_zero_with_certificates(self, clean_file):
        code, out = run_cli("check", "--deep", clean_file)
        assert code == 0
        assert "barrier discipline: " in out

    def test_deep_rejects_toy_primitive(self, tmp_path):
        p = tmp_path / "toy.py"
        p.write_text(TOY_REJECT, encoding="utf-8")
        code, out = run_cli("check", "--deep", str(p))
        assert code == 1
        assert "REP114" in out and "counterexample" in out

    def test_deep_json_carries_certificates_and_barrier(self, tmp_path):
        p = tmp_path / "toy.py"
        p.write_text(TOY_REJECT, encoding="utf-8")
        code, out = run_cli("check", "--deep", "--json", str(p))
        assert code == 1
        doc = json.loads(out)
        assert doc["by_rule"].get("REP114", 0) >= 1
        assert doc["barrier"]["all_proved"] is True
        assert any(c["status"] == "refuted" for c in doc["certificates"])

    def test_sarif_stdout(self, tmp_path):
        p = tmp_path / "toy.py"
        p.write_text(TOY_REJECT, encoding="utf-8")
        # --sarif takes an optional FILE, so the path comes first
        code, out = run_cli("check", "--deep", str(p), "--sarif")
        assert code == 1
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "REP114" for r in doc["runs"][0]["results"]
        )

    def test_sarif_file_written(self, bad_file, tmp_path):
        sarif_path = tmp_path / "out.sarif"
        code, _ = run_cli(
            "check", "--sarif", str(sarif_path), bad_file
        )
        assert code == 1
        doc = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"]

    def test_baseline_gate_roundtrip(self, tmp_path):
        p = tmp_path / "toy.py"
        p.write_text(TOY_REJECT, encoding="utf-8")
        bl = tmp_path / "baseline.json"
        code, out = run_cli(
            "check", "--deep", "--write-baseline", str(bl), str(p)
        )
        assert code == 0 and "wrote" in out
        code, out = run_cli(
            "check", "--deep", "--baseline", str(bl), str(p)
        )
        assert code == 0
        assert "suppressed" in out


MC_UNSAFE_SRC = '''
"""doc"""
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase
from repro.core.combine import Combiner


class AccProblem(ProblemBase):
    combiners = {"acc": Combiner("sum", commutative=True)}


class AccIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["acc"][frontier] += 1
        return frontier, []

    def expand_incoming(self, ctx, msg):
        ctx.slice["acc"][msg.vertices] += msg.label_values[0]

    def value_associate_arrays(self, ctx, vertices):
        return [ctx.slice["acc"][vertices]]
'''


class TestMcCli:
    """--mc follows the same 0/1/2 contract as the other tiers."""

    def test_mc_clean_is_zero_with_certificates(self, clean_file):
        code, out = run_cli("check", "--mc", "--no-cache", clean_file)
        assert code == 0
        assert "schedule certificates:" in out

    def test_mc_findings_is_one(self, tmp_path):
        p = tmp_path / "acc.py"
        p.write_text(MC_UNSAFE_SRC, encoding="utf-8")
        code, out = run_cli("check", "--mc", "--no-cache", str(p))
        assert code == 1
        assert "REP117" in out
        assert "strict-only [refuted]" in out

    def test_mc_json_carries_schedule_certificates(self, tmp_path):
        p = tmp_path / "acc.py"
        p.write_text(MC_UNSAFE_SRC, encoding="utf-8")
        code, out = run_cli(
            "check", "--mc", "--no-cache", "--json", str(p))
        assert code == 1
        doc = json.loads(out)
        assert doc["by_rule"].get("REP117", 0) == 1
        certs = doc["schedule_certificates"]
        assert certs and certs[0]["primitive"] == "AccIteration"
        assert certs[0]["counterexample"] is not None

    def test_mc_missing_path_is_two(self, tmp_path):
        code, _ = run_cli(
            "check", "--mc", "--no-cache", str(tmp_path / "nope.py"))
        assert code == 2

    def test_mc_sarif_has_rule_metadata(self, tmp_path):
        p = tmp_path / "acc.py"
        p.write_text(MC_UNSAFE_SRC, encoding="utf-8")
        code, out = run_cli(
            "check", "--mc", "--no-cache", str(p), "--sarif")
        assert code == 1
        doc = json.loads(out)
        rules = {r["id"]: r
                 for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert rules["REP117"]["defaultConfiguration"]["level"] == "warning"
        assert "fullDescription" in rules["REP117"]

    def test_mc_baseline_gate_roundtrip(self, tmp_path):
        p = tmp_path / "acc.py"
        p.write_text(MC_UNSAFE_SRC, encoding="utf-8")
        bl = tmp_path / "baseline.json"
        code, out = run_cli("check", "--mc", "--no-cache",
                            "--write-baseline", str(bl), str(p))
        assert code == 0 and "wrote" in out
        code, out = run_cli("check", "--mc", "--no-cache",
                            "--baseline", str(bl), str(p))
        assert code == 0 and "suppressed" in out

    def test_mc_trace_out_writes_replayable_pair(self, tmp_path):
        p = tmp_path / "acc.py"
        p.write_text(MC_UNSAFE_SRC, encoding="utf-8")
        outdir = tmp_path / "traces"
        code, out = run_cli("check", "--mc", "--no-cache",
                            "--trace-out", str(outdir), str(p))
        assert code == 1
        assert (outdir / "AccIteration.schedule.json").exists()
        assert (outdir / "AccIteration.trace.json").exists()
        doc = json.loads((outdir / "AccIteration.schedule.json")
                         .read_text(encoding="utf-8"))
        assert doc["model"] == "relaxed"
        assert doc["witness"]["version"] == 1
        assert doc["witness"]["final_state"] != \
            doc["divergent"]["final_state"]
