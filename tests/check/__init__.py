"""Tests for the framework-contract linter and BSP race sanitizer."""
