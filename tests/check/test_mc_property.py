"""Property test: the model checker's schedule-level verdicts agree
with the algebraic certifier's exhaustive-evaluation verdicts.

``explore_op_schedules`` (schedules tier) quantifies over delivery
orders and at-least-once re-delivery of concrete merge functions;
``evaluate_op`` (certify tier) evaluates the commutativity and
idempotency formulas over the same finite domain.  By construction the
two must agree — this test enforces that for every registered op AND
for arbitrary merge functions drawn as random lookup tables, so a
refinement to either prover that breaks the correspondence fails CI.
"""

import pytest

from repro.check.deep.certify import certify_combiner, evaluate_op
from repro.check.deep.schedules import (
    FOLD_MULTISET,
    FOLD_SEQ,
    FOLD_SET,
    explore_op_schedules,
    fold_kind_for,
)
from repro.core.combine import Combiner, OpSemantics, known_ops, op_semantics

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: small domain: large enough to refute every arithmetic property seen
#: in practice, small enough that both provers stay exhaustive
_DOMAIN = (0, 1, 2)


def _table_fn(table):
    return lambda a, b: table[(a, b)]


_tables = st.fixed_dictionaries({
    (a, b): st.sampled_from(_DOMAIN)
    for a in _DOMAIN for b in _DOMAIN
})


class TestRegisteredOpsAgree:
    @pytest.mark.parametrize("op", known_ops())
    def test_schedule_verdict_matches_algebraic_verdict(self, op):
        sem = op_semantics(op)
        if sem.fn is None:  # witness: nondeterministic by declaration
            return
        idem, comm, _assoc, _cex = evaluate_op(sem)
        v = explore_op_schedules(sem.fn, sem.domain)
        assert v["order_independent"] == comm, op
        assert v["redelivery_safe"] == idem, op

    @pytest.mark.parametrize("op", known_ops())
    def test_fold_kind_is_derived_from_evaluated_algebra(self, op):
        sem = op_semantics(op)
        if sem.fn is None:
            assert fold_kind_for(None, None) == FOLD_SEQ
            return
        idem, comm, _assoc, _cex = evaluate_op(sem)
        fold = fold_kind_for(idem, comm)
        if comm and idem:
            assert fold == FOLD_SET
        elif comm:
            assert fold == FOLD_MULTISET
        else:
            assert fold == FOLD_SEQ


class TestArbitraryMergeFunctionsAgree:
    @settings(max_examples=200, deadline=None)
    @given(table=_tables)
    def test_order_independence_agrees(self, table):
        fn = _table_fn(table)
        sem = OpSemantics(fn, _DOMAIN)
        _idem, comm, _assoc, _cex = evaluate_op(sem)
        v = explore_op_schedules(fn, _DOMAIN)
        assert v["order_independent"] == comm

    @settings(max_examples=200, deadline=None)
    @given(table=_tables)
    def test_redelivery_safety_agrees(self, table):
        fn = _table_fn(table)
        sem = OpSemantics(fn, _DOMAIN)
        idem, _comm, _assoc, _cex = evaluate_op(sem)
        v = explore_op_schedules(fn, _DOMAIN)
        assert v["redelivery_safe"] == idem

    @settings(max_examples=100, deadline=None)
    @given(table=_tables)
    def test_counterexamples_are_concrete_witnesses(self, table):
        fn = _table_fn(table)
        v = explore_op_schedules(fn, _DOMAIN)
        if not v["order_independent"]:
            cex = v["order_counterexample"]
            s, (a, b) = cex["start"], cex["updates"]
            assert fn(fn(s, a), b) != fn(fn(s, b), a)
        if not v["redelivery_safe"]:
            cex = v["redelivery_counterexample"]
            once = fn(cex["start"], cex["update"])
            assert fn(once, cex["update"]) != once


class TestOverClaimAgreement:
    """REP114 fires when a declaration over-claims algebra the evaluator
    refutes; the schedule explorer must reach the same refutation."""

    def test_last_writer_commutativity_over_claim(self):
        comb = Combiner("last", commutative=True,
                        reason="wrongly claimed")
        cert = certify_combiner("x", comb)
        assert "commutative" in cert.overclaims
        sem = op_semantics("last")
        v = explore_op_schedules(sem.fn, sem.domain)
        assert not v["order_independent"]

    def test_sum_idempotency_over_claim(self):
        comb = Combiner("sum", commutative=True, idempotent=True,
                        reason="wrongly claimed")
        cert = certify_combiner("x", comb)
        assert "idempotent" in cert.overclaims
        sem = op_semantics("sum")
        v = explore_op_schedules(sem.fn, sem.domain)
        assert not v["redelivery_safe"]
