"""REP109 unguarded-tracer: obs hook calls must keep the None fast-path."""

from repro.check import lint_source


def ids_of(findings):
    return [f.rule_id for f in findings]


class TestUnguardedTracerRule:
    def test_unguarded_attribute_call_flagged(self):
        src = '''
class Machine:
    def barrier(self, t):
        self.tracer.instant("barrier", vt=t)
        return t
'''
        findings = lint_source(src, "t.py")
        assert "REP109" in ids_of(findings)
        assert any("self.tracer" in f.message for f in findings)

    def test_guarded_attribute_call_ok(self):
        src = '''
class Machine:
    def barrier(self, t):
        if self.tracer is not None:
            self.tracer.instant("barrier", vt=t)
        return t
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_unguarded_local_alias_flagged(self):
        src = '''
class Enactor:
    def _charge(self, gpu):
        tracer = self.tracer
        tracer.op_span(gpu, 0.0, 1.0)
'''
        assert "REP109" in ids_of(lint_source(src, "t.py"))

    def test_guarded_local_alias_ok(self):
        src = '''
class Enactor:
    def _charge(self, gpu):
        tracer = self.tracer
        if tracer is not None:
            tracer.op_span(gpu, 0.0, 1.0)
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_default_none_parameter_flagged(self):
        src = '''
def advance(frontier, tracer=None):
    tracer.op_wall_sample("advance", 0.0)
    return frontier
'''
        assert "REP109" in ids_of(lint_source(src, "t.py"))

    def test_required_parameter_ok(self):
        src = '''
def export_chrome_trace(tracer, path):
    return tracer.spans_of("op")
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_constructed_tracer_ok(self):
        src = '''
def main():
    tracer = Tracer()
    tracer.begin_run("bfs", 4)
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_guarded_ifexp_ok(self):
        src = '''
def advance(frontier, tracer=None):
    wall0 = tracer.wall() if tracer is not None else 0.0
    return frontier, wall0
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_unguarded_ifexp_flagged(self):
        src = '''
def advance(frontier, enabled, tracer=None):
    wall0 = tracer.wall() if enabled else 0.0
    return frontier, wall0
'''
        assert "REP109" in ids_of(lint_source(src, "t.py"))

    def test_early_exit_guard_ok(self):
        src = '''
def sample(tracer=None):
    if tracer is None:
        return
    tracer.instant("checkpoint")
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_boolop_guard_ok(self):
        src = '''
def sample(tracer=None):
    return tracer is not None and tracer.count("span")
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_passing_tracer_as_argument_ok(self):
        src = '''
class Enactor:
    def __init__(self, machine, tracer=None):
        self.tracer = tracer
        if tracer is not None:
            machine.attach_tracer(tracer)
'''
        assert "REP109" not in ids_of(lint_source(src, "t.py"))

    def test_guard_does_not_leak_to_sibling(self):
        src = '''
def sample(tracer=None):
    if tracer is not None:
        tracer.instant("a")
    tracer.instant("b")
'''
        findings = [f for f in lint_source(src, "t.py") if f.rule_id == "REP109"]
        assert len(findings) == 1
        assert findings[0].line == 5
