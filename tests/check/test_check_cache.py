"""Tests for the deep-check memoization cache
(``repro.check.deep.cache``): content-identity hits, mtime
revalidation, version invalidation, silent degradation, and the
``--no-cache`` CLI escape hatch."""

import io
import json
import os

import pytest

from repro.check.deep import DeepCheckCache, deep_analyze_paths
from repro.check.deep.cache import ANALYSIS_VERSION
from repro.cli import main

SRC = '''
"""doc"""
import numpy as np
'''


@pytest.fixture
def module_file(tmp_path):
    p = tmp_path / "mod.py"
    p.write_text(SRC, encoding="utf-8")
    return p


def _cache(tmp_path):
    return DeepCheckCache(root=str(tmp_path / "cache"))


class TestCacheCore:
    def test_miss_then_hit(self, tmp_path, module_file):
        c = _cache(tmp_path)
        assert c.get(str(module_file), SRC, "deep") is None
        c.put(str(module_file), SRC, "deep", {"findings": []})
        assert c.get(str(module_file), SRC, "deep") == {"findings": []}
        assert c.hits == 1 and c.misses == 1

    def test_tiers_are_independent(self, tmp_path, module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "deep", {"findings": [1]})
        assert c.get(str(module_file), SRC, "mc") is None

    def test_persists_across_instances(self, tmp_path, module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "mc", {"findings": []})
        c.save()
        c2 = _cache(tmp_path)
        assert c2.get(str(module_file), SRC, "mc") == {"findings": []}

    def test_touch_with_same_content_revalidates(self, tmp_path,
                                                 module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "deep", {"findings": []})
        c.save()
        st = os.stat(module_file)
        os.utime(module_file, ns=(st.st_atime_ns + 10**9,
                                  st.st_mtime_ns + 10**9))
        c2 = _cache(tmp_path)
        assert c2.get(str(module_file), SRC, "deep") == {"findings": []}

    def test_content_change_misses(self, tmp_path, module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "deep", {"findings": []})
        c.save()
        new_src = SRC + "\nx = 1\n"
        module_file.write_text(new_src, encoding="utf-8")
        c2 = _cache(tmp_path)
        assert c2.get(str(module_file), new_src, "deep") is None

    def test_analysis_version_invalidates_store(self, tmp_path,
                                                module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "deep", {"findings": []})
        c.save()
        store = json.loads(
            open(c.store_path, encoding="utf-8").read())
        assert store["analysis_version"] == ANALYSIS_VERSION
        store["analysis_version"] = ANALYSIS_VERSION + 1
        with open(c.store_path, "w", encoding="utf-8") as fh:
            json.dump(store, fh)
        c2 = _cache(tmp_path)
        assert c2.get(str(module_file), SRC, "deep") is None

    def test_corrupt_store_degrades_to_miss(self, tmp_path, module_file):
        c = _cache(tmp_path)
        c.put(str(module_file), SRC, "deep", {"findings": []})
        c.save()
        with open(c.store_path, "w", encoding="utf-8") as fh:
            fh.write("not json{")
        c2 = _cache(tmp_path)
        assert c2.get(str(module_file), SRC, "deep") is None

    def test_describe_reports_counters(self, tmp_path, module_file):
        c = _cache(tmp_path)
        c.get(str(module_file), SRC, "deep")
        c.put(str(module_file), SRC, "deep", {"findings": []})
        c.get(str(module_file), SRC, "deep")
        assert "1 hit" in c.describe() and "1 miss" in c.describe()


class TestReportIntegration:
    def test_second_run_is_all_hits_with_same_findings(self, tmp_path,
                                                       module_file):
        c1 = _cache(tmp_path)
        r1 = deep_analyze_paths([str(module_file)], verify_framework=False,
                                deep=True, mc=True, cache=c1)
        assert c1.hits == 0
        c2 = _cache(tmp_path)
        r2 = deep_analyze_paths([str(module_file)], verify_framework=False,
                                deep=True, mc=True, cache=c2)
        assert c2.misses == 0 and c2.hits == 2  # one per tier
        assert [f.to_dict() for f in r1.findings] == \
               [f.to_dict() for f in r2.findings]
        assert r2.cache_note


class TestNoCacheFlag:
    def test_no_cache_writes_nothing(self, tmp_path, module_file,
                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = main(["check", "--mc", "--no-cache", str(module_file)],
                    out=out)
        assert code == 0
        assert not (tmp_path / ".repro-check-cache").exists()

    def test_default_populates_cache_dir(self, tmp_path, module_file,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = main(["check", "--mc", str(module_file)], out=out)
        assert code == 0
        assert (tmp_path / ".repro-check-cache" / "deep.json").exists()
