"""Satellite 4: deliberately broken primitives trip both engines.

One statically-broken toy primitive violates every lint rule at once and
the linter must flag each by its rule ID; three dynamically-broken BFS
variants must trip each sanitizer hazard class (SAN201/SAN202/SAN203).
"""

import numpy as np
import pytest

from repro.check import lint_source
from repro.core import combine
from repro.core.enactor import Enactor
from repro.graph.generators.rmat import generate_rmat
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine

BROKEN_SOURCE = '''
"""A toy primitive violating every framework contract at once."""
import numpy as np

from repro.core.iteration import IterationBase
from repro.core.problem import ProblemBase


class BrokenProblem(ProblemBase):
    NUM_VALUE_ASSOCIATES = 1            # REP102: no combiners declared

    def init_data_slice(self, ds, sub):
        ds.allocate("dist", sub.num_vertices, np.float64)   # REP103
        scratch = np.zeros(sub.num_vertices)                # REP105


class BrokenIteration(IterationBase):
    # REP101: no full_queue_core at all

    def expand_incoming(self, ctx):     # REP101: wrong arity
        out = np.empty(ctx.frontier.size)                   # REP105
        for v in ctx.frontier:                              # REP104
            out[v] = 1.0
        self.problem.data_slices[0]["dist"][0] = 0.0        # REP106
        return out, []
'''


class TestLinterFlagsBrokenPrimitive:
    @pytest.fixture(scope="class")
    def findings(self):
        return lint_source(BROKEN_SOURCE, "broken.py")

    @pytest.mark.parametrize(
        "rule_id",
        ["REP101", "REP102", "REP103", "REP104", "REP105", "REP106"],
    )
    def test_rule_fires(self, findings, rule_id):
        assert rule_id in {f.rule_id for f in findings}

    def test_every_finding_is_an_error_with_location(self, findings):
        for f in findings:
            assert f.severity == "error"
            assert f.path == "broken.py" and f.line > 0


class _RaceyProblem(BFSProblem):
    """BFS with an order-DEPENDENT combiner: concurrent replica writes
    are no longer benign and must surface as SAN203."""

    combiners = {"labels": combine.OVERWRITE, "preds": combine.OVERWRITE}


class _PeerWriteIteration(BFSIteration):
    """Mutates another GPU's slice mid-superstep (SAN202)."""

    def full_queue_core(self, ctx, frontier):
        out, stats = super().full_queue_core(ctx, frontier)
        peer = (ctx.gpu.device_id + 1) % self.problem.num_gpus
        if ctx.iteration == 1 and peer != ctx.gpu.device_id:
            self.problem.data_slices[peer]["labels"][0] = 0
        return out, stats


class _PeerReadIteration(BFSIteration):
    """Reads another GPU's slice mid-superstep (SAN201)."""

    def full_queue_core(self, ctx, frontier):
        peer = (ctx.gpu.device_id + 1) % self.problem.num_gpus
        if ctx.iteration == 1 and peer != ctx.gpu.device_id:
            _ = self.problem.data_slices[peer]["labels"][0]
        return super().full_queue_core(ctx, frontier)


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(7, 8, seed=3)


class TestSanitizerFlagsBrokenRuns:
    def _hazards(self, graph, problem_cls, iteration_cls):
        problem = problem_cls(graph, Machine(2))
        metrics = Enactor(problem, iteration_cls, sanitize=True).enact(src=0)
        return metrics.sanitizer_hazards

    def test_unsafe_concurrent_write_is_san203(self, graph):
        hazards = self._hazards(graph, _RaceyProblem, BFSIteration)
        assert "SAN203" in {h["hazard_id"] for h in hazards}
        conflict = next(h for h in hazards if h["hazard_id"] == "SAN203")
        assert "overwrite" in conflict["message"]

    def test_peer_write_is_san202(self, graph):
        hazards = self._hazards(graph, BFSProblem, _PeerWriteIteration)
        assert "SAN202" in {h["hazard_id"] for h in hazards}

    def test_peer_read_is_san201(self, graph):
        hazards = self._hazards(graph, BFSProblem, _PeerReadIteration)
        assert "SAN201" in {h["hazard_id"] for h in hazards}

    def test_hazard_records_are_json_ready(self, graph):
        import json

        hazards = self._hazards(graph, _RaceyProblem, BFSIteration)
        assert hazards
        for h in hazards:
            json.dumps(h)  # must be plain serializable dicts
            assert h["superstep"] >= 0
            assert len(h["gpus"]) >= 1
