"""Deep-tier output plumbing: SARIF 2.1.0 emission, fingerprint-based
baseline suppression, and deterministic finding order across tiers."""

import json
import pathlib

import repro
from repro.check import lint_paths
from repro.check.deep import (
    DEEP_RULES,
    deep_analyze_paths,
    deep_analyze_source,
    findings_to_sarif,
    fingerprint,
    load_baseline,
    split_baselined,
    write_baseline,
)

BAD_SRC = '''
"""doc"""
import numpy as np
from repro.core.problem import ProblemBase
from repro.core.iteration import IterationBase


class ToyProblem(ProblemBase):
    def init_data_slice(self, ds, sub):
        ds.allocate("labels", sub.num_vertices, sub.csr.ids.vertex_dtype)


class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        ctx.slice["labels"][frontier] = 0.5 * frontier
        self.stash = frontier
        return frontier, []
'''


def bad_findings(path="bad.py"):
    findings, _ = deep_analyze_source(BAD_SRC, path)
    return findings


class TestSarif:
    def test_document_shape(self):
        findings = bad_findings()
        assert findings
        doc = json.loads(findings_to_sarif(findings, rules=DEEP_RULES))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"REP110", "REP112"} <= set(rule_ids)
        assert len(run["results"]) == len(findings)
        first = run["results"][0]
        assert first["ruleId"] in set(rule_ids)
        assert rule_ids[first["ruleIndex"]] == first["ruleId"]
        loc = first["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "bad.py"
        assert loc["region"]["startLine"] >= 1

    def test_severity_maps_to_level(self):
        findings = bad_findings()
        findings[0].severity = "warning"
        doc = json.loads(findings_to_sarif(findings))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert "warning" in levels and "error" in levels

    def test_unknown_rules_synthesized(self):
        doc = json.loads(findings_to_sarif(bad_findings(), rules=None))
        assert doc["runs"][0]["tool"]["driver"]["rules"]

    def test_empty_findings_is_valid(self):
        doc = json.loads(findings_to_sarif([]))
        assert doc["runs"][0]["results"] == []


class TestBaseline:
    def test_fingerprint_is_line_independent(self):
        a = bad_findings()
        shifted = deep_analyze_source("\n\n\n" + BAD_SRC, "bad.py")[0]
        assert [f.line for f in a] != [f.line for f in shifted]
        assert [fingerprint(f) for f in a] == [
            fingerprint(f) for f in shifted
        ]

    def test_fingerprint_is_path_root_stable(self):
        a = bad_findings("src/repro/primitives/bad.py")
        b = bad_findings("/abs/checkout/src/repro/primitives/bad.py")
        assert [fingerprint(f) for f in a] == [fingerprint(f) for f in b]

    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        findings = bad_findings()
        bl_path = tmp_path / "baseline.json"
        n = write_baseline(str(bl_path), findings)
        assert n == len({fingerprint(f) for f in findings})
        baseline = load_baseline(str(bl_path))
        new, suppressed = split_baselined(findings, baseline)
        assert new == []
        assert len(suppressed) == len(findings)

    def test_new_findings_not_suppressed(self, tmp_path):
        findings = bad_findings()
        bl_path = tmp_path / "baseline.json"
        write_baseline(str(bl_path), findings[:1])
        baseline = load_baseline(str(bl_path))
        new, suppressed = split_baselined(findings, baseline)
        assert suppressed == findings[:1]
        assert new == findings[1:]

    def test_committed_baseline_carries_known_rep117s(self):
        # the only accepted findings are the model checker's three
        # known relaxed-barrier refutations (SSSP, PR, BC); anything
        # else (REP110-116 especially) must fail the CI gate
        repo_root = pathlib.Path(repro.__path__[0]).parent.parent
        bl = repo_root / "check_deep_baseline.json"
        assert bl.is_file(), "committed deep baseline must exist"
        entries = load_baseline(str(bl))
        assert len(entries) == 3
        assert all(e["rule_id"] == "REP117" for e in entries.values())
        paths = {e["path"] for e in entries.values()}
        assert paths == {
            "src/repro/primitives/sssp.py",
            "src/repro/primitives/pr.py",
            "src/repro/primitives/bc.py",
        }


class TestDeterministicOrder:
    def test_lint_paths_sorted_across_files(self):
        pkg = str(pathlib.Path(repro.__path__[0]))
        a = lint_paths([pkg])
        b = lint_paths([pkg])
        keys = [(f.path, f.line, f.col, f.rule_id) for f in a]
        assert keys == sorted(keys)
        assert [(f.path, f.line) for f in a] == [
            (f.path, f.line) for f in b
        ]

    def test_deep_report_sorted_and_stable(self, tmp_path):
        # two files whose names reverse-sort vs their finding order
        (tmp_path / "zz.py").write_text(BAD_SRC, encoding="utf-8")
        (tmp_path / "aa.py").write_text(BAD_SRC, encoding="utf-8")
        report = deep_analyze_paths([str(tmp_path)],
                                    verify_framework=False)
        keys = [(f.path, f.line, f.col, f.rule_id) for f in report.findings]
        assert keys == sorted(keys)
        again = deep_analyze_paths([str(tmp_path)],
                                   verify_framework=False)
        assert keys == [
            (f.path, f.line, f.col, f.rule_id) for f in again.findings
        ]
