"""Satellite 2: every primitive runs hazard-free under the sanitizer.

All six primitives on a small RMAT graph at 1, 2 and 4 virtual GPUs with
``Enactor(sanitize=True)``: the BSP race sanitizer must report zero
hazards, and the sanitized run must not perturb results.
"""

import numpy as np
import pytest

from repro.graph.build import add_random_weights
from repro.graph.generators.rmat import generate_rmat
from repro.primitives.bc import run_bc
from repro.primitives.bfs import run_bfs
from repro.primitives.cc import run_cc
from repro.primitives.dobfs import run_dobfs
from repro.primitives.pr import run_pagerank
from repro.primitives.sssp import run_sssp
from repro.sim.machine import Machine


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(8, 8, seed=3)


@pytest.fixture(scope="module")
def weighted(graph):
    return add_random_weights(graph, 1, 64, seed=2)


def _runner(name, graph, weighted):
    return {
        "bfs": lambda m, **kw: run_bfs(
            graph, m, src=0, mark_predecessors=True, **kw
        ),
        "dobfs": lambda m, **kw: run_dobfs(graph, m, src=0, **kw),
        "sssp": lambda m, **kw: run_sssp(weighted, m, src=0, **kw),
        "cc": lambda m, **kw: run_cc(graph, m, **kw),
        "bc": lambda m, **kw: run_bc(graph, m, src=0, **kw),
        "pr": lambda m, **kw: run_pagerank(graph, m, max_iter=20, **kw),
    }[name]


PRIMITIVES = ["bfs", "dobfs", "sssp", "cc", "bc", "pr"]


@pytest.mark.parametrize("num_gpus", [1, 2, 4])
@pytest.mark.parametrize("name", PRIMITIVES)
def test_no_hazards(name, num_gpus, graph, weighted):
    run = _runner(name, graph, weighted)
    _, metrics, _ = run(Machine(num_gpus), sanitize=True)
    hazards = metrics.sanitizer_hazards
    assert hazards is not None, "sanitize=True must attach a report"
    assert hazards == [], "\n".join(h["message"] for h in hazards)


@pytest.mark.parametrize("name", PRIMITIVES)
def test_sanitizer_does_not_perturb_results(name, graph, weighted):
    run = _runner(name, graph, weighted)
    plain, plain_metrics, _ = run(Machine(4))
    shadow, _, _ = run(Machine(4), sanitize=True)
    assert np.array_equal(np.asarray(plain), np.asarray(shadow))
    assert plain_metrics.sanitizer_hazards is None
