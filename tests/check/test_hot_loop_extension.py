"""REP104 extension: generator expressions, comprehensions, and
map/filter calls are hidden Python-level element loops in hot hooks."""

from repro.check import lint_source


def ids_of(findings):
    return [f.rule_id for f in findings]


PREAMBLE = '''
"""doc"""
import numpy as np
from repro.core.iteration import IterationBase
'''


def hot(body):
    return PREAMBLE + f'''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
{body}
        return frontier, []
'''


class TestHotLoopExtension:
    def test_generator_expression_flagged(self):
        findings = lint_source(
            hot("        total = sum(x for x in frontier)"), "t.py"
        )
        rep104 = [f for f in findings if f.rule_id == "REP104"]
        assert rep104
        assert any("generator expression" in f.message for f in rep104)

    def test_list_comprehension_flagged(self):
        findings = lint_source(
            hot("        doubled = [x * 2 for x in frontier]"), "t.py"
        )
        assert "REP104" in ids_of(findings)

    def test_set_and_dict_comprehensions_flagged(self):
        findings = lint_source(
            hot("        seen = {x for x in frontier}\n"
                "        pos = {x: i for i, x in enumerate(frontier)}"),
            "t.py",
        )
        assert ids_of(findings).count("REP104") >= 2

    def test_map_call_flagged(self):
        findings = lint_source(
            hot("        strs = list(map(int, frontier))"), "t.py"
        )
        rep104 = [f for f in findings if f.rule_id == "REP104"]
        assert any("map" in f.message for f in rep104)

    def test_filter_call_flagged(self):
        findings = lint_source(
            hot("        odd = list(filter(None, frontier))"), "t.py"
        )
        assert "REP104" in ids_of(findings)

    def test_method_named_map_not_flagged(self):
        findings = lint_source(
            hot("        out = ctx.workspace.map(frontier)"), "t.py"
        )
        assert "REP104" not in ids_of(findings)

    def test_vectorized_body_clean(self):
        findings = lint_source(
            hot("        out = np.unique(frontier * 2)"), "t.py"
        )
        assert "REP104" not in ids_of(findings)

    def test_while_fixpoint_still_allowed(self):
        findings = lint_source(
            hot("        rounds = 0\n"
                "        while rounds < 3:\n"
                "            rounds += 1"),
            "t.py",
        )
        assert "REP104" not in ids_of(findings)

    def test_control_hooks_exempt(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        return frontier, []

    def should_stop(self, iteration, frontier_sizes, in_flight):
        return all(s == 0 for s in frontier_sizes)
'''
        assert "REP104" not in ids_of(lint_source(src, "t.py"))

    def test_waiver_applies(self):
        findings = lint_source(
            hot("        total = sum(x for x in frontier)"
                "  # repro-check: disable=hot-loop -- O(1) frontier"),
            "t.py",
        )
        assert "REP104" not in ids_of(findings)
