"""REP108 swallowed-error: except clauses must not absorb ReproErrors."""

from repro.check import lint_source


def ids_of(findings):
    return [f.rule_id for f in findings]


PREAMBLE = '''
"""doc"""
from repro.errors import CommunicationError, DeviceMemoryError, ReproError
'''


class TestSwallowedErrorRule:
    def test_silent_pass_flagged(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except CommunicationError:
        pass
'''
        findings = lint_source(src, "t.py")
        assert "REP108" in ids_of(findings)
        assert any("CommunicationError" in f.message for f in findings)

    def test_bare_except_flagged(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except:
        return None
'''
        assert "REP108" in ids_of(lint_source(src, "t.py"))

    def test_catch_all_exception_flagged(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except Exception:
        return -1
'''
        assert "REP108" in ids_of(lint_source(src, "t.py"))

    def test_tuple_catch_flagged(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except (KeyError, DeviceMemoryError):
        return None
'''
        assert "REP108" in ids_of(lint_source(src, "t.py"))

    def test_reraise_ok(self):
        src = PREAMBLE + '''
def f(budget):
    try:
        g()
    except CommunicationError:
        if budget <= 0:
            raise
        retry()
'''
        assert "REP108" not in ids_of(lint_source(src, "t.py"))

    def test_recording_exception_ok(self):
        src = PREAMBLE + '''
def f(log):
    try:
        g()
    except ReproError as exc:
        log.append(str(exc))
'''
        assert "REP108" not in ids_of(lint_source(src, "t.py"))

    def test_raising_something_else_ok(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except DeviceMemoryError:
        raise RuntimeError("wrapped")
'''
        assert "REP108" not in ids_of(lint_source(src, "t.py"))

    def test_unrelated_exceptions_ignored(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except (KeyError, ValueError):
        pass
'''
        assert "REP108" not in ids_of(lint_source(src, "t.py"))

    def test_bound_but_unused_flagged(self):
        src = PREAMBLE + '''
def f():
    try:
        g()
    except ReproError as exc:
        return None
'''
        assert "REP108" in ids_of(lint_source(src, "t.py"))
