"""REP115 process-unsafe-state: hot hooks must survive a fork.

The processes backend runs hot hooks inside forked workers; state that
is process-local (file handles, threading primitives, RNG instances)
either diverges per worker or silently stops synchronizing.  The rule
flags both creating such state inside a hot hook and *capturing* it via
a ``self.X`` attribute assigned anywhere in the class.
"""

from repro.check import lint_source


def ids_of(findings):
    return [f.rule_id for f in findings]


PREAMBLE = '''
"""doc"""
import numpy as np
import random
import threading
from repro.core.iteration import IterationBase
'''


class TestProcessUnsafeStateRule:
    def test_open_in_hot_hook_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        log = open("/tmp/debug.log", "a")
        log.write("step")
        return frontier, []
'''
        findings = lint_source(src, "t.py")
        assert "REP115" in ids_of(findings)
        assert any("open()" in f.message for f in findings)

    def test_random_instance_in_hot_hook_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        rng = random.Random(42)
        return frontier[: rng.randrange(3)], []
'''
        findings = lint_source(src, "t.py")
        assert "REP115" in ids_of(findings)
        assert any("random.Random()" in f.message for f in findings)

    def test_numpy_rng_in_hot_hook_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def expand_incoming(self, ctx, msg):
        rng = np.random.default_rng(7)
        return rng.permutation(msg.vertices), []
'''
        findings = lint_source(src, "t.py")
        assert "REP115" in ids_of(findings)
        assert any("np.random.default_rng()" in f.message
                   for f in findings)

    def test_lock_in_hot_hook_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        with threading.Lock():
            return frontier, []
'''
        assert "REP115" in ids_of(lint_source(src, "t.py"))

    def test_captured_self_attr_flagged(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def __init__(self, problem):
        super().__init__(problem)
        self.rng = random.Random(0)
        self.lock = threading.Lock()

    def full_queue_core(self, ctx, frontier):
        with self.lock:
            return frontier[: self.rng.randrange(3)], []
'''
        findings = [f for f in lint_source(src, "t.py")
                    if f.rule_id == "REP115"]
        attrs = {f.extra.get("attr") for f in findings}
        assert {"rng", "lock"} <= attrs

    def test_capture_outside_hot_hook_unflagged(self):
        # creating the state is fine as long as no hot hook touches it
        # (e.g. debugging helpers used only from control hooks)
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def __init__(self, problem):
        super().__init__(problem)
        self.rng = random.Random(0)

    def should_stop(self, iteration, sizes, in_flight):
        return self.rng.random() < 0.01

    def full_queue_core(self, ctx, frontier):
        return frontier, []
'''
        assert "REP115" not in ids_of(lint_source(src, "t.py"))

    def test_deterministic_hot_hook_clean(self):
        src = PREAMBLE + '''
class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        labels = ctx.slice["labels"]
        out = frontier[labels[frontier] < 0]
        return out, []

    def expand_incoming(self, ctx, msg):
        return np.asarray(msg.vertices), []
'''
        assert "REP115" not in ids_of(lint_source(src, "t.py"))

    def test_generic_event_name_not_flagged(self):
        # bare "Event" is deliberately outside the rule: the name is too
        # common for domain objects (the repo's own EventBus events)
        src = PREAMBLE + '''
def Event(kind):
    return {"kind": kind}

class ToyIteration(IterationBase):
    def full_queue_core(self, ctx, frontier):
        evt = Event("step")
        return frontier, [evt][:0]
'''
        assert "REP115" not in ids_of(lint_source(src, "t.py"))
