"""Barrier-discipline verifier (REP113): the shipped framework proves
all obligations; mutated variants that break the determinism contract
are flagged."""

from repro.check.deep import verify_barrier_discipline
from repro.check.deep.barriers import OBLIGATIONS


def obligations_of(findings):
    return {f.extra.get("obligation") for f in findings}


class TestShippedFramework:
    def test_all_obligations_proved(self):
        report = verify_barrier_discipline()
        assert report.all_proved, report.findings
        assert report.findings == []
        assert set(report.obligations) == set(OBLIGATIONS)

    def test_report_serializes(self):
        d = verify_barrier_discipline().to_dict()
        assert d["all_proved"] is True
        assert all(d["obligations"].values())


GOOD_BACKEND = '''
class SerialBackend:
    def map_supersteps(self, fns):
        return [fn() for fn in fns]


class ThreadsBackend:
    def map_supersteps(self, fns):
        futures = [pool.submit(fn) for fn in fns]
        return [f.result() for f in futures]
'''

GOOD_ENACTOR = '''
class Enactor:
    def enact(self):
        while True:
            step_fns = [(lambda idx=i: step(idx)) for i in range(n)]
            results = self.backend.map_supersteps(step_fns)
            for eff in results:
                apply(eff)
            self.machine.barrier()
            if done():
                break
'''


class TestBackendMutations:
    def test_good_shapes_prove(self):
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", GOOD_ENACTOR)
        )
        assert report.all_proved, report.findings

    def test_completion_order_gather_flagged(self):
        bad = '''
from concurrent.futures import as_completed


class ThreadsBackend:
    def map_supersteps(self, fns):
        futures = [pool.submit(fn) for fn in fns]
        return [f.result() for f in as_completed(futures)]
'''
        report = verify_barrier_discipline(
            backend=("b.py", bad), enactor=("e.py", GOOD_ENACTOR)
        )
        assert not report.all_proved
        assert not report.obligations["no-completion-order-gather"]
        assert "no-completion-order-gather" in obligations_of(
            report.findings
        )
        assert all(f.rule_id == "REP113" for f in report.findings)

    def test_unprovable_return_order_flagged(self):
        bad = '''
class ThreadsBackend:
    def map_supersteps(self, fns):
        results = []
        for fn in fns:
            results.append(fn())
        return sorted(results, key=id)
'''
        report = verify_barrier_discipline(
            backend=("b.py", bad), enactor=("e.py", GOOD_ENACTOR)
        )
        assert not report.obligations["backend-return-order"]

    def test_filtered_gather_is_not_order_provable(self):
        bad = '''
class T:
    def map_supersteps(self, fns):
        return [fn() for fn in fns if fn is not None]
'''
        report = verify_barrier_discipline(
            backend=("b.py", bad), enactor=("e.py", GOOD_ENACTOR)
        )
        assert not report.obligations["backend-return-order"]


class TestEnactorMutations:
    def test_merge_without_barrier_flagged(self):
        bad = GOOD_ENACTOR.replace("            self.machine.barrier()\n",
                                   "")
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", bad)
        )
        assert not report.obligations["merge-at-barrier"]
        assert "merge-at-barrier" in obligations_of(report.findings)

    def test_reordered_merge_flagged(self):
        bad = GOOD_ENACTOR.replace(
            "for eff in results:", "for eff in sorted(results, key=id):"
        )
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", bad)
        )
        assert not report.obligations["merge-in-gpu-index-order"]

    def test_reordered_dispatch_flagged(self):
        bad = GOOD_ENACTOR.replace(
            "step_fns = [(lambda idx=i: step(idx)) for i in range(n)]",
            "step_fns = list(reversed("
            "[(lambda idx=i: step(idx)) for i in range(n)]))",
        )
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", bad)
        )
        assert not report.obligations["dispatch-in-gpu-index-order"]

    def test_double_merge_flagged(self):
        bad = GOOD_ENACTOR.replace(
            "            self.machine.barrier()\n",
            "            self.machine.barrier()\n"
            "            for eff in results:\n"
            "                apply_again(eff)\n",
        )
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", bad)
        )
        assert not report.obligations["single-merge-site"]

    def test_missing_merge_loop_flagged(self):
        bad = '''
class Enactor:
    def enact(self):
        results = self.backend.map_supersteps(step_fns)
        self.machine.barrier()
        return results
'''
        report = verify_barrier_discipline(
            backend=("b.py", GOOD_BACKEND), enactor=("e.py", bad)
        )
        assert not report.obligations["merge-at-barrier"]
