"""Unit tests for the superstep interleaving explorer
(``repro.check.deep.schedules``): fold semantics, divergence detection,
partial-order reduction accounting, and replayable counterexamples."""

import json

import pytest

from repro.check.deep.schedules import (
    FOLD_EXCLUDED,
    FOLD_MULTISET,
    FOLD_SEQ,
    FOLD_SET,
    ArrayModel,
    Effect,
    GpuProgram,
    build_counterexample,
    canon,
    dump_trace,
    explore,
    explore_op_schedules,
    fold_kind_for,
    replay,
)


def _prog(core=(), expand=(), payload=()):
    return GpuProgram(core=tuple(core), expand=tuple(expand),
                      payload_arrays=frozenset(payload))


def _arr(name="x", op="min", fold=FOLD_SET):
    return ArrayModel(name=name, op=op, fold=fold)


class TestFoldKind:
    def test_algebra_to_fold_mapping(self):
        assert fold_kind_for(True, True) == FOLD_SET
        assert fold_kind_for(False, True) == FOLD_MULTISET
        assert fold_kind_for(True, False) == FOLD_SEQ
        assert fold_kind_for(None, None) == FOLD_SEQ
        assert fold_kind_for(True, True, excluded=True) == FOLD_EXCLUDED

    def test_canon_is_order_insensitive_for_sets(self):
        assert canon(frozenset(["b", "a"])) == canon(frozenset(["a", "b"]))


class TestStrictModel:
    def test_idempotent_forward_is_deterministic(self):
        # BFS shape: apply a constant locally, forward the payload of
        # the same array at the merge; SET fold absorbs re-application.
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c"))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr()], num_gpus=2, horizon=2)
        assert res.model == "strict"
        assert res.deterministic and res.exhausted
        assert res.num_final_states == 1
        assert res.divergent_choices is None

    def test_peer_write_diverges_under_strict(self):
        # A peer-slice write voids the pinned sender merge order: two
        # strict schedules reach different states -> REP116 territory.
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c")),
                  Effect("peer", "x", ("expr", "h:1", frozenset(["x"])))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr(fold=FOLD_SEQ)], num_gpus=2, horizon=2)
        assert not res.deterministic
        assert res.witness_choices is not None
        assert res.divergent_choices is not None

    def test_sum_fold_strict_is_deterministic(self):
        # Non-idempotent merges are still safe under strict barriers:
        # every schedule delivers each update exactly once in pinned
        # sender order, and the multiset fold ignores that order.
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c"))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr(op="sum", fold=FOLD_MULTISET)],
                      num_gpus=2, horizon=2)
        assert res.deterministic and res.exhausted


class TestRelaxedModel:
    def _sum_prog(self):
        return _prog(
            core=[Effect("apply", "x", ("const", "c"))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )

    def test_duplicate_delivery_breaks_multiset_fold(self):
        # Relaxed re-delivery double-applies a sum update: divergent.
        res = explore(self._sum_prog(),
                      [_arr(op="sum", fold=FOLD_MULTISET)],
                      num_gpus=2, horizon=2, relaxed=True)
        assert res.model == "relaxed"
        assert not res.deterministic
        assert res.divergent_choices is not None

    def test_set_fold_absorbs_duplicates(self):
        res = explore(self._sum_prog(), [_arr(op="min", fold=FOLD_SET)],
                      num_gpus=2, horizon=2, relaxed=True)
        assert res.deterministic and res.exhausted

    def test_seq_fold_is_slot_sensitive(self):
        # Order-dependent merges see different arrival orders when a
        # straggler lands late.
        res = explore(self._sum_prog(), [_arr(op="sub", fold=FOLD_SEQ)],
                      num_gpus=2, horizon=2, relaxed=True)
        assert not res.deterministic

    def test_mid_superstep_reset_races_stragglers(self):
        # PR shape: the accumulator is reinitialized inside the compute
        # phase; a straggler from the previous epoch lands after the
        # reset in one schedule and before it in another.
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c")),
                  Effect("reset", "x", ("const", "z"), hook="h", line=3)],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr(op="min", fold=FOLD_SET)],
                      num_gpus=2, horizon=2, relaxed=True)
        assert not res.deterministic

    def test_value_read_of_merged_state_diverges(self):
        # SSSP shape: the forwarded value is an expression over the
        # combined array, so a late merge changes the snapshot it reads.
        prog = _prog(
            core=[Effect("apply", "x",
                         ("expr", "h:1", frozenset(["x"])))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr(op="min", fold=FOLD_SET)],
                      num_gpus=2, horizon=2, relaxed=True)
        assert not res.deterministic


class TestPartialOrderReduction:
    def test_por_prunes_symmetric_schedules(self):
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c"))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        strict = explore(prog, [_arr()], num_gpus=3, horizon=2)
        assert strict.exhausted
        # full independence collapses strict exploration to a single
        # canonical interleaving
        assert strict.schedules == 1
        assert strict.independence, "pruning must be justified"
        relaxed = explore(prog, [_arr()], num_gpus=3, horizon=2,
                          relaxed=True)
        assert relaxed.exhausted
        assert relaxed.pruned > 0, "POR should prune relaxed branches"

    def test_budget_exhaustion_is_reported(self):
        prog = _prog(
            core=[Effect("apply", "x",
                         ("expr", "h:1", frozenset(["x"])))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        res = explore(prog, [_arr(op="sub", fold=FOLD_SEQ)], num_gpus=3,
                      horizon=2, relaxed=True, max_states=5,
                      stop_on_divergence=False)
        assert not res.exhausted


class TestReplay:
    def _divergent(self):
        prog = _prog(
            core=[Effect("apply", "x", ("const", "c"))],
            expand=[Effect("apply", "x", ("pay", frozenset(["x"])))],
            payload=["x"],
        )
        arrays = [_arr(op="sum", fold=FOLD_MULTISET)]
        res = explore(prog, arrays, num_gpus=2, horizon=2, relaxed=True)
        assert res.divergent_choices is not None
        return prog, arrays, res

    def test_replay_is_deterministic(self):
        prog, arrays, res = self._divergent()
        a = replay(prog, arrays, res.num_gpus, res.horizon,
                   res.divergent_choices, res.model, primitive="Toy")
        b = replay(prog, arrays, res.num_gpus, res.horizon,
                   res.divergent_choices, res.model, primitive="Toy")
        assert a == b
        assert a["events"], "replay must record schedule events"

    def test_counterexample_pair_actually_diverges(self):
        prog, arrays, res = self._divergent()
        ce = build_counterexample(prog, arrays, res, primitive="Toy")
        assert ce["model"] == "relaxed"
        wit, div = ce["witness"], ce["divergent"]
        assert wit["final_state"] != div["final_state"]
        assert ce["first_divergent_step"] >= 0

    def test_trace_doc_is_json_serializable(self):
        prog, arrays, res = self._divergent()
        ce = build_counterexample(prog, arrays, res, primitive="Toy")
        doc = json.loads(dump_trace(ce["witness"]))
        assert doc["version"] == 1
        assert doc["primitive"] == "Toy"


class TestOpScheduleExplorer:
    def test_min_is_fully_safe(self):
        from repro.core.combine import op_semantics
        sem = op_semantics("min")
        v = explore_op_schedules(sem.fn, sem.domain)
        assert v["order_independent"] and v["redelivery_safe"]

    def test_sum_is_order_independent_but_not_redelivery_safe(self):
        from repro.core.combine import op_semantics
        sem = op_semantics("sum")
        v = explore_op_schedules(sem.fn, sem.domain)
        assert v["order_independent"]
        assert not v["redelivery_safe"]
        assert v["redelivery_counterexample"] is not None

    def test_last_writer_order_counterexample_is_concrete(self):
        from repro.core.combine import op_semantics
        sem = op_semantics("last")
        v = explore_op_schedules(sem.fn, sem.domain)
        assert not v["order_independent"]
        cex = v["order_counterexample"]
        finals = set(cex["finals"].values())
        assert len(finals) > 1
