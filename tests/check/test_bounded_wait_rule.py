"""REP118 unbounded-wait: core IPC waits must be bounded.

The processes backend's parent/worker pipes deadlock the whole run if
any blocking wait on the worker path is unbounded — a SIGKILLed worker
never replies to ``Connection.recv()``, a SIGSTOPped one never
satisfies ``Process.join()``.  The rule flags the unbounded forms in
modules under a ``core`` directory and honors the inline waiver for
sites bounded by a dominating ``poll()``/``connection.wait()``.
"""

import pathlib

import repro
from repro.check import lint_source
from repro.check.lint import lint_paths
from repro.check.rules import BoundedWaitRule


CORE = "src/repro/core/toy.py"


def ids_of(findings):
    return [f.rule_id for f in findings]


def lint_core(src):
    return [f for f in lint_source(src, CORE) if f.rule_id == "REP118"]


class TestBoundedWaitRule:
    def test_bare_recv_flagged(self):
        findings = lint_core("def pump(conn):\n    return conn.recv()\n")
        assert ids_of(findings) == ["REP118"]
        assert "recv" in findings[0].message

    def test_join_without_timeout_flagged(self):
        findings = lint_core("def reap(proc):\n    proc.join()\n")
        assert ids_of(findings) == ["REP118"]
        assert "join" in findings[0].message

    def test_queue_get_without_timeout_flagged(self):
        src = "def drain(q):\n    return q.get()\n"
        assert ids_of(lint_core(src)) == ["REP118"]
        src = "def drain(q):\n    return q.get(True)\n"
        assert ids_of(lint_core(src)) == ["REP118"]

    def test_bounded_forms_pass(self):
        src = (
            "def ok(proc, q, d, parts):\n"
            "    proc.join(timeout=5.0)\n"
            "    proc.join(5.0)\n"
            "    q.get(timeout=1.0)\n"
            "    q.get(True, 1.0)\n"
            "    q.get(block=False)\n"
            "    q.get_nowait()\n"
            "    d.get('key')\n"
            "    ', '.join(parts)\n"
        )
        assert lint_core(src) == []

    def test_waiver_suppresses_bounded_recv(self):
        src = (
            "def pump(conn):\n"
            "    if conn.poll(1.0):\n"
            "        # repro-check: disable=REP118 -- poll() bounds this recv\n"
            "        return conn.recv()\n"
        )
        assert lint_core(src) == []

    def test_outside_core_not_flagged(self):
        src = "def pump(conn):\n    return conn.recv()\n"
        findings = lint_source(src, "tools/replay.py")
        assert "REP118" not in ids_of(findings)

    def test_shipped_core_is_clean(self):
        # the acceptance gate: every blocking IPC wait in the shipped
        # core either carries a timeout or a waiver naming its bound
        core = pathlib.Path(repro.__path__[0]) / "core"
        findings = [
            f for f in lint_paths([str(core)], rules=[BoundedWaitRule()])
            if f.rule_id == "REP118"
        ]
        assert findings == []
