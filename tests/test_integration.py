"""End-to-end integration: the whole stack on every graph family.

These tests run the complete pipeline — generator → cleanup → partition
→ duplication → multi-GPU execution → extraction → reference check —
the way a downstream user would, plus cross-primitive consistency checks
(DOBFS vs BFS levels, SSSP with unit weights vs BFS, BC's depth vs BFS)
and failure-injection scenarios (device OOM, the just-enough rescue).
"""

import numpy as np
import pytest

from repro import datasets
from repro.baselines.reference import (
    bc_reference,
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.core.enactor import Enactor
from repro.errors import DeviceMemoryError
from repro.graph.build import add_random_weights, from_edges
from repro.graph.csr import CsrGraph
from repro.partition import MetisLikePartitioner
from repro.primitives import (
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from repro.primitives.bc import run_full_bc
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.device import DeviceSpec
from repro.sim.machine import Machine
from repro.sim.memory import JustEnough, MaxAlloc


@pytest.mark.parametrize(
    "dataset", ["soc-LiveJournal1", "indochina-2004", "rmat_n20_512"]
)
class TestFullPipeline:
    """All six primitives, real Table II stand-ins, 3 GPUs."""

    def _machine(self, dataset):
        return Machine(3, scale=datasets.machine_scale(dataset))

    def test_bfs(self, dataset):
        g = datasets.load(dataset)
        ref, _ = bfs_reference(g, 2)
        labels, metrics, _ = run_bfs(g, self._machine(dataset), src=2)
        assert np.array_equal(labels, ref)
        assert metrics.elapsed > 0

    def test_dobfs(self, dataset):
        g = datasets.load(dataset)
        ref, _ = bfs_reference(g, 2)
        labels, _, _ = run_dobfs(g, self._machine(dataset), src=2)
        assert np.array_equal(labels, ref)

    def test_sssp(self, dataset):
        g = add_random_weights(datasets.load(dataset), 1, 64, seed=4)
        ref, _ = sssp_reference(g, 2)
        dist, _, _ = run_sssp(g, self._machine(dataset), src=2)
        assert np.allclose(dist, ref)

    def test_cc(self, dataset):
        g = datasets.load(dataset)
        comp, _, _ = run_cc(g, self._machine(dataset))
        assert np.array_equal(comp, cc_reference(g))

    def test_bc(self, dataset):
        g = datasets.load(dataset)
        bc, _, _ = run_bc(g, self._machine(dataset), src=2)
        assert np.allclose(bc, bc_reference(g, source=2), atol=1e-8)

    def test_pr(self, dataset):
        g = datasets.load(dataset)
        ranks, _, _ = run_pagerank(g, self._machine(dataset))
        assert np.allclose(ranks, pagerank_reference(g), rtol=1e-5)


class TestCrossPrimitiveConsistency:
    def test_dobfs_equals_bfs(self, small_rmat, machine4):
        b, _, _ = run_bfs(small_rmat, machine4, src=9)
        d, _, _ = run_dobfs(small_rmat, machine4, src=9)
        assert np.array_equal(b, d)

    def test_unit_weight_sssp_equals_bfs(self, small_rmat, machine4):
        ones = CsrGraph(
            small_rmat.num_vertices,
            small_rmat.row_offsets,
            small_rmat.col_indices,
            np.ones(small_rmat.num_edges),
            ids=small_rmat.ids,
            directed=False,
        )
        dist, _, _ = run_sssp(ones, machine4, src=9)
        levels, _, _ = run_bfs(small_rmat, machine4, src=9)
        finite = np.isfinite(dist)
        assert np.array_equal(dist[finite].astype(np.int64), levels[finite])
        assert np.all(levels[~finite] == -1)

    def test_bc_depths_equal_bfs_levels(self, small_rmat, machine2):
        from repro.primitives.bc import BCIteration, BCProblem

        prob = BCProblem(small_rmat, machine2)
        Enactor(prob, BCIteration).enact(src=9)
        levels, _, _ = run_bfs(small_rmat, machine2, src=9)
        assert np.array_equal(prob.depths(), levels)

    def test_cc_consistent_with_bfs_reachability(
        self, two_components_graph, machine2
    ):
        comp, _, _ = run_cc(two_components_graph, machine2)
        levels, _, _ = run_bfs(two_components_graph, machine2, src=0)
        reached = levels >= 0
        assert len(set(comp[reached].tolist())) == 1
        assert set(comp[~reached]) != set(comp[reached])

    def test_full_bc_matches_brandes_sum(self, machine2):
        g = from_edges(12, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5),
                            (5, 6), (6, 3), (4, 7), (7, 8), (8, 9),
                            (9, 10), (10, 11), (2, 9)])
        bc, metrics, _ = run_full_bc(g, machine2)
        ref = bc_reference(g)
        assert np.allclose(bc, ref, atol=1e-9)
        assert metrics.elapsed > 0


class TestFailureInjection:
    def _tiny_device(self, mb: int) -> DeviceSpec:
        return DeviceSpec("tiny", mb * 1024**2, 288e9)

    def test_graph_too_big_raises_oom(self, small_rmat):
        machine = Machine(1, spec=self._tiny_device(4), scale=64.0)
        with pytest.raises(DeviceMemoryError):
            BFSProblem(small_rmat, machine)

    def test_just_enough_fits_where_max_cannot(self, small_rmat):
        """Section VI-B's central claim: just-enough allocation lets a
        subgraph fit on a GPU where worst-case allocation runs out."""
        # capacity fits the subgraph+labels (~80 MB scaled) with room for
        # just-enough's small queues, but not MaxAlloc's 3x|E| buffers
        spec = self._tiny_device(160)
        machine = Machine(1, spec=spec, scale=1024.0)
        prob = BFSProblem(small_rmat, machine)
        with pytest.raises(DeviceMemoryError):
            Enactor(prob, BFSIteration, scheme=MaxAlloc())
        prob.release()
        # ...but just-enough runs to completion with correct results
        machine2 = Machine(1, spec=spec, scale=1024.0)
        prob2 = BFSProblem(small_rmat, machine2)
        metrics = Enactor(prob2, BFSIteration, scheme=JustEnough()).enact(src=0)
        ref, _ = bfs_reference(small_rmat, 0)
        assert np.array_equal(prob2.labels(), ref)
        assert metrics.elapsed > 0

    def test_oom_error_is_actionable(self, small_rmat):
        machine = Machine(1, spec=self._tiny_device(4), scale=64.0)
        with pytest.raises(DeviceMemoryError, match="GiB"):
            BFSProblem(small_rmat, machine)

    def test_partitioner_crash_isolated(self, small_rmat, machine2):
        class BrokenPartitioner:
            name = "broken"

            def partition(self, graph, num_gpus):
                raise RuntimeError("synthetic partitioner failure")

        with pytest.raises(RuntimeError, match="synthetic"):
            BFSProblem(small_rmat, machine2, partitioner=BrokenPartitioner())


class TestDeterminism:
    """Everything is bit-reproducible run to run (DESIGN.md decision 5)."""

    def test_metrics_identical_across_runs(self, small_rmat):
        results = []
        for _ in range(2):
            m = Machine(3, scale=64.0)
            labels, metrics, _ = run_bfs(small_rmat, m, src=3)
            results.append((labels, metrics.elapsed, metrics.supersteps))
        assert np.array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]
        assert results[0][2] == results[1][2]

    def test_metis_partition_deterministic(self, small_web):
        a = MetisLikePartitioner(seed=7).partition(small_web, 4)
        b = MetisLikePartitioner(seed=7).partition(small_web, 4)
        assert np.array_equal(a.partition_table, b.partition_table)
