"""Communication: split, package, broadcast, message sizing."""

import numpy as np
import pytest

from repro.core.comm import (
    Message,
    make_broadcast_messages,
    make_selective_messages,
    split_frontier,
)
from repro.graph.build import from_edges
from repro.partition import (
    DUPLICATE_1HOP,
    DUPLICATE_ALL,
    build_subgraphs,
)
from repro.partition.base import PartitionResult
from repro.types import ID32, ID64


@pytest.fixture
def split_setup():
    g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    pr = PartitionResult.from_assignment(np.array([0, 0, 1, 1, 2, 2]), 3)
    subs = build_subgraphs(g, pr, DUPLICATE_ALL)
    return g, pr, subs


class TestSplit:
    def test_local_remote_separation(self, split_setup):
        g, pr, subs = split_setup
        s0 = subs[0]
        # frontier on GPU0 containing its own vertex 1, plus 2 (GPU1), 4 (GPU2)
        local, remote, st = split_frontier(s0, np.array([1, 2, 4]))
        assert local.tolist() == [1]
        assert remote[1].tolist() == [2]
        assert remote[2].tolist() == [4]
        assert st.vertices_processed == 3

    def test_all_local(self, split_setup):
        _, _, subs = split_setup
        local, remote, _ = split_frontier(subs[0], np.array([0, 1]))
        assert local.tolist() == [0, 1]
        assert remote == {}

    def test_empty_frontier(self, split_setup):
        _, _, subs = split_setup
        local, remote, st = split_frontier(subs[0], np.array([], np.int64))
        assert local.size == 0
        assert remote == {}


class TestSelectiveMessages:
    def test_vertices_converted_to_host_ids(self):
        g = from_edges(4, [(0, 2), (1, 3)])
        pr = PartitionResult.from_assignment(np.array([0, 0, 1, 1]), 2)
        subs = build_subgraphs(g, pr, DUPLICATE_1HOP)
        s0 = subs[0]
        # GPU0's proxies for globals {2,3} are locals {2,3}
        local, remote, _ = split_frontier(s0, np.array([2, 3]))
        msgs, _ = make_selective_messages(s0, remote, [], [])
        (m,) = msgs
        assert m.dst_gpu == 1
        # on GPU1, globals {2,3} are locals {0,1}
        assert sorted(m.vertices.tolist()) == [0, 1]

    def test_associates_gathered(self, split_setup):
        _, _, subs = split_setup
        s0 = subs[0]
        preds = np.arange(6) * 10
        dist = np.arange(6) * 0.5
        _, remote, _ = split_frontier(s0, np.array([2, 4]))
        msgs, st = make_selective_messages(s0, remote, [preds], [dist])
        by_dst = {m.dst_gpu: m for m in msgs}
        assert by_dst[1].vertex_associates[0].tolist() == [20]
        assert by_dst[2].value_associates[0].tolist() == [2.0]
        assert st.vertices_processed == 2

    def test_deterministic_peer_order(self, split_setup):
        _, _, subs = split_setup
        _, remote, _ = split_frontier(subs[0], np.array([4, 2]))
        msgs, _ = make_selective_messages(subs[0], remote, [], [])
        assert [m.dst_gpu for m in msgs] == [1, 2]


class TestBroadcastMessages:
    def test_one_message_per_peer(self, split_setup):
        _, _, subs = split_setup
        msgs, st = make_broadcast_messages(subs[0], np.array([0, 1]), 3, [], [])
        assert len(msgs) == 2
        assert {m.dst_gpu for m in msgs} == {1, 2}
        for m in msgs:
            assert m.vertices.tolist() == [0, 1]

    def test_empty_frontier_messages_empty(self, split_setup):
        _, _, subs = split_setup
        msgs, st = make_broadcast_messages(
            subs[0], np.array([], np.int64), 3, [], []
        )
        assert all(m.num_items == 0 for m in msgs)
        assert st.launches == 0

    def test_single_gpu_no_messages(self, split_setup):
        _, _, subs = split_setup
        msgs, _ = make_broadcast_messages(subs[0], np.array([0]), 1, [], [])
        assert msgs == []


class TestMessageSizing:
    def test_nbytes_vertex_only(self):
        m = Message(0, 1, np.arange(10))
        assert m.nbytes(ID32) == 40
        assert m.nbytes(ID64) == 80  # Table V: 64-bit IDs double the wire

    def test_nbytes_with_associates(self):
        m = Message(
            0,
            1,
            np.arange(10),
            vertex_associates=[np.arange(10)],
            value_associates=[np.arange(10, dtype=np.float64)],
        )
        assert m.nbytes(ID32) == 10 * (4 + 4 + 8)

    def test_num_items(self):
        assert Message(0, 1, np.arange(7)).num_items == 7
