"""Checkpoint capture/restore/serialization (repro.core.checkpoint)."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint, capture_checkpoint
from repro.errors import SimulationError
from repro.primitives.bfs import BFSIteration, BFSProblem, run_bfs
from repro.primitives.dobfs import run_dobfs
from repro.sim.machine import Machine


def _bfs_setup(graph, n=2):
    machine = Machine(n)
    problem = BFSProblem(graph, machine)
    iteration_obj = BFSIteration(problem)
    frontiers = problem.reset(src=0)
    return machine, problem, iteration_obj, frontiers


class TestCaptureRestore:
    def test_arrays_roundtrip(self, small_rmat):
        machine, problem, it, frontiers = _bfs_setup(small_rmat)
        ckpt = capture_checkpoint(
            problem, it, 0, frontiers, [[] for _ in range(2)]
        )
        before = problem.extract("labels").copy()
        # trash the state, then restore
        for ds in problem.data_slices:
            ds["labels"].fill(123)
        problem.restore_arrays(ckpt.arrays)
        assert np.array_equal(problem.extract("labels"), before)

    def test_frontiers_are_global(self, small_rmat):
        machine, problem, it, frontiers = _bfs_setup(small_rmat)
        ckpt = capture_checkpoint(
            problem, it, 0, frontiers, [[] for _ in range(2)]
        )
        # the checkpointed frontier for the source GPU holds the global
        # source vertex, independent of local numbering
        sizes = [f.size for f in ckpt.frontiers]
        assert sum(sizes) == 1
        g = sizes.index(1)
        assert ckpt.frontiers[g][0] == 0  # global vertex ID of src

    def test_checkpoint_is_a_deep_snapshot(self, small_rmat):
        machine, problem, it, frontiers = _bfs_setup(small_rmat)
        ckpt = capture_checkpoint(
            problem, it, 0, frontiers, [[] for _ in range(2)]
        )
        saved = {k: v.copy() for k, v in ckpt.arrays.items()}
        for ds in problem.data_slices:
            ds["labels"].fill(7)
        for k, v in saved.items():
            assert np.array_equal(ckpt.arrays[k], v)


class TestDiskFormat:
    def test_save_load_roundtrip(self, small_rmat, tmp_path):
        machine, problem, it, frontiers = _bfs_setup(small_rmat)
        ckpt = capture_checkpoint(
            problem, it, 3, frontiers, [[] for _ in range(2)]
        )
        path = tmp_path / "ckpt.npz"
        ckpt.save(path)
        back = Checkpoint.load(path)
        assert back.iteration == 3
        assert back.num_gpus == 2
        assert np.array_equal(back.partition_table, ckpt.partition_table)
        for name, arr in ckpt.arrays.items():
            assert np.array_equal(back.arrays[name], arr)
        for a, b in zip(ckpt.frontiers, back.frontiers):
            assert np.array_equal(a, b)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(SimulationError):
            Checkpoint.load(path)

    def test_dataclass_attrs_survive_disk(self, small_rmat, tmp_path):
        # DOBFS checkpoints its per-GPU DirectionState machines; a disk
        # round-trip must rebuild the dataclasses, not dicts
        path = tmp_path / "dobfs.npz"
        ref, metrics, _ = run_dobfs(
            small_rmat, Machine(2), src=0,
            checkpoint_every=2, checkpoint_path=str(path),
        )
        assert metrics.checkpoints_taken >= 1
        back = Checkpoint.load(path)
        states = back.attrs["directions"]
        assert type(states[0]).__name__ == "DirectionState"


class TestEnactorCheckpointing:
    def test_checkpoint_cadence_and_cost(self, small_rmat):
        base_ref, base, _ = run_bfs(small_rmat, Machine(2), src=0)
        ref, metrics, _ = run_bfs(
            small_rmat, Machine(2), src=0, checkpoint_every=1
        )
        assert np.array_equal(ref, base_ref)
        # baseline checkpoint + one per completed (non-final) iteration
        assert metrics.checkpoints_taken == base.supersteps
        assert metrics.checkpoint_bytes > 0
        # checkpointing is charged to the virtual clock
        assert metrics.elapsed > base.elapsed
        assert metrics.checkpoint_seconds > 0

    def test_no_checkpointing_no_overhead(self, small_rmat):
        _, base, _ = run_bfs(small_rmat, Machine(2), src=0)
        assert base.checkpoints_taken == 0
        assert base.checkpoint_seconds == 0.0

    def test_bad_interval_rejected(self, small_rmat):
        with pytest.raises(SimulationError):
            run_bfs(small_rmat, Machine(2), src=0, checkpoint_every=0)

    def test_sanitize_incompatible_with_protection(self, small_rmat):
        with pytest.raises(SimulationError):
            run_bfs(small_rmat, Machine(2), src=0, sanitize=True,
                    checkpoint_every=2)
