"""Unhappy paths that existed before fault injection: exhausted
iteration budgets, allocation failure without recovery armed, and
malformed messages.  Each must raise a structured ReproError whose
context names the culprit."""

import numpy as np
import pytest

from dataclasses import replace

from repro.core.comm import Message
from repro.errors import (
    CommunicationError,
    ConvergenceError,
    DeviceMemoryError,
    PartitionError,
    ReproError,
)
from repro.primitives.bfs import run_bfs
from repro.primitives.pr import PRIteration, PRProblem
from repro.sim.device import DeviceSpec, K40
from repro.sim.machine import Machine
from repro.sim.memory import MemoryPool


class TestConvergenceError:
    def test_pr_budget_exhaustion_is_structured(self, small_rmat):
        from repro.core.enactor import Enactor

        problem = PRProblem(
            small_rmat, Machine(2), threshold=0.0, max_iter=3
        )
        # threshold 0 can never be met; max_iterations is max_iter + 1,
        # so the enactor trips the budget rather than looping forever
        problem.max_iter = 3

        class NeverStop(PRIteration):
            def should_stop(self, iteration, sizes, in_flight):
                return False

            def max_iterations(self):
                return 3

        enactor = Enactor(problem, NeverStop)
        with pytest.raises(ConvergenceError) as ei:
            enactor.enact()
        assert ei.value.iteration is not None
        assert ei.value.site == "enactor.enact"
        assert isinstance(ei.value, ReproError)


class TestDeviceMemoryError:
    def test_pool_exhaustion_is_structured(self):
        pool = MemoryPool(capacity=1024, gpu_id=3)
        with pytest.raises(DeviceMemoryError) as ei:
            pool.alloc("big", 4096)
        assert ei.value.gpu_id == 3
        assert "big" in str(ei.value)

    def test_unrecovered_oom_propagates(self, small_rmat):
        # a tiny device with no faults armed: the enactor must NOT
        # silently absorb the allocation failure (recovery is only for
        # injected faults)
        tiny = replace(K40, name="tiny", memory_bytes=4096)
        with pytest.raises(DeviceMemoryError):
            run_bfs(small_rmat, Machine(2, spec=tiny), src=0)


class TestMalformedMessages:
    def test_misrouted_vertices_rejected(self, weighted_rmat):
        # SSSP duplicates only the 1-hop halo; a message carrying a
        # vertex the receiver does not host or proxy is a routing bug
        # and must fail loudly, not index garbage
        from repro.primitives.sssp import SSSPProblem

        machine = Machine(4)
        problem = SSSPProblem(weighted_rmat, machine)
        hosted0 = set(problem.subgraphs[0].local_to_global.tolist())
        foreign = next(
            v for v in range(weighted_rmat.num_vertices)
            if v not in hosted0
        )
        with pytest.raises(PartitionError) as ei:
            problem.global_to_local(0, np.array([foreign]))
        assert ei.value.site == "problem.global_to_local"

    def test_interconnect_rejects_bad_endpoints(self):
        m = Machine(2)
        with pytest.raises(CommunicationError) as ei:
            m.interconnect.transfer_cost(0, 5, 64)
        assert ei.value.site is not None

    def test_message_nbytes_counts_associates(self):
        from repro.types import ID32

        msg = Message(
            src_gpu=0, dst_gpu=1,
            vertices=np.arange(4, dtype=np.int64),
            vertex_associates=[np.arange(4, dtype=np.int64)],
            value_associates=[np.ones(4)],
        )
        assert msg.num_items == 4
        assert msg.nbytes(ID32) == 4 * (4 + 4 + ID32.value_bytes)
