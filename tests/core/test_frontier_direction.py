"""Frontier buffers and the DOBFS direction state machine."""

import numpy as np
import pytest

from repro.core.direction import BACKWARD, FORWARD, DirectionState
from repro.core.frontier import Frontier
from repro.errors import SimulationError
from repro.sim.memory import MemoryPool


class TestFrontier:
    def test_set_and_read(self):
        f = Frontier("f", None, 4, 8)
        f.set(np.array([3, 1, 4]))
        assert f.size == 3
        assert f.data.tolist() == [3, 1, 4]

    def test_grows_when_needed(self):
        pool = MemoryPool(10_000)
        f = Frontier("f", pool, 4, 2)
        grown = f.set(np.arange(10))
        assert grown > 0
        assert f.capacity >= 10
        assert f.grow_events == 1
        assert pool.num_reallocs == 1

    def test_no_growth_within_capacity(self):
        f = Frontier("f", None, 4, 16)
        assert f.set(np.arange(10)) == 0
        assert f.grow_events == 0

    def test_overflow_without_growth_raises(self):
        f = Frontier("f", None, 4, 2)
        with pytest.raises(SimulationError):
            f.set(np.arange(5), allow_grow=False)

    def test_pool_accounting(self):
        pool = MemoryPool(10_000)
        f = Frontier("f", pool, 4, 10)
        assert pool.in_use == 40
        f.release()
        assert pool.in_use == 0

    def test_growth_headroom(self):
        """Growth allocates 25% slack to amortize reallocations."""
        f = Frontier("f", None, 4, 1)
        f.set(np.arange(100))
        assert f.capacity >= 125

    def test_clear(self):
        f = Frontier("f", None, 4, 4)
        f.set(np.array([1]))
        f.clear()
        assert f.size == 0
        assert len(f) == 0

    def test_oom_propagates(self):
        from repro.errors import DeviceMemoryError

        pool = MemoryPool(100)
        f = Frontier("f", pool, 4, 10)
        with pytest.raises(DeviceMemoryError):
            f.set(np.arange(1000))


class TestDirectionState:
    def make(self, **kw):
        return DirectionState(num_vertices=1000, num_edges=32000, **kw)

    def test_starts_forward(self):
        assert self.make().direction == FORWARD

    def test_estimates(self):
        st = self.make()
        assert st.estimate_forward(10) == pytest.approx(10 * 32)
        assert st.estimate_backward(500, 500) == pytest.approx(1000)

    def test_backward_estimate_with_no_visited(self):
        assert self.make().estimate_backward(1000, 0) == float("inf")

    def test_switches_to_backward_on_large_frontier(self):
        st = self.make(do_a=0.01)
        # FV = 500*32 = 16000; BV = 500*1000/500 = 1000; 16000 > 10
        assert st.update(500, 500, 500) == BACKWARD
        assert st.switched_to_backward

    def test_stays_forward_on_small_frontier(self):
        st = self.make(do_a=1e9)  # effectively never switch
        assert st.update(5, 990, 10) == FORWARD

    def test_backward_to_forward(self):
        st = self.make()
        st.direction = BACKWARD
        st.switched_to_backward = True
        # tiny frontier, many unvisited: FV=32 < BV*do_b=66.7
        assert st.update(1, 400, 600) == FORWARD

    def test_forward_backward_switch_only_once(self):
        """Section VI-A: 'we only allow this switch once'."""
        st = self.make(do_a=0.0001)
        assert st.update(500, 500, 500) == BACKWARD
        st.update(1, 400, 600)  # back to forward
        assert st.direction == FORWARD
        # conditions for backward hold again, but the switch is used up
        assert st.update(500, 500, 500) == FORWARD

    def test_paper_default_thresholds(self):
        st = self.make()
        assert st.do_a == 0.01
        assert st.do_b == 0.1

    def test_empty_graph_estimates(self):
        st = DirectionState(num_vertices=0, num_edges=0)
        assert st.estimate_forward(0) == 0.0
