"""The per-GPU scratch arenas: unit behavior + cross-GPU isolation.

The ``threads`` backend's safety argument leans on workspaces being
strictly per-GPU: a view handed out by GPU i's arena must never share
memory with anything GPU j's arena hands out.  The hypothesis test
drives two arenas through arbitrary interleaved take/iota sequences and
asserts exactly that, via ``Workspace.owns``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workspace import Workspace


def test_take_reuses_buffer_and_counts():
    ws = Workspace(0)
    a = ws.take("x", 100)
    assert a.size == 100 and a.dtype == np.int64
    assert (ws.takes, ws.grows) == (1, 1)
    b = ws.take("x", 50)
    assert np.shares_memory(a, b)
    assert (ws.takes, ws.grows) == (2, 1)  # reuse, no new allocation
    c = ws.take("x", 500)
    assert (ws.takes, ws.grows) == (3, 2)  # grew
    assert c.size == 500


def test_take_keys_by_dtype():
    ws = Workspace(0)
    a = ws.take("x", 10, np.int64)
    b = ws.take("x", 10, np.float64)
    assert not np.shares_memory(a, b)
    assert b.dtype == np.float64


def test_growth_is_geometric():
    ws = Workspace(0)
    ws.take("x", 100)
    ws.take("x", 110)  # grows, with 1.25x slack: capacity becomes 125
    assert ws.grows == 2
    ws.take("x", 124)  # within the slack: must not reallocate again
    assert ws.grows == 2


def test_iota_prefix_is_readonly_arange():
    ws = Workspace(0)
    i1 = ws.iota(10)
    np.testing.assert_array_equal(i1, np.arange(10))
    assert not i1.flags.writeable
    i2 = ws.iota(5)
    assert np.shares_memory(i1, i2)
    with pytest.raises((ValueError, RuntimeError)):
        i2[0] = 7


def test_zero_size_take():
    ws = Workspace(0)
    a = ws.take("x", 0)
    assert a.size == 0


def test_owns():
    ws = Workspace(0)
    a = ws.take("x", 10)
    assert ws.owns(a) and ws.owns(a[2:5]) and ws.owns(ws.iota(3))
    assert not ws.owns(np.arange(10))


def test_stats_and_reset():
    ws = Workspace(3)
    ws.take("x", 10)
    ws.iota(10)
    s = ws.stats()
    assert s["takes"] == 1 and s["grows"] == 2 and s["buffers"] == 2
    assert s["nbytes"] > 0
    ws.reset_counters()
    assert ws.takes == 0 and ws.grows == 0
    assert ws.nbytes == s["nbytes"]  # buffers stay, only counters reset


_op = st.tuples(
    st.sampled_from(["take", "iota"]),
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=200),
    st.sampled_from([np.int64, np.float64, np.bool_]),
)


@settings(max_examples=50, deadline=None)
@given(
    ops0=st.lists(_op, min_size=1, max_size=12),
    ops1=st.lists(_op, min_size=1, max_size=12),
)
def test_arenas_never_alias_across_gpus(ops0, ops1):
    """No view from GPU 0's arena may share memory with GPU 1's."""
    ws0, ws1 = Workspace(0), Workspace(1)

    def drive(ws, ops):
        views = []
        for kind, name, size, dtype in ops:
            if kind == "take":
                views.append(ws.take(name, size, dtype))
            else:
                views.append(ws.iota(size))
        return views

    v0 = drive(ws0, ops0)
    v1 = drive(ws1, ops1)
    for a in v0:
        assert not ws1.owns(a)
    for b in v1:
        assert not ws0.owns(b)
    for a in v0:
        for b in v1:
            assert not np.shares_memory(a, b)


def test_enactor_builds_disjoint_workspaces(small_rmat):
    from repro.core.enactor import Enactor
    from repro.primitives import BFSIteration, BFSProblem
    from repro.sim.machine import Machine

    machine = Machine(4)
    enactor = Enactor(BFSProblem(small_rmat, machine), BFSIteration)
    enactor.enact(src=0)
    arenas = enactor.workspaces
    assert len(arenas) == 4 and all(ws is not None for ws in arenas)
    # at least one arena was actually used by the hot paths
    assert sum(ws.takes for ws in arenas) > 0
    probes = [ws.take("probe-disjoint", 8) for ws in arenas]
    for i, a in enumerate(probes):
        for j, ws in enumerate(arenas):
            if i != j:
                assert not ws.owns(a)
    enactor.release()


def test_enactor_workspace_opt_out(small_rmat):
    from repro.core.enactor import Enactor
    from repro.primitives import BFSIteration, BFSProblem
    from repro.sim.machine import Machine

    machine = Machine(2)
    enactor = Enactor(
        BFSProblem(small_rmat, machine), BFSIteration, use_workspace=False
    )
    assert all(ws is None for ws in enactor.workspaces)
    enactor.enact(src=0)  # hot paths must tolerate ws=None
    enactor.release()
