"""Tentpole: the supervised worker pool survives real process faults.

A SIGKILLed or SIGSTOPped worker must never deadlock the run.  The
supervisor detects the failure through liveness/heartbeat/deadline
checks, respawns the worker against the same shared-memory slices, and
replays the in-flight superstep — bit-identically, because the parent's
Python state only mutates when staged effects apply after *all* replies
are in, and the pre-dispatch shadow undoes any torn shm writes.  When
the same superstep dies twice the failure converts to the established
``DeviceLostError``-as-value path: checkpoint rollback, reassignment
onto the survivors, and a degraded-but-correct finish.

Everything here runs real forked processes and real signals; every
test also asserts ``/dev/shm`` holds none of our segments afterwards.
"""

import glob
import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core.backend import ProcessesBackend
from repro.core.enactor import Enactor
from repro.core.shm import SHM_PREFIX
from repro.core.supervise import (
    SupervisionConfig,
    WorkerSupervisor,
    reap_worker,
    wait_for_reply,
)
from repro.errors import SimulationError, WorkerCrashError, WorkerHangError
from repro.obs import EventBus, Tracer
from repro.primitives import (
    BFSIteration,
    BFSProblem,
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from repro.sim.faults import (
    SHM_CORRUPT,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
    FaultSpec,
)
from repro.sim.machine import Machine

RUNNERS = {
    "bfs": (run_bfs, {"src": 0}),
    "dobfs": (run_dobfs, {"src": 0}),
    "sssp": (run_sssp, {"src": 0}),
    "cc": (run_cc, {}),
    "bc": (run_bc, {"src": 0}),
    "pr": (run_pagerank, {"max_iter": 30}),
}

#: tight timings so detection happens in tenths of seconds, not tens
FAST = dict(
    heartbeat_interval=0.02,
    stale_factor=15.0,
    deadline_floor=5.0,
    poll_interval=0.02,
    teardown_timeout=0.2,
)


def _shm_leaks():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


def _graph_for(name, small_rmat, weighted_rmat):
    return weighted_rmat if name == "sssp" else small_rmat


def _run(name, graph, num_gpus, **kwargs):
    runner, rkwargs = RUNNERS[name]
    machine = Machine(num_gpus)
    result, metrics, _ = runner(graph, machine, **rkwargs, **kwargs)
    return np.asarray(result), metrics, machine


def _run_faulted(name, graph, num_gpus, specs, tracer=None, **kwargs):
    runner, rkwargs = RUNNERS[name]
    machine = Machine(num_gpus)
    machine.arm_faults(FaultPlan(faults=list(specs)))
    if tracer is not None:
        kwargs["tracer"] = tracer
    result, metrics, _ = runner(
        graph, machine, **rkwargs,
        backend="processes", supervise=True,
        supervision=SupervisionConfig(**FAST),
        **kwargs,
    )
    return np.asarray(result), metrics


class TestRespawnReplay:
    @pytest.mark.parametrize("primitive", sorted(RUNNERS))
    @pytest.mark.parametrize("num_gpus", [2, 4])
    def test_sigkill_respawn_bit_identical(
        self, primitive, num_gpus, small_rmat, weighted_rmat
    ):
        """One SIGKILL mid-superstep: respawn + replay reproduces the
        fault-free serial result exactly, with no degraded GPUs."""
        graph = _graph_for(primitive, small_rmat, weighted_rmat)
        ref, _, _ = _run(primitive, graph, num_gpus)
        # guarded runs take a baseline checkpoint, which charges virtual
        # time — so the virtual-timeline comparison needs a guarded
        # reference: same plan shape, fault never due
        never = [FaultSpec(WORKER_CRASH, gpu=0, iteration=10 ** 6)]
        _, ref_metrics = _run_faulted(primitive, graph, num_gpus, never)
        specs = [FaultSpec(WORKER_CRASH, gpu=num_gpus - 1, iteration=1)]
        got, metrics = _run_faulted(primitive, graph, num_gpus, specs)
        np.testing.assert_array_equal(ref, got)
        assert metrics.worker_respawns >= 1
        assert metrics.supersteps_replayed >= 1
        assert metrics.rollbacks == 0
        assert list(metrics.degraded_gpus) == []
        # the virtual timeline is untouched by host-level recovery
        assert metrics.elapsed == ref_metrics.elapsed
        assert metrics.supersteps == ref_metrics.supersteps
        assert _shm_leaks() == []

    @pytest.mark.parametrize("primitive", ["bfs", "cc", "pr"])
    def test_sigstop_hang_detected_and_respawned(
        self, primitive, small_rmat, weighted_rmat
    ):
        """A SIGSTOPped worker trips the stale-heartbeat check; the
        supervisor reaps it (SIGCONT+terminate under a bound), respawns,
        and replays — still bit-identical."""
        graph = _graph_for(primitive, small_rmat, weighted_rmat)
        ref, _, _ = _run(primitive, graph, 2)
        specs = [FaultSpec(WORKER_HANG, gpu=1, iteration=1)]
        got, metrics = _run_faulted(primitive, graph, 2, specs)
        np.testing.assert_array_equal(ref, got)
        assert metrics.hang_detections >= 1
        assert metrics.worker_respawns >= 1
        assert _shm_leaks() == []


class TestEscalationRollback:
    @pytest.mark.parametrize("primitive", ["bfs", "cc", "pr"])
    @pytest.mark.parametrize("num_gpus", [2, 4])
    def test_kill_twice_escalates_to_rollback(
        self, primitive, num_gpus, small_rmat, weighted_rmat
    ):
        """The same superstep dying twice (the second spec strikes the
        replacement during replay) converts to the DeviceLostError
        rollback path: degraded finish, same answer (exact for the
        integer-label primitives; PR reconverges within tolerance, as
        the degraded repartition reorders its float sums — the chaos
        harness's EXACT_PRIMITIVES policy)."""
        graph = _graph_for(primitive, small_rmat, weighted_rmat)
        ref, _, _ = _run(primitive, graph, num_gpus)
        g = num_gpus - 1
        specs = [
            FaultSpec(WORKER_CRASH, gpu=g, iteration=1),
            FaultSpec(WORKER_CRASH, gpu=g, iteration=1),
        ]
        got, metrics = _run_faulted(
            primitive, graph, num_gpus, specs, checkpoint_every=2
        )
        if primitive == "pr":
            np.testing.assert_allclose(ref, got)
        else:
            np.testing.assert_array_equal(ref, got)
        assert metrics.worker_respawns == 1
        assert metrics.rollbacks >= 1
        assert list(metrics.degraded_gpus) != []
        assert _shm_leaks() == []

    def test_shm_corruption_caught_by_checksum(self, small_rmat):
        """A flipped byte in a slice window between the worker's reply
        and the barrier fails checksum verification and rolls back."""
        ref, _, _ = _run("bfs", small_rmat, 2)
        specs = [FaultSpec(SHM_CORRUPT, gpu=1, iteration=1)]
        got, metrics = _run_faulted(
            "bfs", small_rmat, 2, specs, checkpoint_every=2
        )
        np.testing.assert_array_equal(ref, got)
        assert metrics.rollbacks >= 1
        assert metrics.worker_respawns == 0
        assert _shm_leaks() == []


class TestObservability:
    def test_counters_match_events(self, small_rmat):
        """Every supervision counter has a matching event stream: one
        worker.respawn per respawn, one heartbeat.stale per hang."""
        bus = EventBus()
        records = []
        bus.subscribe(records.append)
        tracer = Tracer(bus=bus)
        specs = [
            FaultSpec(WORKER_CRASH, gpu=0, iteration=1),
            FaultSpec(WORKER_HANG, gpu=1, iteration=2),
        ]
        _, metrics = _run_faulted(
            "bfs", small_rmat, 2, specs, tracer=tracer
        )
        assert metrics.worker_respawns == 2
        assert metrics.hang_detections == 1
        assert tracer.count("worker.respawn") == metrics.worker_respawns
        assert tracer.count("heartbeat.stale") == metrics.hang_detections
        assert tracer.count("worker.lost") == 0
        by_type = {}
        for r in records:
            by_type[r.get("type")] = by_type.get(r.get("type"), 0) + 1
        assert by_type.get("worker.respawn", 0) == metrics.worker_respawns
        assert by_type.get("heartbeat.stale", 0) == metrics.hang_detections

    def test_supervised_nofault_is_bit_identical(self, small_rmat):
        """With no faults armed the supervisor is a pure observer: the
        labels and the whole metrics tree (minus its own wall-clock
        overhead counter) match the unsupervised processes run."""
        ref, ref_metrics, _ = _run(
            "bfs", small_rmat, 2, backend="processes"
        )
        got, metrics, _ = _run(
            "bfs", small_rmat, 2, backend="processes",
            supervise=True, supervision=SupervisionConfig(**FAST),
        )
        np.testing.assert_array_equal(ref, got)
        d_ref, d_got = ref_metrics.to_dict(), metrics.to_dict()
        assert d_got["recovery"]["supervision_overhead_seconds"] >= 0.0
        d_got["recovery"]["supervision_overhead_seconds"] = 0.0
        d_ref["recovery"]["supervision_overhead_seconds"] = 0.0
        assert json.dumps(d_ref) == json.dumps(d_got)
        assert _shm_leaks() == []


class TestLifecycle:
    def test_shm_clean_after_sigkill_mid_superstep(self, small_rmat):
        """Regression: a worker SIGKILLed while holding shm mappings
        must not leave segments in /dev/shm once the run finishes (the
        parent owns the segments; respawn reattaches by name)."""
        specs = [FaultSpec(WORKER_CRASH, gpu=1, iteration=1)]
        _run_faulted("bfs", small_rmat, 2, specs)
        assert _shm_leaks() == []

    def test_close_idempotent_with_half_dead_pool(self, small_rmat):
        """Enactor.close() must terminate cleanly (and repeatably) when
        part of the pool was already killed out-of-band."""
        machine = Machine(2)
        problem = BFSProblem(small_rmat, machine)
        enactor = Enactor(
            problem, BFSIteration, backend="processes",
            supervise=True, supervision=SupervisionConfig(**FAST),
        )
        enactor.enact(src=0)
        backend = enactor.backend
        assert isinstance(backend, ProcessesBackend)
        workers = backend._workers or []
        live = [w for w in workers if w is not None]
        assert live, "worker pool should persist between enacts"
        os.kill(live[0][0].pid, signal.SIGKILL)
        t0 = time.monotonic()
        enactor.close()
        enactor.close()  # idempotent
        assert time.monotonic() - t0 < 30.0
        assert _shm_leaks() == []

    def test_validation_rejects_bad_combinations(self, small_rmat):
        machine = Machine(2)
        problem = BFSProblem(small_rmat, machine)
        # supervise requires the processes backend
        with pytest.raises(SimulationError):
            Enactor(problem, BFSIteration, backend="serial",
                    supervise=True)
        # sanitizer pauses workers at hook boundaries; combined with
        # hang detection it would self-trigger — banned
        with pytest.raises(SimulationError):
            Enactor(problem, BFSIteration, backend="processes",
                    sanitize=True, supervise=True)
        # host-level faults need a supervisor to deliver them
        machine2 = Machine(2)
        machine2.arm_faults(FaultPlan(
            faults=[FaultSpec(WORKER_CRASH, gpu=0, iteration=1)]
        ))
        with pytest.raises(SimulationError):
            run_bfs(small_rmat, machine2, src=0, backend="processes")


def _silent_child(conn):
    conn.recv()  # wait for the go signal, then exit without replying


def _sleepy_child(conn):
    conn.recv()
    time.sleep(60)


class TestWaitPrimitives:
    """The bounded-wait building blocks, against real processes."""

    def _spawn(self, target):
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=target, args=(child,), daemon=True)
        proc.start()
        child.close()
        return proc, parent

    def test_wait_for_reply_detects_death(self):
        proc, conn = self._spawn(_silent_child)
        conn.send("go")
        t0 = time.monotonic()
        with pytest.raises(WorkerCrashError):
            wait_for_reply(conn, proc, timeout=None, poll_interval=0.02)
        assert time.monotonic() - t0 < 10.0
        reap_worker(proc, conn, timeout=0.2)

    def test_wait_for_reply_deadline(self):
        proc, conn = self._spawn(_sleepy_child)
        conn.send("go")
        with pytest.raises(WorkerHangError):
            wait_for_reply(conn, proc, timeout=0.2, poll_interval=0.02)
        reap_worker(proc, conn, timeout=0.2)
        assert not proc.is_alive()

    def test_reap_worker_handles_sigstopped_child(self):
        """SIGSTOP ignores SIGTERM until resumed; the reap sequence
        (SIGCONT + terminate, then SIGKILL) stays bounded anyway."""
        proc, conn = self._spawn(_sleepy_child)
        conn.send("go")
        os.kill(proc.pid, signal.SIGSTOP)
        t0 = time.monotonic()
        reap_worker(proc, conn, timeout=0.2)
        assert time.monotonic() - t0 < 5.0
        assert not proc.is_alive()

    def test_deadline_adapts_to_observed_supersteps(self):
        sup = WorkerSupervisor(SupervisionConfig(
            deadline_factor=4.0, deadline_floor=0.0, ewma_alpha=0.5,
        ))
        sup.begin_run()
        for _ in range(8):
            sup.observe(0.1)
        assert sup.deadline() == pytest.approx(0.4, rel=0.2)
        sup2 = WorkerSupervisor(SupervisionConfig())
        sup2.begin_run()
        sup2.observe(0.001)
        # the floor keeps early, noisy estimates from false-positives
        assert sup2.deadline() >= sup2.config.deadline_floor
