"""Tentpole: the execution backends are bit-identical by construction.

Serial and threaded dispatch run the same per-GPU superstep closure and
the same GPU-index-order merge of staged effects, so *everything* the
simulation reports — result arrays, the full RunMetrics dict (virtual
times, per-GPU records, traffic counters), and sanitizer hazard reports
— must match bit for bit across backends, for every primitive, GPU
count, and communication mode (BFS/SSSP/BC are selective, DOBFS/CC/PR
broadcast).  The same holds for the workspace arenas: they are a pure
wall-clock optimization and must not change any observable.
"""

import json

import numpy as np
import pytest

from repro.core.backend import (
    SerialBackend,
    ThreadsBackend,
    make_backend,
)
from repro.primitives import (
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from repro.sim.machine import Machine

RUNNERS = {
    "bfs": (run_bfs, {"src": 0}),
    "dobfs": (run_dobfs, {"src": 0}),
    "sssp": (run_sssp, {"src": 0}),
    "cc": (run_cc, {}),
    "bc": (run_bc, {"src": 0}),
    "pr": (run_pagerank, {"max_iter": 30}),
}


def _run(name, graph, num_gpus, **kwargs):
    runner, rkwargs = RUNNERS[name]
    machine = Machine(num_gpus)
    result, metrics, _ = runner(graph, machine, **rkwargs, **kwargs)
    return np.asarray(result), metrics


def _graph_for(name, small_rmat, weighted_rmat):
    return weighted_rmat if name == "sssp" else small_rmat


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_threads_bit_identical_to_serial(
    primitive, num_gpus, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_ser, m_ser = _run(primitive, graph, num_gpus, backend="serial")
    r_thr, m_thr = _run(primitive, graph, num_gpus, backend="threads")
    np.testing.assert_array_equal(r_ser, r_thr)
    # the full metrics tree, including dict key order (JSON traces
    # observe it) and every float bit
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_thr.to_dict())


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
def test_workspace_changes_no_observable(
    primitive, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_on, m_on = _run(primitive, graph, 2, use_workspace=True)
    r_off, m_off = _run(primitive, graph, 2, use_workspace=False)
    np.testing.assert_array_equal(r_on, r_off)
    assert json.dumps(m_on.to_dict()) == json.dumps(m_off.to_dict())


@pytest.mark.parametrize("num_gpus", [2, 4])
def test_sanitizer_reports_identical_across_backends(
    num_gpus, small_rmat
):
    _, m_ser = _run("bfs", small_rmat, num_gpus, backend="serial",
                    sanitize=True)
    _, m_thr = _run("bfs", small_rmat, num_gpus, backend="threads",
                    sanitize=True)
    assert m_ser.sanitizer_hazards is not None
    assert m_ser.sanitizer_hazards == m_thr.sanitizer_hazards


def test_explicit_worker_count_identical(small_rmat):
    r_ser, m_ser = _run("bfs", small_rmat, 4, backend="serial")
    r_thr, m_thr = _run("bfs", small_rmat, 4, backend="threads:2")
    np.testing.assert_array_equal(r_ser, r_thr)
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_thr.to_dict())


def test_make_backend_specs():
    assert isinstance(make_backend(None), SerialBackend)
    assert isinstance(make_backend("serial"), SerialBackend)
    thr = make_backend("threads", num_gpus=3)
    assert isinstance(thr, ThreadsBackend) and thr.max_workers == 3
    thr2 = make_backend("threads:2")
    assert thr2.max_workers == 2
    inst = SerialBackend()
    assert make_backend(inst) is inst
    with pytest.raises(ValueError):
        make_backend("cuda")


def test_threads_backend_close_idempotent():
    be = ThreadsBackend()
    out = be.map_supersteps([lambda: 1, lambda: 2, lambda: 3])
    assert out == [1, 2, 3]
    be.close()
    be.close()
    # pool is rebuilt lazily after close
    assert be.map_supersteps([lambda: 4, lambda: 5]) == [4, 5]
    be.close()


def test_threads_backend_preserves_submission_order():
    import time

    be = ThreadsBackend(max_workers=4)

    def slow(i):
        def fn():
            time.sleep(0.02 * (4 - i))  # earlier tasks finish later
            return i

        return fn

    assert be.map_supersteps([slow(i) for i in range(4)]) == [0, 1, 2, 3]
    be.close()
