"""Tentpole: the execution backends are bit-identical by construction.

Serial, threaded, and forked-process dispatch run the same per-GPU
superstep and the same GPU-index-order merge of staged effects, so
*everything* the simulation reports — result arrays, the full
RunMetrics dict (virtual times, per-GPU records, traffic counters),
sanitizer hazard reports, and tracer span streams — must match bit for
bit across backends, for every primitive, GPU count, and communication
mode (BFS/SSSP/BC are selective, DOBFS/CC/PR broadcast).  The same
holds for the workspace arenas and the compiled-kernel layer: pure
wall-clock optimizations that must not change any observable.

The processes backend additionally must not leak: every test that forks
workers asserts ``/dev/shm`` holds none of our segments afterwards.
"""

import glob
import json

import numpy as np
import pytest

from repro.core import kernels
from repro.core.backend import (
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
    make_backend,
)
from repro.core.shm import SHM_PREFIX, SliceManifest
from repro.primitives import (
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from repro.sim.machine import Machine

RUNNERS = {
    "bfs": (run_bfs, {"src": 0}),
    "dobfs": (run_dobfs, {"src": 0}),
    "sssp": (run_sssp, {"src": 0}),
    "cc": (run_cc, {}),
    "bc": (run_bc, {"src": 0}),
    "pr": (run_pagerank, {"max_iter": 30}),
}


def _run(name, graph, num_gpus, **kwargs):
    runner, rkwargs = RUNNERS[name]
    machine = Machine(num_gpus)
    result, metrics, _ = runner(graph, machine, **rkwargs, **kwargs)
    return np.asarray(result), metrics


def _graph_for(name, small_rmat, weighted_rmat):
    return weighted_rmat if name == "sssp" else small_rmat


def _shm_leaks():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_threads_bit_identical_to_serial(
    primitive, num_gpus, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_ser, m_ser = _run(primitive, graph, num_gpus, backend="serial")
    r_thr, m_thr = _run(primitive, graph, num_gpus, backend="threads")
    np.testing.assert_array_equal(r_ser, r_thr)
    # the full metrics tree, including dict key order (JSON traces
    # observe it) and every float bit
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_thr.to_dict())


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_processes_bit_identical_to_serial(
    primitive, num_gpus, small_rmat, weighted_rmat
):
    """Tentpole acceptance: forked shared-memory workers change nothing
    observable — results, virtual times, the whole metrics tree."""
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_ser, m_ser = _run(primitive, graph, num_gpus, backend="serial")
    r_prc, m_prc = _run(primitive, graph, num_gpus, backend="processes")
    np.testing.assert_array_equal(r_ser, r_prc)
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_prc.to_dict())
    assert _shm_leaks() == []


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
def test_kernels_bit_identical_to_interpreted(
    primitive, small_rmat, weighted_rmat
):
    """The compiled-kernel layer (or its NumPy fallback when Numba is
    absent — both paths must hold) changes nothing observable."""
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_off, m_off = _run(primitive, graph, 2, backend="serial")
    kernels.enable()
    try:
        assert kernels.is_enabled()
        r_on, m_on = _run(primitive, graph, 2, backend="serial")
    finally:
        kernels.disable()
    np.testing.assert_array_equal(r_off, r_on)
    assert json.dumps(m_off.to_dict()) == json.dumps(m_on.to_dict())


def test_kernels_with_processes_backend(small_rmat):
    """Kernels x processes compose: workers inherit the enablement
    through fork and still reproduce the serial interpreted run."""
    r_ser, m_ser = _run("bfs", small_rmat, 2, backend="serial")
    kernels.enable()
    try:
        r_prc, m_prc = _run("bfs", small_rmat, 2, backend="processes")
    finally:
        kernels.disable()
    np.testing.assert_array_equal(r_ser, r_prc)
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_prc.to_dict())
    assert _shm_leaks() == []


def test_kernels_status_reports_layer():
    st = kernels.status()
    assert st["enabled"] is False and st["backend"] == "off"
    kernels.enable()
    try:
        st = kernels.status()
        assert st["enabled"] is True
        if kernels.HAVE_NUMBA:
            assert st["backend"] == "numba"
        else:
            assert st["backend"] == "numpy-fallback"
            assert "numba" in (st["error"] or "")
    finally:
        kernels.disable()


@pytest.mark.parametrize("primitive", sorted(RUNNERS))
def test_workspace_changes_no_observable(
    primitive, small_rmat, weighted_rmat
):
    graph = _graph_for(primitive, small_rmat, weighted_rmat)
    r_on, m_on = _run(primitive, graph, 2, use_workspace=True)
    r_off, m_off = _run(primitive, graph, 2, use_workspace=False)
    np.testing.assert_array_equal(r_on, r_off)
    assert json.dumps(m_on.to_dict()) == json.dumps(m_off.to_dict())


@pytest.mark.parametrize("backend", ["threads", "processes"])
@pytest.mark.parametrize("num_gpus", [2, 4])
def test_sanitizer_reports_identical_across_backends(
    backend, num_gpus, small_rmat
):
    _, m_ser = _run("bfs", small_rmat, num_gpus, backend="serial",
                    sanitize=True)
    _, m_par = _run("bfs", small_rmat, num_gpus, backend=backend,
                    sanitize=True)
    assert m_ser.sanitizer_hazards is not None
    assert m_ser.sanitizer_hazards == m_par.sanitizer_hazards
    assert _shm_leaks() == []


def _strip_wall(events):
    """Event records minus the backend-dependent data a trace may
    contain: wall-clock fields, the backend name, and the parallel
    backends' own ``backend.dispatch`` diagnostics."""
    drop = {"wall", "wall_dur", "backend"}
    return [
        {k: v for k, v in e.items() if k not in drop}
        for e in events
        if not str(e.get("type", "")).startswith("backend.")
    ]


def test_tracer_streams_identical_serial_vs_processes(small_rmat):
    from repro.obs import Tracer

    streams = {}
    for backend in ("serial", "processes"):
        tracer = Tracer()
        _run("bfs", small_rmat, 2, backend=backend, tracer=tracer)
        streams[backend] = (
            [s.key() for s in tracer.spans],
            _strip_wall(tracer.events),
        )
    ser_spans, ser_events = streams["serial"]
    prc_spans, prc_events = streams["processes"]
    assert ser_spans and ser_spans == prc_spans
    assert ser_events == prc_events
    assert _shm_leaks() == []


@pytest.mark.parametrize("backend", ["threads:2", "processes:2"])
def test_explicit_worker_count_identical(backend, small_rmat):
    r_ser, m_ser = _run("bfs", small_rmat, 4, backend="serial")
    r_par, m_par = _run("bfs", small_rmat, 4, backend=backend)
    np.testing.assert_array_equal(r_ser, r_par)
    assert json.dumps(m_ser.to_dict()) == json.dumps(m_par.to_dict())


def test_make_backend_specs():
    assert isinstance(make_backend(None), SerialBackend)
    assert isinstance(make_backend("serial"), SerialBackend)
    thr = make_backend("threads", num_gpus=3)
    assert isinstance(thr, ThreadsBackend) and thr.max_workers == 3
    thr2 = make_backend("threads:2")
    assert thr2.max_workers == 2
    prc = make_backend("processes", num_gpus=3)
    assert isinstance(prc, ProcessesBackend) and prc.max_workers == 3
    prc2 = make_backend("processes:2")
    assert prc2.max_workers == 2
    inst = SerialBackend()
    assert make_backend(inst) is inst
    with pytest.raises(ValueError):
        make_backend("cuda")


def test_threads_backend_close_idempotent():
    be = ThreadsBackend()
    out = be.map_supersteps([lambda: 1, lambda: 2, lambda: 3])
    assert out == [1, 2, 3]
    be.close()
    be.close()
    # pool is rebuilt lazily after close
    assert be.map_supersteps([lambda: 4, lambda: 5]) == [4, 5]
    be.close()


def test_threads_backend_preserves_submission_order():
    import time

    be = ThreadsBackend(max_workers=4)

    def slow(i):
        def fn():
            time.sleep(0.02 * (4 - i))  # earlier tasks finish later
            return i

        return fn

    assert be.map_supersteps([slow(i) for i in range(4)]) == [0, 1, 2, 3]
    be.close()


class TestSliceManifest:
    """The shm registry layer in isolation: segments round-trip by name."""

    def test_manifest_round_trip(self, small_rmat):
        from repro.primitives import BFSProblem
        from repro.sim.machine import Machine as M

        problem = BFSProblem(small_rmat, M(2))
        before = {
            (gpu, name): arr.copy()
            for gpu, ds in enumerate(problem.data_slices)
            for name, arr in ds.arrays.items()
        }
        manifest = SliceManifest()
        manifest.migrate(problem)
        assert len(manifest) > 0
        assert all(n.startswith(SHM_PREFIX) for n in manifest.segment_names())
        # a second manifest attaches every slice segment by *name alone*
        # (the picklable spec is all a spawn-style worker would get) and
        # sees the parent's writes — zero-copy, not a snapshot
        reader = SliceManifest()
        reader._specs = manifest.spec()
        attached = {(gpu, name): arr
                    for gpu, name, arr in reader.attach_slices()}
        for key, ref in before.items():
            np.testing.assert_array_equal(attached[key], ref)
        probe_key = next(iter(attached))
        gpu, name = probe_key
        problem.data_slices[gpu].arrays[name][...] = 7
        assert np.all(np.asarray(attached[probe_key]) == 7)
        reader.detach()
        manifest.release()
        assert _shm_leaks() == []
        # after release the problem owns ordinary writable heap arrays
        heap = problem.data_slices[gpu].arrays[name]
        assert np.all(np.asarray(heap) == 7)
        heap[...] = 9

    def test_release_is_idempotent(self, small_rmat):
        from repro.primitives import BFSProblem
        from repro.sim.machine import Machine as M

        manifest = SliceManifest()
        manifest.migrate(BFSProblem(small_rmat, M(2)))
        manifest.release()
        manifest.release()
        manifest.unlink()
        assert _shm_leaks() == []


class TestEnactorLifecycle:
    """Satellite: close() / context manager tear down pools and shm."""

    def _enactor(self, graph, num_gpus=2, **kwargs):
        from repro.core.enactor import Enactor
        from repro.primitives import BFSIteration, BFSProblem
        from repro.sim.machine import Machine as M

        problem = BFSProblem(graph, M(num_gpus))
        return Enactor(problem, BFSIteration, **kwargs)

    def test_close_unlinks_shm_and_pool(self, small_rmat):
        enactor = self._enactor(small_rmat, backend="processes")
        enactor.enact(src=0)
        enactor.close()
        assert _shm_leaks() == []
        backend = enactor.backend
        assert backend._workers is None and backend._manifest is None

    def test_close_is_idempotent(self, small_rmat):
        enactor = self._enactor(small_rmat, backend="processes")
        enactor.enact(src=0)
        enactor.close()
        enactor.close()
        assert _shm_leaks() == []

    def test_context_manager(self, small_rmat):
        r_ser, _ = _run("bfs", small_rmat, 2, backend="serial")
        with self._enactor(small_rmat, backend="processes") as enactor:
            enactor.enact(src=0)
            labels = enactor.problem.extract("labels")
        np.testing.assert_array_equal(r_ser, np.asarray(labels))
        assert _shm_leaks() == []

    def test_repeated_enacts_reuse_manifest(self, small_rmat):
        enactor = self._enactor(small_rmat, backend="processes")
        m1 = enactor.enact(src=0)
        manifest = enactor.backend._manifest
        m2 = enactor.enact(src=1)
        m3 = enactor.enact(src=0)
        assert enactor.backend._manifest is manifest
        assert m1.supersteps == m3.supersteps
        assert m2.supersteps  # ran to completion from the other source
        enactor.close()
        assert _shm_leaks() == []
