"""Satellite 3: property-based round-trip of the split/package pipeline.

For arbitrary small graphs, partitions, duplication strategies and
frontiers, ``split_frontier`` + ``make_selective_messages`` must
conserve the frontier exactly: the local part plus every packaged
message, mapped through ``host_local_id`` into each receiver's numbering
and back to global IDs, is a permutation of the original frontier — no
vertex lost, none duplicated, every one delivered to its hosting GPU —
and the gathered associate values ride along unchanged.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.comm import make_selective_messages, split_frontier
from repro.graph.build import from_edges
from repro.partition import DUPLICATE_1HOP, DUPLICATE_ALL, build_subgraphs
from repro.partition.base import PartitionResult


@st.composite
def split_cases(draw):
    """A random (graph, partition, strategy, gpu, frontier) instance."""
    n = draw(st.integers(min_value=2, max_value=24))
    num_edges = draw(st.integers(min_value=0, max_value=60))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    edges = [(u, v) for u, v in pairs if u != v]
    graph = from_edges(n, edges)
    num_gpus = draw(st.integers(min_value=1, max_value=4))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_gpus - 1),
            min_size=n,
            max_size=n,
        )
    )
    part = PartitionResult.from_assignment(np.array(assignment), num_gpus)
    strategy = draw(st.sampled_from([DUPLICATE_ALL, DUPLICATE_1HOP]))
    subs = build_subgraphs(graph, part, strategy)
    gpu = draw(st.integers(min_value=0, max_value=num_gpus - 1))
    sub = subs[gpu]
    # a duplicate-free frontier in this GPU's local index space (a GPU
    # hosting nothing under duplicate-1-hop may have no local vertices)
    if sub.num_vertices == 0:
        frontier = []
    else:
        frontier = draw(
            st.lists(
                st.integers(min_value=0, max_value=sub.num_vertices - 1),
                max_size=sub.num_vertices,
                unique=True,
            )
        )
    return subs, gpu, np.array(sorted(frontier), dtype=np.int64)


@given(split_cases())
@settings(max_examples=120, deadline=None)
def test_split_package_round_trip(case):
    subs, gpu, frontier = case
    sub = subs[gpu]
    # per-local-vertex associates: the global ID (vertex associate) and a
    # distinctive float keyed on the global ID (value associate)
    vertex_assoc = sub.local_to_global.copy()
    value_assoc = sub.local_to_global.astype(np.float64) * 0.5 + 0.25

    local, remote, _ = split_frontier(sub, frontier)
    messages, _ = make_selective_messages(
        sub, remote, [vertex_assoc], [value_assoc]
    )

    # the local part is exactly the hosted subset of the frontier
    assert np.array_equal(
        np.sort(local), frontier[sub.is_hosted(frontier)]
    )
    # each remote sub-frontier targets the hosting GPU of its vertices
    for peer, local_ids in remote.items():
        assert peer != gpu
        assert np.all(sub.host_of_local[local_ids] == peer)

    # round trip: sender-local -> receiver-local -> global must equal
    # sender-local -> global, message by message
    delivered_globals = []
    for msg in messages:
        receiver = subs[msg.dst_gpu]
        got = receiver.local_to_global[msg.vertices]
        expected = sub.local_to_global[remote[msg.dst_gpu]]
        assert np.array_equal(got, expected)
        # the receiver hosts every vertex it is sent
        assert np.all(receiver.host_of_local[msg.vertices] == msg.dst_gpu)
        # associates were gathered from the sent vertices, in order
        assert np.array_equal(msg.vertex_associates[0], expected)
        assert np.array_equal(
            msg.value_associates[0], expected.astype(np.float64) * 0.5 + 0.25
        )
        delivered_globals.append(got)

    # conservation: local + delivered = the original frontier, exactly
    # once each (no loss, no duplication)
    pieces = [sub.local_to_global[local]] + delivered_globals
    union = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    assert np.array_equal(
        np.sort(union), np.sort(sub.local_to_global[frontier])
    )
    assert np.unique(union).size == union.size


@given(split_cases())
@settings(max_examples=60, deadline=None)
def test_split_is_a_partition_of_the_frontier(case):
    subs, gpu, frontier = case
    sub = subs[gpu]
    local, remote, _ = split_frontier(sub, frontier)
    sizes = local.size + sum(ids.size for ids in remote.values())
    assert sizes == frontier.size
    all_ids = np.concatenate(
        [local] + list(remote.values())
        if remote else [local]
    )
    assert set(all_ids.tolist()) == set(frontier.tolist())
