"""Frontier operators: advance (push/pull), filter, fusion, compute."""

import numpy as np
import pytest

from repro.core.operators import (
    advance_pull,
    advance_push,
    compute_op,
    filter_predicate,
    filter_unvisited,
    fused_advance_filter,
    gather_neighbors,
    segment_reduce_min,
    segment_reduce_sum,
    unique_vertices,
)
from repro.core.operators.fused import first_witness
from repro.graph.build import from_edges


@pytest.fixture
def diamond():
    """0 -> {1,2} -> 3, undirected."""
    return from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestGather:
    def test_neighbors_and_sources(self, diamond):
        nbrs, srcs, eidx = gather_neighbors(diamond, np.array([0]))
        assert sorted(nbrs.tolist()) == [1, 2]
        assert np.all(srcs == 0)

    def test_multi_vertex_frontier(self, diamond):
        nbrs, srcs, eidx = gather_neighbors(diamond, np.array([1, 2]))
        assert sorted(nbrs.tolist()) == [0, 0, 3, 3]
        assert sorted(srcs.tolist()) == [1, 1, 2, 2]

    def test_edge_indices_valid(self, diamond):
        nbrs, srcs, eidx = gather_neighbors(diamond, np.array([0, 3]))
        assert np.array_equal(diamond.col_indices[eidx], nbrs)

    def test_empty_frontier(self, diamond):
        nbrs, srcs, eidx = gather_neighbors(diamond, np.array([], np.int64))
        assert nbrs.size == srcs.size == eidx.size == 0

    def test_isolated_vertex(self):
        g = from_edges(3, [(0, 1)])
        nbrs, _, _ = gather_neighbors(g, np.array([2]))
        assert nbrs.size == 0

    def test_duplicate_frontier_entries(self, diamond):
        """A vertex appearing twice is expanded twice (GPU semantics)."""
        nbrs, _, _ = gather_neighbors(diamond, np.array([0, 0]))
        assert nbrs.size == 4


class TestAdvancePush:
    def test_output_and_stats(self, diamond):
        nbrs, srcs, eidx, st = advance_push(diamond, np.array([0]))
        assert st.edges_visited == 2
        assert st.input_size == 1
        assert st.output_size == 2
        assert st.launches == 1

    def test_stats_traffic_nonzero(self, diamond):
        _, _, _, st = advance_push(diamond, np.array([0, 1]))
        assert st.streaming_bytes > 0
        assert st.random_bytes > 0


class TestAdvancePull:
    def test_finds_parents(self, diamond):
        in_frontier = np.zeros(4, bool)
        in_frontier[0] = True
        disc, parents, st = advance_pull(
            diamond, np.array([1, 2, 3]), in_frontier
        )
        assert sorted(disc.tolist()) == [1, 2]
        assert np.all(parents == 0)

    def test_edge_skipping_counts_scanned_only(self):
        """A candidate stops scanning at its first hit."""
        g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        in_frontier = np.zeros(5, bool)
        in_frontier[1] = True  # vertex 0's first (sorted) neighbor
        disc, parents, st = advance_pull(g, np.array([0]), in_frontier)
        assert disc.tolist() == [0]
        assert st.edges_visited == 1  # stopped after the first edge

    def test_no_hit_scans_everything(self):
        g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        in_frontier = np.zeros(5, bool)
        disc, parents, st = advance_pull(g, np.array([0]), in_frontier)
        assert disc.size == 0
        assert st.edges_visited == 4

    def test_deterministic_first_parent(self):
        g = from_edges(4, [(3, 0), (3, 1), (3, 2)])
        in_frontier = np.ones(4, bool)
        disc, parents, _ = advance_pull(g, np.array([3]), in_frontier)
        assert parents.tolist() == [0]  # lowest-id neighbor wins

    def test_zero_degree_candidates(self):
        g = from_edges(3, [(0, 1)])
        in_frontier = np.ones(3, bool)
        disc, parents, st = advance_pull(g, np.array([2]), in_frontier)
        assert disc.size == 0

    def test_empty_candidates(self, diamond):
        disc, parents, st = advance_pull(
            diamond, np.array([], np.int64), np.zeros(4, bool)
        )
        assert disc.size == 0
        assert st.edges_visited == 0


class TestFilters:
    def test_filter_unvisited_dedups(self):
        labels = np.array([0, -1, -1, 5])
        out, st = filter_unvisited(np.array([1, 2, 1, 0, 3]), labels, -1)
        assert out.tolist() == [1, 2]
        assert st.input_size == 5
        assert st.output_size == 2

    def test_filter_unvisited_empty(self):
        out, st = filter_unvisited(np.array([], np.int64), np.array([-1]), -1)
        assert out.size == 0

    def test_filter_predicate(self):
        out, st = filter_predicate(
            np.array([1, 2, 3, 4]), lambda v: v % 2 == 0
        )
        assert out.tolist() == [2, 4]

    def test_filter_predicate_shape_check(self):
        with pytest.raises(ValueError):
            filter_predicate(np.array([1, 2]), lambda v: np.array([True]))

    def test_unique(self):
        out, st = unique_vertices(np.array([3, 1, 3, 2, 1]))
        assert out.tolist() == [1, 2, 3]


class TestFusion:
    def test_same_output_as_unfused(self, diamond):
        labels = np.full(4, -1, np.int64)
        labels[0] = 0
        fused, fsrc, _, fstats = fused_advance_filter(
            diamond, np.array([0]), labels.copy(), -1
        )
        nbrs, srcs, eidx, _ = advance_push(diamond, np.array([0]))
        unfused, _ = filter_unvisited(nbrs, labels.copy(), -1)
        assert np.array_equal(fused, unfused)

    def test_witness_sources_valid(self, diamond):
        labels = np.full(4, -1, np.int64)
        labels[0] = 0
        out, srcs, eidx, _ = fused_advance_filter(
            diamond, np.array([0]), labels, -1
        )
        assert np.all(srcs == 0)
        assert np.array_equal(diamond.col_indices[eidx], out)

    def test_fewer_launches_and_bytes(self, diamond):
        labels = np.full(4, -1, np.int64)
        nbrs, srcs, eidx, a = advance_push(diamond, np.array([0]))
        _, f = filter_unvisited(nbrs, labels.copy(), -1)
        _, _, _, fused = fused_advance_filter(
            diamond, np.array([0]), labels.copy(), -1
        )
        assert fused.launches < a.launches + f.launches
        assert fused.streaming_bytes < a.streaming_bytes + f.streaming_bytes

    def test_first_witness_lowest_edge(self):
        nbrs = np.array([5, 5, 5])
        srcs = np.array([1, 2, 3])
        eidx = np.array([10, 7, 20])
        # stable sort by neighbor keeps input order; first occurrence = srcs[0]
        w_src, w_edge = first_witness(nbrs, srcs, eidx, np.array([5]))
        assert w_src.tolist() == [1]
        assert w_edge.tolist() == [10]

    def test_first_witness_empty(self):
        w_src, w_edge = first_witness(
            np.array([1]), np.array([0]), np.array([0]), np.array([], np.int64)
        )
        assert w_src.size == 0


class TestCompute:
    def test_side_effects_applied(self):
        acc = np.zeros(5)

        def bump(front):
            acc[front] += 1.0

        out, st = compute_op(np.array([1, 3]), bump)
        assert acc.tolist() == [0, 1, 0, 1, 0]
        assert st.vertices_processed == 2

    def test_atomic_flag(self):
        _, st = compute_op(np.array([0]), lambda v: None, atomic=True)
        assert st.atomic_ops == 1.0

    def test_segment_reduce_min(self):
        out = np.array([10.0, 10.0])
        segment_reduce_min(np.array([0, 0, 1]), np.array([5.0, 7.0, 12.0]), out)
        assert out.tolist() == [5.0, 10.0]

    def test_segment_reduce_sum(self):
        out = np.zeros(2)
        segment_reduce_sum(np.array([0, 0, 1]), np.array([1.0, 2.0, 3.0]), out)
        assert out.tolist() == [3.0, 3.0]

    def test_reduce_empty_keys(self):
        out = np.array([1.0])
        segment_reduce_min(np.array([], np.int64), np.array([]), out)
        assert out.tolist() == [1.0]
