"""IterationBase default hooks and GpuContext plumbing."""

import numpy as np
import pytest

from repro.core.comm import Message
from repro.core.iteration import GpuContext, IterationBase
from repro.core.problem import ProblemBase
from repro.graph.build import from_edges
from repro.partition import build_subgraphs
from repro.partition.base import PartitionResult
from repro.sim.device import K40, VirtualGPU
from repro.sim.kernel import KernelModel
from repro.sim.machine import Machine
from repro.types import ID64


def make_ctx(graph=None, ids=None):
    graph = graph or from_edges(4, [(0, 1), (1, 2)])
    if ids is not None:
        graph = graph.with_ids(ids)
    pr = PartitionResult.from_assignment(
        np.zeros(graph.num_vertices, np.int32), 1
    )
    sub = build_subgraphs(graph, pr, "duplicate-all")[0]
    gpu = VirtualGPU.create(0, K40, 1.0)
    return GpuContext(
        gpu=gpu,
        sub=sub,
        slice=None,
        kernel_model=KernelModel(K40, 1.0),
        fused=True,
        iteration=0,
        num_gpus=1,
    )


class DummyProblem(ProblemBase):
    name = "dummy"

    def reset(self):
        return [np.empty(0, np.int64)]


class TestDefaults:
    def _iteration(self):
        g = from_edges(4, [(0, 1)])
        prob = DummyProblem(g, Machine(1, scale=1.0))
        return IterationBase(prob)

    def test_full_queue_core_abstract(self):
        it = self._iteration()
        with pytest.raises(NotImplementedError):
            it.full_queue_core(make_ctx(), np.array([0]))

    def test_expand_incoming_accepts_all(self):
        it = self._iteration()
        msg = Message(0, 1, np.array([3, 1, 2]))
        verts, stats = it.expand_incoming(make_ctx(), msg)
        assert verts.tolist() == [3, 1, 2]
        assert stats == []

    def test_associate_defaults_empty(self):
        it = self._iteration()
        assert it.vertex_associate_arrays(make_ctx()) == []
        assert it.value_associate_arrays(make_ctx()) == []

    def test_should_stop_default(self):
        it = self._iteration()
        assert it.should_stop(3, [0, 0], 0)
        assert not it.should_stop(3, [1, 0], 0)
        assert not it.should_stop(3, [0, 0], 2)  # mail in flight

    def test_communicates_every_iteration(self):
        it = self._iteration()
        assert it.communicates_this_iteration(0)
        assert it.communicates_this_iteration(100)

    def test_direction_default_empty(self):
        assert self._iteration().direction_of(0) == ""

    def test_max_iterations_large(self):
        assert self._iteration().max_iterations() >= 1000


class TestGpuContext:
    def test_ids_bytes_follows_graph(self):
        assert make_ctx().ids_bytes == 4
        assert make_ctx(ids=ID64).ids_bytes == 8
