"""ProblemBase / DataSlice / Enactor framework machinery."""

import numpy as np
import pytest

from repro.core.enactor import Enactor
from repro.core.iteration import GpuContext, IterationBase
from repro.core.problem import DataSlice, ProblemBase
from repro.core.stats import OpStats
from repro.errors import ConvergenceError
from repro.graph.build import from_edges
from repro.partition import DUPLICATE_1HOP, DUPLICATE_ALL
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine
from repro.sim.memory import JustEnough, MaxAlloc


@pytest.fixture
def chain():
    return from_edges(8, [(i, i + 1) for i in range(7)])


class TestDataSlice:
    def test_allocate_registers_in_pool(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        ds = prob.data_slices[0]
        assert "labels" in ds
        pool = machine2.gpus[0].memory
        assert (
            pool.size_of(f"{prob.alloc_prefix}.labels")
            == ds["labels"].nbytes
        )

    def test_setitem_requires_allocation(self, chain, machine2):
        ds = BFSProblem(chain, machine2).data_slices[0]
        with pytest.raises(KeyError):
            ds["nope"] = np.zeros(3)


class TestProblemBase:
    def test_locate_duplicate_all_uses_global_ids(self, chain, machine2):
        prob = BFSProblem(chain, machine2)  # BFS uses duplicate-all
        gpu, local = prob.locate(5)
        assert local == 5
        assert gpu == prob.partition.partition_table[5]

    def test_locate_duplicate_1hop_converts(self, chain, machine2):
        prob = BFSProblem(chain, machine2, duplication=DUPLICATE_1HOP)
        gpu, local = prob.locate(5)
        assert local == prob.partition.conversion_table[5]

    def test_extract_roundtrip(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        for g, ds in enumerate(prob.data_slices):
            hosted = np.flatnonzero(
                prob.subgraphs[g].host_of_local == g
            )
            ds["labels"][hosted] = prob.subgraphs[g].local_to_global[hosted]
        out = prob.extract("labels")
        assert np.array_equal(out, np.arange(chain.num_vertices))

    def test_subgraph_memory_charged(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        pool = machine2.gpus[0].memory
        assert pool.size_of(f"{prob.alloc_prefix}.subgraph") is not None

    def test_two_problems_share_a_machine(self, chain, machine2):
        a = BFSProblem(chain, machine2)
        b = BFSProblem(chain, machine2)
        assert a.alloc_prefix != b.alloc_prefix

    def test_release_frees_everything(self, chain, machine2):
        before = machine2.gpus[0].memory.in_use
        prob = BFSProblem(chain, machine2)
        prob.release()
        assert machine2.gpus[0].memory.in_use == before

    def test_charge_memory_false_skips_pool(self, chain, machine2):
        prob = BFSProblem(chain, machine2, charge_memory=False)
        assert prob.data_slices[0].pool is None


class TestEnactorMechanics:
    def test_metrics_populated(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        metrics = Enactor(prob, BFSIteration).enact(src=0)
        assert metrics.num_gpus == 2
        assert metrics.supersteps >= 4
        assert metrics.elapsed > 0
        assert metrics.total_edges_visited == chain.num_edges
        assert 0 in metrics.peak_memory

    def test_virtual_time_monotone_per_iteration(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        metrics = Enactor(prob, BFSIteration).enact(src=0)
        for rec in metrics.iterations:
            assert rec.duration > 0

    def test_single_gpu_has_no_communication(self, chain):
        prob = BFSProblem(chain, Machine(1, scale=1.0))
        metrics = Enactor(prob, BFSIteration).enact(src=0)
        assert metrics.total_items_sent == 0
        assert metrics.total_comm_compute == 0

    def test_multi_gpu_communicates(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        metrics = Enactor(prob, BFSIteration).enact(src=0)
        assert metrics.total_items_sent > 0

    def test_rerun_after_reset(self, chain, machine2):
        """Problem.reset + a fresh enact reproduces the run exactly."""
        prob = BFSProblem(chain, machine2)
        en = Enactor(prob, BFSIteration)
        m1 = en.enact(src=0)
        l1 = prob.labels()
        m2 = en.enact(src=0)
        assert np.array_equal(prob.labels(), l1)
        assert m2.elapsed == pytest.approx(m1.elapsed)

    def test_comm_volume_scale_slows_multigpu(self, chain):
        """Section V-A: runtime grows with inflated H."""
        base = Enactor(
            BFSProblem(chain, Machine(2, scale=512.0)), BFSIteration
        ).enact(src=0)
        inflated = Enactor(
            BFSProblem(chain, Machine(2, scale=512.0)),
            BFSIteration,
            comm_volume_scale=64.0,
        ).enact(src=0)
        assert inflated.elapsed > base.elapsed

    def test_latency_scale_has_tiny_effect(self, chain):
        """Section V-A: 10x latency shows no appreciable difference."""
        base = Enactor(
            BFSProblem(chain, Machine(2, scale=512.0)), BFSIteration
        ).enact(src=0)
        slow = Enactor(
            BFSProblem(chain, Machine(2, scale=512.0)),
            BFSIteration,
            comm_latency_scale=10.0,
        ).enact(src=0)
        assert slow.elapsed < base.elapsed * 2.0

    def test_max_iterations_enforced(self, chain, machine2):
        class NeverStops(BFSIteration):
            def should_stop(self, *a, **k):
                return False

            def max_iterations(self):
                return 5

        prob = BFSProblem(chain, machine2)
        with pytest.raises(ConvergenceError):
            Enactor(prob, NeverStops).enact(src=0)

    def test_release_frees_buffers(self, chain, machine2):
        prob = BFSProblem(chain, machine2)
        en = Enactor(prob, BFSIteration)
        pool = machine2.gpus[0].memory
        before = pool.in_use
        en.release()
        assert pool.in_use < before


class TestAllocationSchemesInEnactor:
    def test_just_enough_reallocs_recorded(self, small_rmat):
        m = Machine(1, scale=1.0)
        prob = BFSProblem(small_rmat, m)
        metrics = Enactor(prob, BFSIteration, scheme=JustEnough()).enact(src=0)
        assert metrics.num_reallocs > 0

    def test_max_alloc_never_reallocs_frontiers(self, small_rmat):
        m = Machine(1, scale=1.0)
        prob = BFSProblem(small_rmat, m)
        en = Enactor(prob, BFSIteration, scheme=MaxAlloc())
        metrics = en.enact(src=0)
        assert en.frontiers_in[0].grow_events == 0
        assert en.frontiers_out[0].grow_events == 0

    def test_schemes_agree_on_results(self, small_rmat):
        labels = {}
        for scheme in (JustEnough(), MaxAlloc()):
            m = Machine(2, scale=1.0)
            prob = BFSProblem(small_rmat, m)
            Enactor(prob, BFSIteration, scheme=scheme).enact(src=0)
            labels[scheme.name] = prob.labels()
        assert np.array_equal(labels["just-enough"], labels["max"])

    def test_peak_memory_ordering(self, small_rmat):
        """Fig. 3: max allocation's peak exceeds just-enough's."""
        peaks = {}
        for scheme in (JustEnough(), MaxAlloc()):
            m = Machine(1, scale=1.0)
            prob = BFSProblem(small_rmat, m)
            metrics = Enactor(prob, BFSIteration, scheme=scheme).enact(src=0)
            peaks[scheme.name] = metrics.peak_memory[0]
        assert peaks["max"] > peaks["just-enough"]


class TestCommunicationOverlap:
    """Gunrock's stream overlap (Section III-B): same results, never
    slower, and helps communication-bound runs."""

    def test_results_identical(self, small_rmat):
        from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem

        labels = {}
        for ov in (False, True):
            m = Machine(3, scale=512.0)
            prob = DOBFSProblem(small_rmat, m)
            Enactor(
                prob, DOBFSIteration, overlap_communication=ov
            ).enact(src=3)
            labels[ov] = prob.labels()
        assert np.array_equal(labels[False], labels[True])

    def test_never_slower(self, small_rmat):
        times = {}
        for ov in (False, True):
            m = Machine(3, scale=512.0)
            prob = BFSProblem(small_rmat, m)
            times[ov] = Enactor(
                prob, BFSIteration, overlap_communication=ov
            ).enact(src=3).elapsed
        assert times[True] <= times[False] * 1.0001

    def test_helps_broadcast_heavy_runs(self, small_rmat):
        from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem

        times = {}
        for ov in (False, True):
            m = Machine(4, scale=2048.0)
            prob = DOBFSProblem(small_rmat, m)
            times[ov] = Enactor(
                prob, DOBFSIteration, overlap_communication=ov
            ).enact(src=3).elapsed
        assert times[True] < times[False]

    def test_single_gpu_unaffected(self, small_rmat):
        times = {}
        for ov in (False, True):
            m = Machine(1, scale=512.0)
            prob = BFSProblem(small_rmat, m)
            times[ov] = Enactor(
                prob, BFSIteration, overlap_communication=ov
            ).enact(src=3).elapsed
        assert times[True] == pytest.approx(times[False])


class TestStrategyCompatibility:
    def test_broadcast_rejects_duplicate_1hop(self, chain, machine2):
        """Section III-C: broadcast's global payload needs duplicate-all."""
        from repro.errors import PartitionError
        from repro.primitives.cc import CCProblem

        with pytest.raises(PartitionError, match="duplicate-all"):
            CCProblem(chain, machine2, duplication=DUPLICATE_1HOP)

    def test_dobfs_rejects_duplicate_1hop(self, chain, machine2):
        from repro.errors import PartitionError
        from repro.primitives.dobfs import DOBFSProblem

        with pytest.raises(PartitionError):
            DOBFSProblem(chain, machine2, duplication=DUPLICATE_1HOP)

    def test_selective_allows_both(self, chain, machine2):
        BFSProblem(chain, machine2, duplication=DUPLICATE_1HOP)
        BFSProblem(chain, Machine(2, scale=64.0), duplication=DUPLICATE_ALL)
