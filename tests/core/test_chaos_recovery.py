"""The robustness acceptance gate: the full seeded chaos matrix.

Every primitive, at 2 and 4 GPUs, on both execution backends, must
survive transient link failures, allocation failures, and a permanent
GPU loss — and produce results equal to the fault-free reference
(bit-exact for the integer-valued primitives, allclose for PR/BC).
"""

import numpy as np
import pytest

from repro.chaos import (
    CHAOS_KINDS,
    CHAOS_PRIMITIVES,
    build_chaos_plan,
    run_chaos_case,
    run_chaos_matrix,
)
from repro.errors import DeviceLostError, SimulationError
from repro.primitives.bfs import run_bfs
from repro.primitives.pr import run_pagerank
from repro.sim.faults import (
    GPU_LOSS,
    STRAGGLER,
    TRANSIENT_COMM,
    FaultPlan,
    FaultSpec,
)
from repro.sim.machine import Machine


@pytest.mark.parametrize("primitive", CHAOS_PRIMITIVES)
@pytest.mark.parametrize("kind", CHAOS_KINDS)
def test_chaos_cell_serial(primitive, kind):
    r = run_chaos_case(primitive, 2, kind, backend="serial")
    assert r.ok, f"{r.name}: {r.detail}"


@pytest.mark.parametrize("primitive", ["bfs", "pr"])
@pytest.mark.parametrize("kind", CHAOS_KINDS)
def test_chaos_cell_processes(primitive, kind):
    """The forked-worker backend under faults: transient retries and OOM
    recoveries run inside workers; a permanent GPU loss tears the pool
    down (rollback + repartition invalidate the shm manifest) and the
    degraded run must still match the fault-free reference."""
    r = run_chaos_case(primitive, 2, kind, backend="processes")
    assert r.ok, f"{r.name}: {r.detail}"


def test_chaos_matrix_full():
    results = run_chaos_matrix()
    failed = [r for r in results if not r.ok]
    assert not failed, "; ".join(f"{r.name}: {r.detail}" for r in failed)
    assert len(results) == (
        len(CHAOS_PRIMITIVES) * 2 * len(CHAOS_KINDS) * 2
    )


class TestFlightDumps:
    def test_quiet_recovery_leaves_no_dump(self):
        """A cell that recovers without supervisor escalation keeps its
        flight recorder armed but never dumps."""
        r = run_chaos_case("bfs", 2, "transient-comm", backend="serial")
        assert r.ok
        assert r.recovery["flight_dumps"] == 0

    def test_escalating_worker_crash_cell_dumps(self, tmp_path):
        """The worker-crash plan double-kills one worker, forcing the
        supervisor to escalate past respawn — the escalation must leave
        a crash dump even though the cell ultimately recovers."""
        import json

        path = tmp_path / "cell.dump.json"
        r = run_chaos_case("bfs", 2, "worker-crash",
                           dump_path=str(path))
        assert r.ok, r.detail
        assert r.recovery["flight_dumps"] >= 1
        dump = json.loads(path.read_text("utf-8"))
        assert dump["reason"] == "supervisor-escalation"
        assert dump["error"]["class"] == "WorkerCrashError"
        # heartbeat ages were snapshotted before the pool was reaped
        assert dump["heartbeat_ages"]
        assert dump["pending_faults"]["planned"] == 3

    def test_escalating_shm_corrupt_cell_dumps(self, tmp_path):
        import json

        path = tmp_path / "cell.dump.json"
        r = run_chaos_case("bfs", 2, "shm-corrupt", dump_path=str(path))
        assert r.ok, r.detail
        assert r.recovery["flight_dumps"] >= 1
        dump = json.loads(path.read_text("utf-8"))
        assert dump["reason"] == "shm-integrity"
        assert dump["error"]["class"] == "ShmIntegrityError"


class TestRecoverySemantics:
    def test_loss_without_checkpoint_raises(self, small_rmat):
        machine = Machine(2)
        machine.arm_faults(
            FaultPlan([FaultSpec(GPU_LOSS, gpu=1, iteration=1)])
        )
        # faults armed but checkpointing still captures the baseline at
        # iteration -1, so the run recovers even without --checkpoint-every
        ref, _, _ = run_bfs(small_rmat, Machine(2), src=0)
        labels, metrics, _ = run_bfs(small_rmat, machine, src=0)
        assert np.array_equal(labels, ref)
        assert metrics.rollbacks == 1

    def test_degraded_metrics_exposed(self, small_rmat):
        machine = Machine(4)
        machine.arm_faults(
            FaultPlan([FaultSpec(GPU_LOSS, gpu=3, iteration=1)])
        )
        ref, base, _ = run_bfs(small_rmat, Machine(4), src=0)
        labels, metrics, _ = run_bfs(
            small_rmat, machine, src=0, checkpoint_every=2
        )
        assert np.array_equal(labels, ref)
        assert metrics.degraded_gpus == [3]
        assert metrics.rollbacks == 1
        assert metrics.restore_seconds > 0
        assert metrics.checkpoints_taken >= 1
        # rollback + restore + degraded machine costs virtual time
        assert metrics.elapsed > base.elapsed

    def test_multi_loss_single_superstep(self, small_rmat):
        machine = Machine(4)
        machine.arm_faults(FaultPlan([
            FaultSpec(GPU_LOSS, gpu=2, iteration=1),
            FaultSpec(GPU_LOSS, gpu=3, iteration=1),
        ]))
        ref, _, _ = run_bfs(small_rmat, Machine(4), src=0)
        labels, metrics, _ = run_bfs(
            small_rmat, machine, src=0, checkpoint_every=2
        )
        assert np.array_equal(labels, ref)
        # both losses land in one superstep -> one combined rollback
        assert metrics.rollbacks == 1
        assert metrics.degraded_gpus == [2, 3]

    def test_straggler_changes_time_not_results(self, small_rmat):
        ref, base, _ = run_pagerank(small_rmat, Machine(2), max_iter=20)
        machine = Machine(2)
        machine.arm_faults(FaultPlan([
            FaultSpec(STRAGGLER, gpu=0, iteration=1, factor=4.0,
                      duration=5),
        ]))
        ranks, metrics, _ = run_pagerank(small_rmat, machine, max_iter=20)
        assert np.allclose(ranks, ref)
        assert metrics.elapsed > base.elapsed

    def test_retries_charge_virtual_time(self, small_rmat):
        ref, base, _ = run_bfs(small_rmat, Machine(2), src=0)
        machine = Machine(2)
        machine.arm_faults(FaultPlan([
            FaultSpec(TRANSIENT_COMM, gpu=g, iteration=0, count=2)
            for g in range(2)
        ]))
        labels, metrics, _ = run_bfs(small_rmat, machine, src=0)
        assert np.array_equal(labels, ref)
        assert metrics.comm_retries == 4
        assert metrics.retry_seconds > 0

    def test_retry_budget_exhaustion_reraises(self, small_rmat):
        from repro.core.checkpoint import RecoveryPolicy
        from repro.errors import CommunicationError

        machine = Machine(2)
        machine.arm_faults(FaultPlan([
            FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=50),
        ]))
        with pytest.raises(CommunicationError):
            run_bfs(small_rmat, machine, src=0,
                    recovery=RecoveryPolicy(max_comm_retries=3))

    def test_bad_chaos_kind_rejected(self):
        with pytest.raises(ValueError):
            build_chaos_plan("cosmic-ray", 2)

    def test_faults_are_deterministic(self, small_rmat):
        def one_run():
            machine = Machine(4)
            machine.arm_faults(FaultPlan([
                FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=2),
                FaultSpec(GPU_LOSS, gpu=3, iteration=1),
            ]))
            return run_bfs(small_rmat, machine, src=0, checkpoint_every=2)

        labels_a, metrics_a, _ = one_run()
        labels_b, metrics_b, _ = one_run()
        assert np.array_equal(labels_a, labels_b)
        assert metrics_a.elapsed == metrics_b.elapsed
        assert metrics_a.comm_retries == metrics_b.comm_retries
