"""SSSP: correctness vs Dijkstra, duplicate-1-hop machinery, counters."""

import numpy as np
import pytest

from repro.baselines.reference import sssp_reference
from repro.core.enactor import Enactor
from repro.errors import GraphFormatError
from repro.graph.build import add_random_weights, from_edges
from repro.partition import DUPLICATE_1HOP, DUPLICATE_ALL, MetisLikePartitioner
from repro.primitives.sssp import SSSPIteration, SSSPProblem, run_sssp
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_dijkstra_all_gpu_counts(self, weighted_rmat, any_machine):
        ref, _ = sssp_reference(weighted_rmat, 7)
        dist, _, _ = run_sssp(weighted_rmat, any_machine, src=7)
        assert np.allclose(dist, ref)

    def test_matches_scipy(self, weighted_rmat, machine2):
        sp = pytest.importorskip("scipy.sparse")
        from scipy.sparse.csgraph import dijkstra

        g = weighted_rmat
        mat = sp.csr_matrix(
            (g.values, g.col_indices, g.row_offsets),
            shape=(g.num_vertices, g.num_vertices),
        )
        ref = dijkstra(mat, indices=7)
        dist, _, _ = run_sssp(g, machine2, src=7)
        assert np.allclose(dist, ref)

    def test_weighted_path(self, machine2):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        # weights: make the long way around cheaper
        w = np.zeros(g.num_edges)
        coo = g.to_coo()
        for i, (u, v) in enumerate(zip(coo.src, coo.dst)):
            w[i] = 10.0 if {int(u), int(v)} == {0, 3} else 1.0
        from repro.graph.csr import CsrGraph

        gw = CsrGraph(4, g.row_offsets, g.col_indices, w, ids=g.ids,
                      directed=False)
        dist, _, _ = run_sssp(gw, machine2, src=0)
        assert dist.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_zero_weights_allowed(self, machine2):
        g = from_edges(3, [(0, 1), (1, 2)])
        from repro.graph.csr import CsrGraph

        gw = CsrGraph(3, g.row_offsets, g.col_indices,
                      np.zeros(g.num_edges), ids=g.ids, directed=False)
        dist, _, _ = run_sssp(gw, machine2, src=0)
        assert dist.tolist() == [0.0, 0.0, 0.0]

    def test_unreached_is_inf(self, machine2):
        g = add_random_weights(
            from_edges(4, [(0, 1)]), 1, 5
        )
        dist, _, _ = run_sssp(g, machine2, src=0)
        assert np.isinf(dist[2]) and np.isinf(dist[3])

    def test_rejects_unweighted(self, small_rmat, machine2):
        with pytest.raises(GraphFormatError):
            SSSPProblem(small_rmat, machine2)

    def test_metis_partition(self, weighted_rmat, machine4):
        ref, _ = sssp_reference(weighted_rmat, 3)
        dist, _, _ = run_sssp(
            weighted_rmat, machine4, src=3,
            partitioner=MetisLikePartitioner(1),
        )
        assert np.allclose(dist, ref)


class TestStrategies:
    def test_uses_duplicate_1hop_by_default(self, weighted_rmat, machine2):
        prob = SSSPProblem(weighted_rmat, machine2)
        assert prob.duplication == DUPLICATE_1HOP
        # slice arrays sized |V_i| < |V| (proxy savings)
        assert (
            prob.data_slices[0]["dist"].size
            <= weighted_rmat.num_vertices
        )

    def test_duplicate_all_also_correct(self, weighted_rmat, machine4):
        ref, _ = sssp_reference(weighted_rmat, 7)
        prob = SSSPProblem(
            weighted_rmat, machine4, duplication=DUPLICATE_ALL
        )
        Enactor(prob, SSSPIteration).enact(src=7)
        assert np.allclose(prob.distances(), ref)

    def test_preds_give_shortest_paths(self, weighted_rmat, machine4):
        prob = SSSPProblem(weighted_rmat, machine4, mark_predecessors=True)
        Enactor(prob, SSSPIteration).enact(src=7)
        dist = prob.distances()
        preds = prob.predecessors()
        # walking the tree reproduces each distance
        g = weighted_rmat
        for v in np.flatnonzero(np.isfinite(dist))[:40]:
            if v == 7:
                continue
            p = int(preds[v])
            assert p >= 0
            nbrs = g.neighbors(p)
            w = g.edge_values(p)[np.flatnonzero(nbrs == v)[0]]
            assert dist[v] == pytest.approx(dist[p] + w)


class TestCounters:
    def test_reentry_factor_b(self, weighted_rmat, machine2):
        """Table I: W = O(b|Ei|); b is small but may exceed 1."""
        _, metrics, _ = run_sssp(weighted_rmat, machine2, src=7)
        b = metrics.total_edges_visited / weighted_rmat.num_edges
        assert 0.5 < b < 6.0

    def test_distance_travels_as_value(self, weighted_rmat, machine2):
        prob = SSSPProblem(weighted_rmat, machine2)
        assert prob.NUM_VALUE_ASSOCIATES == 1

    def test_more_supersteps_than_bfs(self, weighted_rmat, machine2):
        """S ~ b*D/2 >= BFS's D/2."""
        from repro.primitives.bfs import run_bfs

        _, m_bfs, _ = run_bfs(weighted_rmat, machine2, src=7)
        _, m_sssp, _ = run_sssp(weighted_rmat, machine2, src=7)
        assert m_sssp.supersteps >= m_bfs.supersteps
