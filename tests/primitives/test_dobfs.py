"""DOBFS: correctness, direction switching, edge skipping, broadcast."""

import numpy as np
import pytest

from repro.baselines.reference import bfs_reference
from repro.core.direction import BACKWARD, FORWARD
from repro.core.enactor import Enactor
from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem, run_dobfs
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_reference_all_gpu_counts(self, small_rmat, any_machine):
        ref, _ = bfs_reference(small_rmat, 7)
        labels, _, _ = run_dobfs(small_rmat, any_machine, src=7)
        assert np.array_equal(labels, ref)

    @pytest.mark.parametrize("family", ["small_social", "small_web", "small_road"])
    def test_all_families(self, family, machine4, request):
        g = request.getfixturevalue(family)
        ref, _ = bfs_reference(g, 0)
        labels, _, _ = run_dobfs(g, machine4, src=0)
        assert np.array_equal(labels, ref)

    def test_agrees_with_plain_bfs(self, small_rmat, machine4):
        from repro.primitives.bfs import run_bfs

        b, _, _ = run_bfs(small_rmat, machine4, src=11)
        d, _, _ = run_dobfs(small_rmat, machine4, src=11)
        assert np.array_equal(b, d)

    def test_disconnected(self, two_components_graph, machine2):
        labels, _, _ = run_dobfs(two_components_graph, machine2, src=0)
        assert np.all(labels[3:] == -1)

    def test_thresholds_configurable(self, small_rmat, machine2):
        # forcing pure-forward: never switch
        ref, _ = bfs_reference(small_rmat, 7)
        labels, m_fwd, _ = run_dobfs(
            small_rmat, machine2, src=7, do_a=float("inf")
        )
        assert np.array_equal(labels, ref)
        dirs = {r.direction for r in m_fwd.iterations}
        assert dirs <= {FORWARD, ""}


class TestDirectionBehavior:
    def test_switches_to_backward_on_power_law(self, small_rmat):
        """Social/rmat graphs trigger the pull switch (Section VI-A)."""
        _, metrics, _ = run_dobfs(
            small_rmat, Machine(1, scale=64.0), src=7
        )
        assert any(r.direction == BACKWARD for r in metrics.iterations)

    def test_edge_skipping_reduces_w(self, small_rmat, machine2):
        """DOBFS visits far fewer edges than BFS (W = a|E|, a < 1)."""
        from repro.primitives.bfs import run_bfs

        _, m_bfs, _ = run_bfs(small_rmat, machine2, src=7)
        _, m_dobfs, _ = run_dobfs(small_rmat, machine2, src=7)
        assert m_dobfs.total_edges_visited < 0.5 * m_bfs.total_edges_visited

    def test_road_network_mostly_forward(self, small_road, machine2):
        """High-diameter, low-degree graphs don't profit from the pull:
        the social-graph thresholds may briefly switch, but the
        backward-to-forward rule recovers and most iterations push.
        (The paper's Section VII-A: road networks are the bad case.)"""
        _, metrics, _ = run_dobfs(small_road, machine2, src=0)
        dirs = [r.direction for r in metrics.iterations]
        assert dirs.count(BACKWARD) <= len(dirs) * 0.3

    def test_road_network_forward_only_with_high_threshold(
        self, small_road, machine2
    ):
        """Turning off the switch (do_a=inf) keeps pure-push on roads."""
        _, metrics, _ = run_dobfs(
            small_road, machine2, src=0, do_a=float("inf")
        )
        assert all(r.direction != BACKWARD for r in metrics.iterations)

    def test_direction_consistent_across_gpus(self, small_rmat, machine4):
        """Mirrored state must give every GPU the same decision."""
        prob = DOBFSProblem(small_rmat, machine4)
        Enactor(prob, DOBFSIteration).enact(src=7)
        states = prob.directions
        assert len({s.direction for s in states}) == 1
        assert len({s.switched_to_backward for s in states}) == 1


class TestCommunication:
    def test_uses_broadcast(self, small_rmat):
        prob = DOBFSProblem(small_rmat, Machine(2, scale=64.0))
        assert prob.communication == "broadcast"

    def test_h_scales_with_gpu_count(self, small_rmat):
        """Table I: H = O((n-1)|V|) — broadcast traffic grows with n."""
        h = {}
        for n in (2, 4):
            _, metrics, _ = run_dobfs(
                small_rmat, Machine(n, scale=64.0), src=7
            )
            h[n] = metrics.total_items_sent
        assert h[4] > 2 * h[2] * 0.8

    def test_flat_scaling(self, small_rmat):
        """DOBFS does not speed up with GPUs (communication-bound)."""
        t1 = run_dobfs(small_rmat, Machine(1, scale=512.0), src=7)[1].elapsed
        t4 = run_dobfs(small_rmat, Machine(4, scale=512.0), src=7)[1].elapsed
        assert t4 > 0.7 * t1  # no real speedup

    def test_preds_supported(self, small_rmat, machine2):
        prob = DOBFSProblem(small_rmat, machine2, mark_predecessors=True)
        Enactor(prob, DOBFSIteration).enact(src=7)
        labels = prob.labels()
        preds = prob.extract("preds")
        ref, _ = bfs_reference(small_rmat, 7)
        for v in np.flatnonzero(ref > 0)[:50]:
            p = preds[v]
            assert labels[p] == labels[v] - 1
