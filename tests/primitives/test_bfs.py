"""BFS primitive: correctness, predecessors, Table I counters."""

import numpy as np
import pytest

from repro.baselines.reference import bfs_reference
from repro.core.enactor import Enactor
from repro.graph.build import from_edges
from repro.partition import (
    DUPLICATE_1HOP,
    BiasedRandomPartitioner,
    MetisLikePartitioner,
    RandomPartitioner,
)
from repro.primitives.bfs import BFSIteration, BFSProblem, run_bfs
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_reference_all_gpu_counts(self, small_rmat, any_machine):
        ref, _ = bfs_reference(small_rmat, 7)
        labels, _, _ = run_bfs(small_rmat, any_machine, src=7)
        assert np.array_equal(labels, ref)

    @pytest.mark.parametrize("family", ["small_social", "small_web", "small_road"])
    def test_all_families(self, family, machine4, request):
        g = request.getfixturevalue(family)
        ref, _ = bfs_reference(g, 0)
        labels, _, _ = run_bfs(g, machine4, src=0)
        assert np.array_equal(labels, ref)

    @pytest.mark.parametrize(
        "partitioner",
        [RandomPartitioner(5), BiasedRandomPartitioner(5), MetisLikePartitioner(5)],
        ids=["random", "biased", "metis"],
    )
    def test_partitioner_independent(self, small_rmat, machine4, partitioner):
        """Section V-C: correct regardless of the partitioner choice."""
        ref, _ = bfs_reference(small_rmat, 3)
        labels, _, _ = run_bfs(small_rmat, machine4, src=3, partitioner=partitioner)
        assert np.array_equal(labels, ref)

    def test_duplicate_1hop_strategy(self, small_rmat, machine4):
        ref, _ = bfs_reference(small_rmat, 3)
        prob = BFSProblem(small_rmat, machine4, duplication=DUPLICATE_1HOP)
        Enactor(prob, BFSIteration).enact(src=3)
        assert np.array_equal(prob.labels(), ref)

    def test_disconnected_stays_unreached(self, two_components_graph, machine2):
        labels, _, _ = run_bfs(two_components_graph, machine2, src=0)
        assert np.all(labels[3:] == -1)
        assert np.all(labels[:3] >= 0)

    def test_different_sources(self, small_rmat, machine2):
        for src in (0, 17, 100):
            ref, _ = bfs_reference(small_rmat, src)
            labels, _, _ = run_bfs(small_rmat, machine2, src=src)
            assert np.array_equal(labels, ref)

    def test_source_is_level_zero(self, small_rmat, machine2):
        labels, _, _ = run_bfs(small_rmat, machine2, src=42)
        assert labels[42] == 0


class TestPredecessors:
    def test_preds_form_valid_tree(self, small_rmat, machine4):
        labels, _, prob = run_bfs(
            small_rmat, machine4, src=3, mark_predecessors=True
        )
        preds = prob.predecessors()
        ref, _ = bfs_reference(small_rmat, 3)
        for v in range(small_rmat.num_vertices):
            if ref[v] > 0:
                p = preds[v]
                assert p >= 0
                # predecessor is one level up and adjacent
                assert labels[p] == labels[v] - 1
                assert v in small_rmat.neighbors(p)
            elif v == 3:
                assert preds[v] == -1

    def test_preds_off_by_default(self, small_rmat, machine2):
        _, _, prob = run_bfs(small_rmat, machine2, src=0)
        assert prob.predecessors() is None

    def test_num_associates_follows_flag(self, small_rmat, machine2):
        p1 = BFSProblem(small_rmat, machine2, mark_predecessors=True)
        assert p1.NUM_VERTEX_ASSOCIATES == 1
        m = Machine(2, scale=1.0)
        p0 = BFSProblem(small_rmat, m)
        assert p0.NUM_VERTEX_ASSOCIATES == 0


class TestCounters:
    def test_w_equals_component_edges(self, small_rmat, machine2):
        """Every edge of the reached component is visited exactly once
        per direction: W == sum of reached vertices' degrees."""
        ref, _ = bfs_reference(small_rmat, 7)
        _, metrics, _ = run_bfs(small_rmat, machine2, src=7)
        expected = int(small_rmat.out_degree()[ref >= 0].sum())
        assert metrics.total_edges_visited == expected

    def test_h_bounded_by_border(self, small_rmat, machine4):
        """Table I: H = O(|B_i|) — each border vertex sent at most once."""
        from repro.partition.border import border_matrix

        prob = BFSProblem(small_rmat, machine4)
        metrics = Enactor(prob, BFSIteration).enact(src=7)
        border_total = border_matrix(small_rmat, prob.partition).sum()
        assert metrics.total_items_sent <= border_total

    def test_supersteps_near_eccentricity(self, small_rmat, machine2):
        ref, _ = bfs_reference(small_rmat, 7)
        _, metrics, _ = run_bfs(small_rmat, machine2, src=7)
        ecc = int(ref.max())
        # S is the eccentricity plus at most 2 (message drain + empty check)
        assert ecc <= metrics.supersteps <= ecc + 2

    def test_frontier_sizes_recorded(self, small_rmat, machine2):
        _, metrics, _ = run_bfs(small_rmat, machine2, src=7)
        assert metrics.iterations[0].frontier_size == 1


class TestEdgeCases:
    def test_isolated_source(self, machine2):
        g = from_edges(4, [(1, 2)])
        labels, metrics, _ = run_bfs(g, machine2, src=0)
        assert labels[0] == 0
        assert np.all(labels[1:] == -1)

    def test_two_vertex_graph(self, machine2):
        g = from_edges(2, [(0, 1)])
        labels, _, _ = run_bfs(g, machine2, src=0)
        assert labels.tolist() == [0, 1]

    def test_star_completes_in_one_level(self, star_graph, machine4):
        labels, metrics, _ = run_bfs(star_graph, machine4, src=0)
        assert np.all(labels[1:] == 1)


class TestBatchedSources:
    """The Appendix A main loop: many sources, one partitioned problem."""

    def test_batch_matches_individual_runs(self, small_rmat, machine2):
        from repro.primitives.bfs import run_bfs_batch

        sources = [0, 17, 99]
        labels_list, metrics_list, prob = run_bfs_batch(
            small_rmat, machine2, sources
        )
        assert len(labels_list) == 3
        for src, labels in zip(sources, labels_list):
            ref, _ = bfs_reference(small_rmat, src)
            assert np.array_equal(labels, ref)
        # each traversal reports its own metrics
        assert all(m.elapsed > 0 for m in metrics_list)

    def test_partitioning_happens_once(self, small_rmat, machine2):
        from repro.primitives.bfs import run_bfs_batch

        _, _, prob = run_bfs_batch(small_rmat, machine2, [0, 1])
        # one problem instance, one allocation prefix => one partition
        assert prob.partition is not None
