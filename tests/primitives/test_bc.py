"""BC: dependencies vs Brandes, sigma counts, phase machinery."""

import numpy as np
import pytest

from repro.baselines.reference import bc_reference, bfs_reference
from repro.core.enactor import Enactor
from repro.graph.build import from_edges
from repro.primitives.bc import BCIteration, BCProblem, run_bc
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_brandes_all_gpu_counts(self, small_rmat, any_machine):
        ref = bc_reference(small_rmat, source=7)
        bc, _, _ = run_bc(small_rmat, any_machine, src=7)
        assert np.allclose(bc, ref, rtol=1e-9, atol=1e-9)

    def test_path_graph_dependencies(self, path_graph, machine2):
        """On a path from one end, delta[v] = #descendants beyond v."""
        bc, _, _ = run_bc(path_graph, machine2, src=0)
        assert np.allclose(bc, np.array([0, 8, 7, 6, 5, 4, 3, 2, 1, 0]))

    def test_star_center(self, star_graph, machine2):
        bc, _, _ = run_bc(star_graph, machine2, src=1)
        # all paths from leaf 1 pass through the hub 0
        assert bc[0] == pytest.approx(14.0)
        assert np.all(bc[2:] == 0)

    def test_diamond_split_paths(self, machine2):
        """Two equal shortest paths halve the dependency."""
        g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        bc, _, _ = run_bc(g, machine2, src=0)
        assert bc[1] == pytest.approx(0.5)
        assert bc[2] == pytest.approx(0.5)
        assert bc[0] == 0.0

    def test_source_excluded(self, small_rmat, machine4):
        bc, _, _ = run_bc(small_rmat, machine4, src=7)
        assert bc[7] == 0.0

    def test_matches_networkx(self, small_social, machine4):
        nx = pytest.importorskip("networkx")
        g = small_social
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        coo = g.to_coo()
        G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
        # networkx betweenness with a single source, unnormalized
        from networkx.algorithms.centrality.betweenness import (
            _single_source_shortest_path_basic,
            _accumulate_basic,
        )

        betweenness = dict.fromkeys(G, 0.0)
        S, P, sigma, _ = _single_source_shortest_path_basic(G, 5)
        betweenness, _ = _accumulate_basic(betweenness, S, P, sigma, 5)
        ref = np.array([betweenness[v] for v in range(g.num_vertices)])
        bc, _, _ = run_bc(g, machine4, src=5)
        assert np.allclose(bc, ref, rtol=1e-9, atol=1e-9)

    def test_disconnected_component_zero(self, two_components_graph, machine2):
        bc, _, _ = run_bc(two_components_graph, machine2, src=0)
        assert np.all(bc[3:] == 0)


class TestInternals:
    def test_sigma_counts_shortest_paths(self, small_rmat, machine4):
        prob = BCProblem(small_rmat, machine4)
        Enactor(prob, BCIteration).enact(src=7)
        sigma = prob.sigmas()
        depths = prob.depths()
        ref_depth, _ = bfs_reference(small_rmat, 7)
        assert np.array_equal(depths, ref_depth)
        # sigma of a vertex = sum of sigmas of its parents
        g = small_rmat
        for v in np.flatnonzero(ref_depth > 0)[:50]:
            parents = [
                u for u in g.neighbors(v) if ref_depth[u] == ref_depth[v] - 1
            ]
            assert sigma[v] == pytest.approx(sum(sigma[u] for u in parents))

    def test_superstep_count_spans_phases(self, small_rmat, machine2):
        """Forward (~ecc) + sync + backward (~ecc) supersteps."""
        ref, _ = bfs_reference(small_rmat, 7)
        ecc = int(ref.max())
        _, metrics, _ = run_bc(small_rmat, machine2, src=7)
        assert metrics.supersteps >= 2 * ecc - 1

    def test_single_gpu_skips_sync(self, small_rmat):
        _, m1, _ = run_bc(small_rmat, Machine(1, scale=64.0), src=7)
        _, m2, _ = run_bc(small_rmat, Machine(2, scale=64.0), src=7)
        assert m1.supersteps < m2.supersteps

    def test_w_roughly_double_bfs(self, small_rmat, machine2):
        """Table I: W = O(2|Ei|) — forward + backward edge passes."""
        from repro.primitives.bfs import run_bfs

        _, m_bfs, _ = run_bfs(small_rmat, machine2, src=7)
        _, m_bc, _ = run_bc(small_rmat, machine2, src=7)
        ratio = m_bc.total_edges_visited / max(m_bfs.total_edges_visited, 1)
        assert 1.5 <= ratio <= 2.5
