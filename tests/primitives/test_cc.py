"""CC: correctness vs union-find, min-ID convention, superstep counts."""

import numpy as np
import pytest

from repro.baselines.reference import cc_reference
from repro.graph.build import from_edges
from repro.primitives.cc import run_cc
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_union_find_all_gpu_counts(self, small_rmat, any_machine):
        ref = cc_reference(small_rmat)
        comp, _, _ = run_cc(small_rmat, any_machine)
        assert np.array_equal(comp, ref)

    def test_two_components(self, two_components_graph, machine2):
        comp, _, _ = run_cc(two_components_graph, machine2)
        assert comp.tolist() == [0, 0, 0, 3, 3, 3]

    def test_all_isolated(self, machine2):
        g = from_edges(5, [])
        comp, _, _ = run_cc(g, machine2)
        assert comp.tolist() == list(range(5))

    def test_single_component(self, path_graph, machine4):
        comp, _, _ = run_cc(path_graph, machine4)
        assert np.all(comp == 0)

    def test_matches_networkx(self, small_social, machine4):
        nx = pytest.importorskip("networkx")
        g = small_social
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        coo = g.to_coo()
        G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
        comp, _, _ = run_cc(g, machine4)
        for cset in nx.connected_components(G):
            ids = {int(comp[v]) for v in cset}
            assert len(ids) == 1
            assert min(cset) in ids  # min-vertex-ID convention

    @pytest.mark.parametrize("family", ["small_web", "small_road"])
    def test_families(self, family, machine4, request):
        g = request.getfixturevalue(family)
        assert np.array_equal(run_cc(g, machine4)[0], cc_reference(g))

    def test_many_small_components(self, machine4):
        # 20 disjoint triangles
        edges = []
        for k in range(20):
            b = 3 * k
            edges += [(b, b + 1), (b + 1, b + 2), (b + 2, b)]
        g = from_edges(60, edges)
        comp, _, _ = run_cc(g, machine4)
        for k in range(20):
            assert comp[3 * k : 3 * k + 3].tolist() == [3 * k] * 3


class TestBehavior:
    def test_few_supersteps(self, small_rmat, machine4):
        """Table I: CC converges in 2-5 supersteps."""
        _, metrics, _ = run_cc(small_rmat, machine4)
        assert 2 <= metrics.supersteps <= 6

    def test_single_gpu_two_supersteps(self, small_rmat):
        _, metrics, _ = run_cc(small_rmat, Machine(1, scale=64.0))
        assert metrics.supersteps == 2

    def test_uses_broadcast(self, small_rmat, machine2):
        from repro.primitives.cc import CCProblem

        assert CCProblem(small_rmat, machine2).communication == "broadcast"

    def test_component_ids_travel_as_vertex_associates(
        self, small_rmat, machine2
    ):
        from repro.primitives.cc import CCProblem

        assert CCProblem(small_rmat, machine2).NUM_VERTEX_ASSOCIATES == 1

    def test_deterministic(self, small_rmat, machine4):
        a, _, _ = run_cc(small_rmat, machine4)
        b, _, _ = run_cc(small_rmat, machine4)
        assert np.array_equal(a, b)
