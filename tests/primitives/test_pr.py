"""PageRank: convergence, correctness, fixed border frontiers."""

import numpy as np
import pytest

from repro.baselines.reference import pagerank_reference
from repro.core.enactor import Enactor
from repro.graph.build import from_edges
from repro.partition import DUPLICATE_1HOP
from repro.primitives.pr import PRIteration, PRProblem, run_pagerank
from repro.sim.machine import Machine


class TestCorrectness:
    def test_matches_reference_all_gpu_counts(self, small_rmat, any_machine):
        ref = pagerank_reference(small_rmat)
        ranks, _, _ = run_pagerank(small_rmat, any_machine)
        assert np.allclose(ranks, ref, rtol=1e-6)

    def test_duplicate_1hop_matches(self, small_rmat, machine4):
        ref = pagerank_reference(small_rmat)
        ranks, _, _ = run_pagerank(
            small_rmat, machine4, duplication=DUPLICATE_1HOP
        )
        assert np.allclose(ranks, ref, rtol=1e-6)

    def test_ring_is_uniform(self, machine2):
        g = from_edges(8, [(i, (i + 1) % 8) for i in range(8)])
        ranks, _, _ = run_pagerank(g, machine2)
        assert np.allclose(ranks, ranks[0])

    def test_hub_ranks_highest(self, star_graph, machine2):
        ranks, _, _ = run_pagerank(star_graph, machine2)
        assert np.argmax(ranks) == 0

    def test_dangling_vertices(self, machine2):
        """Isolated vertices keep the base rank and push nothing."""
        g = from_edges(5, [(0, 1), (1, 2)])
        ranks, _, _ = run_pagerank(g, machine2)
        assert ranks[3] == pytest.approx(0.15)
        assert ranks[4] == pytest.approx(0.15)

    def test_damping_parameter(self, small_rmat, machine2):
        ref = pagerank_reference(small_rmat, damping=0.5)
        ranks, _, _ = run_pagerank(small_rmat, machine2, damping=0.5)
        assert np.allclose(ranks, ref, rtol=1e-6)

    def test_matches_networkx_ordering(self, small_social, machine2):
        nx = pytest.importorskip("networkx")
        g = small_social
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        coo = g.to_coo()
        G.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
        theirs = nx.pagerank(G, alpha=0.85)
        ours, _, _ = run_pagerank(g, machine2)
        top_ours = np.argsort(-ours)[:10]
        top_theirs = sorted(theirs, key=theirs.get, reverse=True)[:10]
        assert len(set(top_ours.tolist()) & set(top_theirs)) >= 7


class TestConvergence:
    def test_threshold_controls_iterations(self, small_rmat, machine2):
        _, loose, _ = run_pagerank(small_rmat, machine2, threshold=1e-2)
        _, tight, _ = run_pagerank(small_rmat, machine2, threshold=1e-8)
        assert tight.supersteps > loose.supersteps

    def test_max_iter_cap(self, small_rmat, machine2):
        _, metrics, _ = run_pagerank(
            small_rmat, machine2, threshold=0.0, max_iter=5
        )
        assert metrics.supersteps <= 6

    def test_iteration_count_gpu_independent(self, small_rmat):
        """The BSP algorithm converges identically at any GPU count."""
        s = {
            n: run_pagerank(small_rmat, Machine(n, scale=64.0))[1].supersteps
            for n in (1, 2, 4)
        }
        assert s[1] == s[2] == s[4]


class TestBorderFrontiers:
    def test_fixed_sub_frontiers_precomputed(self, small_rmat, machine4):
        """Algorithm 3: sub-frontiers are computed at init and reused."""
        prob = PRProblem(small_rmat, machine4)
        assert len(prob.border_frontiers) == 4
        for g, border in enumerate(prob.border_frontiers):
            sub = prob.subgraphs[g]
            # every border vertex is remote and locally referenced
            assert np.all(sub.host_of_local[border] != g)

    def test_h_items_equal_border_per_iteration(self, small_rmat, machine4):
        """Table I: H = S * O(|Bi|)."""
        prob = PRProblem(small_rmat, machine4)
        metrics = Enactor(prob, PRIteration).enact()
        total_border = sum(b.size for b in prob.border_frontiers)
        per_iter = metrics.total_items_sent / metrics.supersteps
        assert per_iter <= total_border

    def test_single_gpu_no_border(self, small_rmat):
        prob = PRProblem(small_rmat, Machine(1, scale=64.0))
        assert prob.border_frontiers[0].size == 0


class TestPersonalizedPagerank:
    """The personalized-PR extension: teleport toward seed vertices."""

    def _reference_ppr(self, g, teleport, damping=0.85, iters=300):
        n = g.num_vertices
        deg = g.out_degree().astype(np.float64)
        src = np.repeat(np.arange(n, dtype=np.int64), deg.astype(np.int64))
        dst = g.col_indices.astype(np.int64)
        rank = (1 - damping) * teleport
        for _ in range(iters):
            push = np.zeros(n)
            nz = deg > 0
            push[nz] = damping * rank[nz] / deg[nz]
            contrib = np.zeros(n)
            np.add.at(contrib, dst, push[src])
            rank = (1 - damping) * teleport + contrib
        return rank

    def test_matches_reference(self, small_rmat, machine2):
        n = small_rmat.num_vertices
        seeds = [3, 50]
        teleport = np.zeros(n)
        teleport[seeds] = 1.0
        teleport *= n / teleport.sum()
        ranks, _, _ = run_pagerank(
            small_rmat, machine2, personalization=seeds, threshold=1e-10
        )
        ref = self._reference_ppr(small_rmat, teleport)
        assert np.allclose(ranks, ref, rtol=1e-4)

    def test_seed_neighborhood_boosted(self, small_rmat, machine2):
        seed = 100
        ppr, _, _ = run_pagerank(
            small_rmat, machine2, personalization=[seed]
        )
        classic, _, _ = run_pagerank(small_rmat, machine2)
        # relative to classic PR, the seed dominates in its own PPR
        assert ppr[seed] / classic[seed] > 10

    def test_explicit_distribution(self, small_rmat, machine2):
        n = small_rmat.num_vertices
        p = np.ones(n)
        ranks_p, _, _ = run_pagerank(
            small_rmat, machine2, personalization=p
        )
        ranks, _, _ = run_pagerank(small_rmat, machine2)
        assert np.allclose(ranks_p, ranks)  # uniform == classic

    def test_multi_gpu_agrees(self, small_rmat):
        results = {}
        for n in (1, 4):
            results[n] = run_pagerank(
                small_rmat, Machine(n, scale=64.0), personalization=[7]
            )[0]
        assert np.allclose(results[1], results[4], rtol=1e-9)

    def test_zero_mass_rejected(self, small_rmat, machine2):
        with pytest.raises(ValueError):
            run_pagerank(
                small_rmat,
                machine2,
                personalization=np.zeros(small_rmat.num_vertices),
            )
