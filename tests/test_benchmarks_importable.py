"""Every benchmark module compiles (syntax/import sanity without running)."""

import pathlib
import py_compile

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
MODULES = sorted(BENCH_DIR.glob("*.py"))


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_one_bench_per_paper_artifact():
    names = {p.stem for p in MODULES}
    required = {
        "test_table1_complexity",
        "test_fig2_partitioners",
        "test_fig3_memory",
        "test_fig4_speedup",
        "test_fig5_scaling",
        "test_fig6_by_family",
        "test_table3_incore",
        "test_table4_outofcore",
        "test_table5_large",
        "test_sec5a_comm_volume",
        "test_sec5b_sync_latency",
        "test_sec6a_direction",
    }
    assert required <= names, required - names
