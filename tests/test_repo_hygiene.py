"""Repository hygiene: public API completeness, docstring coverage."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def _all_modules():
    mods = []
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        mods.append(info.name)
    return mods


class TestPublicApi:
    def test_dunder_all_resolves(self):
        """Every name in each module's __all__ actually exists."""
        for name in _all_modules():
            if name.endswith("__main__"):
                continue
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym}"

    def test_top_level_exports_importable(self):
        for sym in repro.__all__:
            assert hasattr(repro, sym), sym

    def test_version_defined(self):
        assert repro.__version__

    def test_runner_registry_complete(self):
        from repro.primitives import RUNNERS

        assert set(RUNNERS) == {"bfs", "dobfs", "sssp", "cc", "bc", "pr"}


class TestDocstrings:
    def test_every_module_documented(self):
        for name in _all_modules():
            if name.endswith("__main__"):
                continue
            mod = importlib.import_module(name)
            assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"

    def test_public_classes_documented(self):
        undocumented = []
        for name in _all_modules():
            if name.endswith("__main__"):
                continue
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                obj = getattr(mod, sym)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if obj.__module__ != name:
                        continue  # re-export; documented at home
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{name}.{sym}")
        assert not undocumented, undocumented


class TestProjectLayout:
    def test_required_docs_exist(self):
        root = SRC.parent.parent
        for f in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                  "pyproject.toml"):
            assert (root / f).exists(), f

    def test_design_has_experiment_index(self):
        root = SRC.parent.parent
        design = (root / "DESIGN.md").read_text()
        for artifact in ("Table I", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
                         "Fig. 6", "Table III", "Table IV", "Table V"):
            assert artifact in design, artifact
