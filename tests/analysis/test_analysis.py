"""Analysis: GTEPS, BSP decomposition, Table I checks, scaling drivers."""

import numpy as np
import pytest

from repro.analysis.bsp import decompose, table1_check
from repro.analysis.gteps import traversal_gteps, traversed_edges
from repro.analysis.reporting import fmt, render_series, render_table
from repro.analysis.scaling import (
    geomean_speedups,
    run_speedup_sweep,
    strong_scaling,
    weak_edge_scaling,
    weak_vertex_scaling,
)
from repro.primitives import run_bfs, run_cc, run_pagerank
from repro.sim.machine import Machine


class TestGteps:
    def test_traversed_edges_component_only(self, two_components_graph):
        labels = np.array([0, 1, 1, -1, -1, -1])
        # component {0,1,2} is a triangle: 6 directed slots
        assert traversed_edges(two_components_graph, labels) == 6

    def test_gteps_positive(self, small_rmat, machine2):
        labels, metrics, _ = run_bfs(small_rmat, machine2, src=7)
        assert traversal_gteps(small_rmat, labels, metrics) > 0

    def test_gteps_zero_when_no_time(self, small_rmat):
        from repro.sim.metrics import RunMetrics

        m = RunMetrics(num_gpus=1)
        assert traversal_gteps(small_rmat, np.zeros(1), m) == 0.0


class TestBspDecompose:
    def test_terms_sum_to_total(self, small_rmat, machine4):
        _, metrics, _ = run_bfs(small_rmat, machine4, src=7)
        terms = decompose(metrics)
        s = terms.compute + terms.communicate + terms.synchronize
        assert s <= metrics.elapsed * 1.001
        assert terms.total == metrics.elapsed

    def test_fractions_sum_below_one(self, small_rmat, machine4):
        _, metrics, _ = run_bfs(small_rmat, machine4, src=7)
        f = decompose(metrics).fractions()
        assert 0.5 < sum(f.values()) <= 1.001

    def test_single_gpu_no_comm(self, small_rmat):
        _, metrics, _ = run_bfs(small_rmat, Machine(1, scale=64.0), src=7)
        assert decompose(metrics).communicate == 0.0


class TestTable1Check:
    @pytest.mark.parametrize("prim", ["bfs", "dobfs", "sssp", "cc", "bc", "pr"])
    def test_bounds_hold(self, prim, small_rmat, weighted_rmat, machine4):
        from repro.primitives import RUNNERS

        g = weighted_rmat if prim == "sssp" else small_rmat
        runner = RUNNERS[prim]
        if prim in ("bfs", "dobfs", "sssp", "bc"):
            _, metrics, prob = runner(g, machine4, src=7)
        else:
            _, metrics, prob = runner(g, machine4)
        row = table1_check(prim, g, prob.partition, metrics)
        # measured work/communication stays within the asymptotic bound
        assert row.w_ratio <= 2.5, f"{prim} W ratio {row.w_ratio}"
        assert row.h_ratio <= 2.5, f"{prim} H ratio {row.h_ratio}"
        assert row.c_ratio <= 2.5, f"{prim} C ratio {row.c_ratio}"

    def test_unknown_primitive(self, small_rmat, machine2):
        _, metrics, prob = run_bfs(small_rmat, machine2, src=7)
        with pytest.raises(ValueError):
            table1_check("apsp", small_rmat, prob.partition, metrics)


class TestScalingDrivers:
    def test_speedup_sweep_and_geomean(self):
        pts = run_speedup_sweep(
            "bfs", ["soc-LiveJournal1"], gpu_counts=(1, 2), src=3
        )
        assert len(pts) == 2
        sp = geomean_speedups(pts)
        assert sp[1] == pytest.approx(1.0)
        assert sp[2] > 0.5

    def test_strong_scaling_points(self):
        pts = strong_scaling("bfs", gpu_counts=(1, 2), scale=9, edge_factor=8,
                             machine_scale=64.0)
        assert [p.num_gpus for p in pts] == [1, 2]
        assert all(p.gteps > 0 for p in pts)

    def test_weak_edge_grows_graph(self):
        pts = weak_edge_scaling(
            "bfs", gpu_counts=(1, 2), scale=9, edge_factor_per_gpu=4,
            machine_scale=64.0,
        )
        assert pts[0].dataset != pts[1].dataset

    def test_weak_vertex_requires_pow2(self):
        with pytest.raises(ValueError):
            weak_vertex_scaling("bfs", gpu_counts=(3,))

    def test_weak_vertex_points(self):
        pts = weak_vertex_scaling(
            "bfs", gpu_counts=(1, 2), base_scale=9, edge_factor=4,
            machine_scale=64.0,
        )
        assert len(pts) == 2


class TestReporting:
    def test_render_table_aligned(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # aligned

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_render_series(self):
        out = render_series("bfs", [1, 2], [1.0, 1.9])
        assert "bfs:" in out and "2=1.900" in out

    def test_fmt_special(self):
        assert fmt(float("nan")) == "nan"
        assert fmt(True) == "True"
        assert "e" in fmt(1e-9)
