"""Result validators: accept correct outputs, catch corrupted ones."""

import numpy as np
import pytest

from repro.analysis.validate import (
    assert_valid,
    validate_bfs,
    validate_cc,
    validate_pagerank,
    validate_sssp,
)
from repro.baselines.reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.primitives import run_bfs, run_cc, run_pagerank, run_sssp


class TestValidateBfs:
    def test_accepts_correct(self, small_rmat, machine4):
        labels, _, _ = run_bfs(small_rmat, machine4, src=3)
        assert validate_bfs(small_rmat, 3, labels) == []

    def test_accepts_disconnected(self, two_components_graph, machine2):
        labels, _, _ = run_bfs(two_components_graph, machine2, src=0)
        assert validate_bfs(two_components_graph, 0, labels) == []

    def test_catches_wrong_source_level(self, small_rmat):
        levels, _ = bfs_reference(small_rmat, 3)
        levels[3] = 1
        assert any("source" in p for p in validate_bfs(small_rmat, 3, levels))

    def test_catches_level_gap(self, path_graph):
        levels, _ = bfs_reference(path_graph, 0)
        levels[5] = 9  # creates a >1 gap across edge (4,5)
        assert validate_bfs(path_graph, 0, levels)

    def test_catches_false_unreached(self, path_graph):
        levels, _ = bfs_reference(path_graph, 0)
        levels[9] = -1  # adjacent to reached 8
        assert any("unreached" in p for p in validate_bfs(path_graph, 0, levels))

    def test_catches_orphan(self, small_rmat):
        levels, _ = bfs_reference(small_rmat, 3)
        # promote some vertex deeper than all its neighbors allow
        v = int(np.flatnonzero(levels == 1)[0])
        levels[v] = int(levels.max()) + 0  # same max level but neighbors at 0
        if levels[v] <= 1:
            pytest.skip("graph too shallow for this corruption")
        assert validate_bfs(small_rmat, 3, levels)

    def test_catches_bad_shape(self, small_rmat):
        assert validate_bfs(small_rmat, 0, np.zeros(3))


class TestValidateSssp:
    def test_accepts_correct(self, weighted_rmat, machine4):
        dist, _, _ = run_sssp(weighted_rmat, machine4, src=3)
        assert validate_sssp(weighted_rmat, 3, dist) == []

    def test_catches_relaxable_edge(self, weighted_rmat):
        dist, _ = sssp_reference(weighted_rmat, 3)
        v = int(np.flatnonzero(np.isfinite(dist) & (dist > 0))[0])
        dist[v] += 100.0
        assert any("relax" in p for p in validate_sssp(weighted_rmat, 3, dist))

    def test_catches_too_small_distance(self, weighted_rmat):
        dist, _ = sssp_reference(weighted_rmat, 3)
        v = int(np.flatnonzero(np.isfinite(dist) & (dist > 0))[-1])
        dist[v] = dist[v] / 2
        problems = validate_sssp(weighted_rmat, 3, dist)
        assert problems  # either unsupported or relaxable downstream

    def test_requires_weights(self, small_rmat):
        assert validate_sssp(small_rmat, 0, np.zeros(small_rmat.num_vertices))


class TestValidateCc:
    def test_accepts_correct(self, two_components_graph, machine2):
        comp, _, _ = run_cc(two_components_graph, machine2)
        assert validate_cc(two_components_graph, comp) == []

    def test_catches_split_edge(self, path_graph):
        comp = cc_reference(path_graph)
        comp[5:] = 5
        assert any("spans" in p for p in validate_cc(path_graph, comp))

    def test_catches_non_min_convention(self, two_components_graph):
        comp = cc_reference(two_components_graph)
        comp[comp == 3] = 4  # id 4 isn't the min member... and 4 is a member
        problems = validate_cc(two_components_graph, comp)
        assert any("smaller vertex" in p for p in problems)


class TestValidatePagerank:
    def test_accepts_correct(self, small_rmat, machine2):
        ranks, _, _ = run_pagerank(small_rmat, machine2)
        assert validate_pagerank(small_rmat, ranks) == []

    def test_accepts_reference(self, small_social):
        ranks = pagerank_reference(small_social)
        assert validate_pagerank(small_social, ranks) == []

    def test_catches_perturbed_rank(self, small_rmat):
        ranks = pagerank_reference(small_rmat)
        ranks[7] *= 3.0
        assert validate_pagerank(small_rmat, ranks)

    def test_catches_below_floor(self, small_rmat):
        ranks = pagerank_reference(small_rmat)
        ranks[0] = 0.0
        assert any("floor" in p for p in validate_pagerank(small_rmat, ranks))


class TestAssertValid:
    def test_passes_on_empty(self):
        assert_valid([])

    def test_raises_with_details(self):
        with pytest.raises(AssertionError, match="bad thing"):
            assert_valid(["bad thing"])
