"""Timeline rendering and busy-fraction analysis."""

import pytest

from repro.analysis.timeline import (
    busy_fraction,
    clear_timeline,
    enable_timeline,
    render_timeline,
)
from repro.core.enactor import Enactor
from repro.primitives.bfs import BFSIteration, BFSProblem
from repro.sim.machine import Machine


class TestRendering:
    def test_empty(self):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        assert render_timeline(m) == "(empty timeline)"

    def test_manual_ops_render(self):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        m.gpus[0].compute.launch(1.0, label="k")
        out = render_timeline(m, width=10)
        assert "gpu0.compute" in out
        assert "##########" in out  # fully busy
        assert "gpu0.comm" in out
        assert ".........." in out  # fully idle

    def test_partial_busy_marker(self):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        m.gpus[0].compute.launch(0.05)
        m.gpus[0].comm.launch(1.0)
        out = render_timeline(m, width=10)
        compute_row = [l for l in out.splitlines() if "compute" in l][0]
        assert "+" in compute_row or "#" in compute_row
        assert "." in compute_row

    def test_width_validation(self):
        m = Machine(1, scale=1.0)
        with pytest.raises(ValueError):
            render_timeline(m, width=2)

    def test_real_run(self, small_rmat):
        m = Machine(2, scale=512.0)
        enable_timeline(m)
        prob = BFSProblem(small_rmat, m)
        Enactor(prob, BFSIteration).enact(src=0)
        out = render_timeline(m, width=60)
        assert out.count("gpu") == 4  # 2 GPUs x 2 streams
        assert "#" in out

    def test_clear(self, small_rmat):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        m.gpus[0].compute.launch(1.0)
        clear_timeline(m)
        assert render_timeline(m) == "(empty timeline)"


class TestBusyFraction:
    def test_fully_busy(self):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        m.gpus[0].compute.launch(2.0)
        assert busy_fraction(m)[0] == pytest.approx(1.0)

    def test_idle_stream(self):
        m = Machine(1, scale=1.0)
        enable_timeline(m)
        m.gpus[0].compute.launch(2.0)
        assert busy_fraction(m, "comm")[0] == 0.0

    def test_multi_gpu_real_run(self, small_rmat):
        m = Machine(2, scale=512.0)
        enable_timeline(m)
        prob = BFSProblem(small_rmat, m)
        Enactor(prob, BFSIteration).enact(src=0)
        fracs = busy_fraction(m)
        assert set(fracs) == {0, 1}
        assert all(0 < f <= 1 for f in fracs.values())

    def test_no_history(self):
        m = Machine(1, scale=1.0)
        assert busy_fraction(m)[0] == 0.0
