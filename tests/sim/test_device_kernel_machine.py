"""Device specs, kernel cost model, machine barrier semantics."""

import pytest

from repro.sim.device import K40, K80_HALF, P100, VirtualGPU
from repro.sim.kernel import KernelModel
from repro.sim.machine import Machine, k40_node, k80_node, p100_node

GB = 1024**3


class TestDeviceSpecs:
    def test_k40_constants(self):
        assert K40.memory_bytes == 12 * GB
        assert K40.mem_bandwidth == pytest.approx(288e9)
        assert K40.kernel_launch_overhead == pytest.approx(3e-6)

    def test_p100_faster_than_k40(self):
        """Fig. 5's point: P100 computes ~2.5x faster, same interconnect."""
        assert P100.mem_bandwidth > 2 * K40.mem_bandwidth
        assert P100.memory_bytes == 16 * GB

    def test_k80_half(self):
        assert K80_HALF.memory_bytes == 12 * GB
        assert K80_HALF.mem_bandwidth < K40.mem_bandwidth

    def test_effective_bandwidth_regimes(self):
        assert K40.effective_bandwidth(False) > K40.effective_bandwidth(True)


class TestKernelModel:
    def test_launch_overhead_floor(self):
        km = KernelModel(K40, scale=1.0)
        c = km.kernel_time(launches=1)
        assert c.total == pytest.approx(3e-6)

    def test_traffic_scales_linearly(self):
        km = KernelModel(K40, scale=1.0)
        a = km.kernel_time(streaming_bytes=1e6).traffic
        b = km.kernel_time(streaming_bytes=2e6).traffic
        assert b == pytest.approx(2 * a)

    def test_scale_multiplies_traffic_not_launch(self):
        k1 = KernelModel(K40, scale=1.0).kernel_time(streaming_bytes=1e6)
        k4 = KernelModel(K40, scale=4.0).kernel_time(streaming_bytes=1e6)
        assert k4.traffic == pytest.approx(4 * k1.traffic)
        assert k4.launch == k1.launch

    def test_random_slower_than_streaming(self):
        km = KernelModel(K40, scale=1.0)
        s = km.kernel_time(streaming_bytes=1e6).traffic
        r = km.kernel_time(random_bytes=1e6).traffic
        assert r > 2 * s

    def test_atomics_cost(self):
        km = KernelModel(K40, scale=1.0)
        assert km.kernel_time(atomic_ops=1e6).traffic > 0

    def test_memcpy_has_floor(self):
        km = KernelModel(K40, scale=1.0)
        assert km.memcpy_time(0) == pytest.approx(K40.kernel_launch_overhead)

    def test_p100_faster_kernels(self):
        a = KernelModel(K40, 1.0).kernel_time(random_bytes=1e7).traffic
        b = KernelModel(P100, 1.0).kernel_time(random_bytes=1e7).traffic
        assert b < a


class TestVirtualGPU:
    def test_create_has_streams_and_pool(self):
        g = VirtualGPU.create(0, K40, scale=2.0)
        assert set(g.streams) == {"compute", "comm"}
        assert g.memory.capacity == K40.memory_bytes
        assert g.memory.scale == 2.0

    def test_busy_until_is_max(self):
        g = VirtualGPU.create(0, K40, 1.0)
        g.compute.launch(3.0)
        g.comm.launch(5.0)
        assert g.busy_until() == 5.0

    def test_reset_time(self):
        g = VirtualGPU.create(0, K40, 1.0)
        g.compute.launch(3.0)
        g.reset_time()
        assert g.busy_until() == 0.0


class TestMachine:
    def test_factories(self):
        assert k40_node(6).num_gpus == 6
        assert k80_node().num_gpus == 8
        assert p100_node().num_gpus == 4
        assert p100_node().spec is P100

    def test_barrier_advances_all_streams(self):
        m = Machine(2, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        t = m.barrier()
        assert t >= 1.0
        assert m.gpus[1].compute.available_at == t
        assert m.clock.now == t

    def test_barrier_adds_sync_latency(self):
        m = Machine(4, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        t = m.barrier()
        assert t == pytest.approx(1.0 + m.interconnect.sync_latency(4))

    def test_barrier_without_latency(self):
        m = Machine(4, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        assert m.barrier(extra_latency=False) == pytest.approx(1.0)

    def test_single_gpu_barrier_free(self):
        m = Machine(1, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        assert m.barrier() == pytest.approx(1.0)

    def test_reset(self):
        m = Machine(2, scale=1.0)
        m.gpus[0].compute.launch(1.0)
        m.barrier()
        m.reset()
        assert m.clock.now == 0.0
        assert m.gpus[0].compute.available_at == 0.0

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_describe_mentions_spec(self):
        assert "K40" in Machine(2).describe()


class TestMultiNodeCluster:
    def test_topology(self):
        from repro.sim.machine import multi_node_cluster

        m = multi_node_cluster(2, 4, scale=64.0)
        assert m.num_gpus == 8
        assert m.interconnect.link(0, 3).name == "pcie3-peer"
        assert m.interconnect.link(3, 4).name == "infiniband"

    def test_custom_link(self):
        from repro.sim.interconnect import NVLINK
        from repro.sim.machine import multi_node_cluster

        m = multi_node_cluster(2, 2, inter_node_link=NVLINK, scale=64.0)
        assert m.interconnect.link(1, 2) is NVLINK

    def test_primitives_run_unchanged(self, small_rmat):
        """The paper's generality claim: algorithms are topology-blind."""
        import numpy as np

        from repro.baselines.reference import bfs_reference
        from repro.primitives import run_bfs
        from repro.sim.machine import multi_node_cluster

        m = multi_node_cluster(2, 2, scale=64.0)
        labels, metrics, _ = run_bfs(small_rmat, m, src=3)
        ref, _ = bfs_reference(small_rmat, 3)
        assert np.array_equal(labels, ref)

    def test_scale_out_slower_than_scale_up(self, small_rmat):
        from repro.primitives import run_bfs
        from repro.sim.machine import Machine, multi_node_cluster

        up = Machine(4, scale=512.0, peer_group_size=4)
        out = multi_node_cluster(2, 2, scale=512.0)
        t_up = run_bfs(small_rmat, up, src=3)[1].elapsed
        t_out = run_bfs(small_rmat, out, src=3)[1].elapsed
        assert t_out >= t_up
