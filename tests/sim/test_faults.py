"""Unit tests for the fault plan / injector (repro.sim.faults)."""

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    DeviceLostError,
    DeviceMemoryError,
    SimulationError,
)
from repro.sim.faults import (
    FAULT_KINDS,
    GPU_LOSS,
    OOM,
    STRAGGLER,
    TRANSIENT_COMM,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.sim.machine import Machine


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            FaultSpec("meteor-strike", gpu=0, iteration=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(SimulationError):
            FaultSpec(TRANSIENT_COMM, gpu=-1, iteration=0)
        with pytest.raises(SimulationError):
            FaultSpec(TRANSIENT_COMM, gpu=0, iteration=0, count=0)

    def test_dict_roundtrip(self):
        for spec in (
            FaultSpec(TRANSIENT_COMM, gpu=1, iteration=2, count=3, dst=0),
            FaultSpec(OOM, gpu=0, iteration=1),
            FaultSpec(STRAGGLER, gpu=2, iteration=0, factor=6.0, duration=2),
            FaultSpec(GPU_LOSS, gpu=3, iteration=4),
        ):
            back = FaultSpec.from_dict(spec.to_dict())
            assert back.kind == spec.kind
            assert back.gpu == spec.gpu
            assert back.iteration == spec.iteration


class TestFaultPlan:
    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(k, gpu=0, iteration=1) for k in FAULT_KINDS],
            seed=7,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        back = FaultPlan.load(path)
        assert [s.kind for s in back.faults] == list(FAULT_KINDS)
        assert back.seed == 7

    def test_malformed_json_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_json("[1, 2, 3]")

    def test_validate_gpu_range(self):
        plan = FaultPlan([FaultSpec(OOM, gpu=5, iteration=0)])
        with pytest.raises(SimulationError):
            plan.validate(2)

    def test_validate_total_loss(self):
        plan = FaultPlan(
            [FaultSpec(GPU_LOSS, gpu=g, iteration=0) for g in range(2)]
        )
        with pytest.raises(SimulationError):
            plan.validate(2)

    def test_random_is_seeded(self):
        a = FaultPlan.random(seed=11, num_gpus=4)
        b = FaultPlan.random(seed=11, num_gpus=4)
        assert a.to_json() == b.to_json()
        # at most one permanent loss, so survivors always exist
        losses = [s for s in a.faults if s.kind == GPU_LOSS]
        assert len(losses) <= 1


class TestFaultInjector:
    def test_comm_fault_fires_count_times(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(TRANSIENT_COMM, gpu=0, iteration=1,
                                 count=2)]),
            num_gpus=2,
        )
        inj.check_comm(0, 1, 0)  # before the armed iteration: no fault
        for _ in range(2):
            with pytest.raises(CommunicationError) as ei:
                inj.check_comm(0, 1, 1)
            assert ei.value.gpu_id == 0
            assert ei.value.iteration == 1
        inj.check_comm(0, 1, 1)  # budget exhausted
        assert inj.injected[TRANSIENT_COMM] == 2

    def test_comm_fault_at_or_after(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(TRANSIENT_COMM, gpu=0, iteration=1)]),
            num_gpus=2,
        )
        # the superstep it was armed for never communicated; the fault
        # stays pending and fires at the next transfer
        with pytest.raises(CommunicationError):
            inj.check_comm(0, 1, 3)

    def test_gpu_loss_fires_once(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(GPU_LOSS, gpu=1, iteration=2)]),
            num_gpus=2,
        )
        inj.check_gpu_loss(1, 1)
        with pytest.raises(DeviceLostError):
            inj.check_gpu_loss(1, 2)
        inj.check_gpu_loss(1, 3)  # consumed

    def test_alloc_fault_needs_superstep_scope(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(OOM, gpu=0, iteration=0)]),
            num_gpus=1,
        )
        # outside a superstep (setup/recovery allocations): never fires
        inj.check_alloc(0, "x")
        inj.begin_superstep(0, 0)
        with pytest.raises(DeviceMemoryError):
            inj.check_alloc(0, "x")
        inj.end_iteration()
        inj.check_alloc(0, "x")  # consumed

    def test_straggler_factor_window(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(STRAGGLER, gpu=0, iteration=2,
                                 factor=4.0, duration=2)]),
            num_gpus=1,
        )
        assert inj.straggler_factor(0, 1) == 1.0
        assert inj.straggler_factor(0, 2) == 4.0
        assert inj.straggler_factor(0, 3) == 4.0
        assert inj.straggler_factor(0, 4) == 1.0
        assert inj.straggler_factor(1, 2) == 1.0

    def test_reset_rearms(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec(GPU_LOSS, gpu=0, iteration=0)]),
            num_gpus=2,
        )
        with pytest.raises(DeviceLostError):
            inj.check_gpu_loss(0, 0)
        inj.reset()
        with pytest.raises(DeviceLostError):
            inj.check_gpu_loss(0, 0)


class TestMachineFaultWiring:
    def test_arm_validates(self):
        m = Machine(2)
        with pytest.raises(SimulationError):
            m.arm_faults(FaultPlan([FaultSpec(OOM, gpu=7, iteration=0)]))

    def test_lost_gpu_link_raises(self):
        m = Machine(2)
        m.lose_gpu(1)
        with pytest.raises(CommunicationError):
            m.interconnect.transfer_cost(0, 1, 1024)

    def test_lost_gpus_survive_reset(self):
        m = Machine(2)
        m.lose_gpu(1)
        m.reset()
        assert m.lost_gpus == {1}
        assert m.alive_gpus == [0]

    def test_barrier_ignores_lost_gpus(self):
        m = Machine(4)
        m.gpus[3].compute.launch(1.0)
        m.lose_gpu(3)
        m.barrier()
        # the dead GPU's pending work does not hold the barrier
        assert m.clock.now < 1.0
