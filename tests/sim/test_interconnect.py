"""Interconnect: links, peer groups, transfer timing, sync latency."""

import pytest

from repro.errors import CommunicationError
from repro.sim.interconnect import (
    NVLINK,
    PCIE3_HOST,
    PCIE3_PEER,
    Interconnect,
)


class TestLinks:
    def test_paper_link_constants(self):
        """Section V-A: peer 20 GB/s @ 7.5 us, host 16 GB/s @ 25 us."""
        assert PCIE3_PEER.bandwidth == pytest.approx(20e9)
        assert PCIE3_PEER.latency == pytest.approx(7.5e-6)
        assert PCIE3_HOST.bandwidth == pytest.approx(16e9)
        assert PCIE3_HOST.latency == pytest.approx(25e-6)

    def test_peer_group_membership(self):
        ic = Interconnect(6, peer_group_size=4)
        assert ic.link(0, 3) is PCIE3_PEER
        assert ic.link(4, 5) is PCIE3_PEER
        assert ic.link(3, 4) is PCIE3_HOST  # crosses the group boundary

    def test_self_link_rejected(self):
        with pytest.raises(CommunicationError):
            Interconnect(2).link(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(CommunicationError):
            Interconnect(2).link(0, 5)


class TestTransferTime:
    def test_latency_plus_bandwidth(self):
        ic = Interconnect(2, scale=1.0)
        t = ic.transfer_time(0, 1, 20_000_000)  # 20 MB at 20 GB/s = 1 ms
        assert t == pytest.approx(7.5e-6 + 1e-3)

    def test_scale_multiplies_bytes(self):
        a = Interconnect(2, scale=1.0).transfer_time(0, 1, 1000)
        b = Interconnect(2, scale=2.0).transfer_time(0, 1, 1000)
        assert (b - 7.5e-6) == pytest.approx(2 * (a - 7.5e-6))

    def test_zero_bytes_pays_latency(self):
        ic = Interconnect(2)
        assert ic.transfer_time(0, 1, 0) == pytest.approx(7.5e-6)

    def test_latency_scale(self):
        """Section V-A: latency x10 experiment support."""
        ic = Interconnect(2, scale=1.0)
        t1 = ic.transfer_time(0, 1, 0, latency_scale=1.0)
        t10 = ic.transfer_time(0, 1, 0, latency_scale=10.0)
        assert t10 == pytest.approx(10 * t1)

    def test_counters(self):
        ic = Interconnect(2, scale=2.0)
        ic.transfer_time(0, 1, 100)
        ic.transfer_time(1, 0, 50)
        assert ic.total_messages == 2
        assert ic.total_bytes == 300  # scaled

    def test_reset_counters(self):
        ic = Interconnect(2)
        ic.transfer_time(0, 1, 10)
        ic.reset_counters()
        assert ic.total_bytes == 0
        assert ic.total_messages == 0

    def test_negative_size_rejected(self):
        with pytest.raises(CommunicationError):
            Interconnect(2).transfer_time(0, 1, -5)

    def test_nvlink_faster(self):
        pci = Interconnect(2).transfer_time(0, 1, 10**6)
        nv = Interconnect(2, peer_link=NVLINK).transfer_time(0, 1, 10**6)
        assert nv < pci


class TestSyncLatency:
    def test_single_gpu_free(self):
        assert Interconnect(1).sync_latency(1) == 0.0

    def test_matches_paper_measurements(self):
        """Section V-B: per-iteration l of {66.8,124,142,188} us for 1-4
        GPUs; here we check the multi-GPU increments (device overhead of
        ~66.8 us carries the 1-GPU part)."""
        ic = Interconnect(4)
        assert ic.sync_latency(2) == pytest.approx(57.2e-6)
        assert ic.sync_latency(3) == pytest.approx(75.2e-6)
        assert ic.sync_latency(4) == pytest.approx(121.2e-6)

    def test_monotone(self):
        ic = Interconnect(8)
        vals = [ic.sync_latency(n) for n in range(1, 9)]
        assert vals == sorted(vals)

    def test_extrapolation_beyond_table(self):
        ic = Interconnect(8)
        assert ic.sync_latency(6) > ic.sync_latency(4)

    def test_zero_gpus(self):
        assert Interconnect(2).sync_latency(0) == 0.0


class TestValidation:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            Interconnect(0)

    def test_rejects_zero_group(self):
        with pytest.raises(ValueError):
            Interconnect(2, peer_group_size=0)
