"""Memory pools and the Fig. 3 allocation schemes."""

import pytest

from repro.errors import DeviceMemoryError
from repro.sim.memory import (
    FixedPrealloc,
    JustEnough,
    MaxAlloc,
    MemoryPool,
    PreallocFusion,
    scheme_by_name,
)


class TestMemoryPool:
    def test_alloc_free_accounting(self):
        p = MemoryPool(1000)
        p.alloc("a", 400)
        assert p.in_use == 400
        p.free("a")
        assert p.in_use == 0

    def test_scale_multiplies_charge(self):
        p = MemoryPool(10000, scale=4.0)
        p.alloc("a", 100)
        assert p.in_use == 400

    def test_oom_raises(self):
        p = MemoryPool(100)
        with pytest.raises(DeviceMemoryError):
            p.alloc("big", 200)

    def test_oom_message_names_allocation(self):
        p = MemoryPool(100)
        with pytest.raises(DeviceMemoryError, match="big"):
            p.alloc("big", 200)

    def test_duplicate_name_rejected(self):
        p = MemoryPool(1000)
        p.alloc("a", 10)
        with pytest.raises(DeviceMemoryError):
            p.alloc("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(DeviceMemoryError):
            MemoryPool(100).free("nope")

    def test_peak_tracks_high_water(self):
        p = MemoryPool(1000)
        p.alloc("a", 600)
        p.free("a")
        p.alloc("b", 100)
        assert p.peak == 600
        assert p.in_use == 100

    def test_realloc_counts_transient(self):
        """cudaMalloc+copy+free keeps both buffers alive transiently."""
        p = MemoryPool(1000)
        p.alloc("a", 400)
        p.realloc("a", 500)
        assert p.in_use == 500
        assert p.peak == 900  # 400 + 500 transient
        assert p.num_reallocs == 1

    def test_realloc_oom_when_transient_exceeds(self):
        p = MemoryPool(1000)
        p.alloc("a", 600)
        with pytest.raises(DeviceMemoryError):
            p.realloc("a", 600)

    def test_realloc_of_missing_allocates(self):
        p = MemoryPool(1000)
        p.realloc("a", 100)
        assert p.size_of("a") == 100
        assert p.num_reallocs == 0

    def test_ensure_grows_only_when_needed(self):
        p = MemoryPool(1000)
        p.alloc("a", 100)
        assert p.ensure("a", 50) is False
        assert p.ensure("a", 150) is True
        assert p.size_of("a") == 150

    def test_reset_peak(self):
        p = MemoryPool(1000)
        p.alloc("a", 500)
        p.free("a")
        p.reset_peak()
        assert p.peak == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            MemoryPool(10).alloc("a", -1)


class TestSchemes:
    V, E = 1000, 32000

    def test_max_uses_edge_sized_intermediate(self):
        s = MaxAlloc()
        assert s.intermediate_capacity(self.V, self.E) == self.E

    def test_fusion_has_no_intermediate(self):
        s = PreallocFusion()
        assert s.intermediate_capacity(self.V, self.E) == 0
        assert s.fused

    def test_just_enough_starts_small_and_grows(self):
        s = JustEnough()
        assert s.grows_on_demand
        assert s.intermediate_capacity(self.V, self.E) < self.E

    def test_fig3_memory_ordering(self):
        """max > fixed > just-enough initial footprint (Fig. 3)."""
        je = JustEnough()
        fx = FixedPrealloc()
        mx = MaxAlloc()

        def footprint(s):
            return 2 * s.frontier_capacity(self.V, self.E) + s.intermediate_capacity(
                self.V, self.E
            )

        assert footprint(mx) > footprint(fx) > footprint(je)

    def test_fixed_scales_with_edges(self):
        s = FixedPrealloc()
        assert s.intermediate_capacity(self.V, self.E) > s.intermediate_capacity(
            self.V, self.E // 4
        )

    def test_scheme_by_name(self):
        for name in ("just-enough", "fixed", "max", "prealloc+fusion"):
            assert scheme_by_name(name).name == name

    def test_scheme_by_name_unknown(self):
        with pytest.raises(ValueError):
            scheme_by_name("bogus")

    def test_capacities_positive(self):
        for name in ("just-enough", "fixed", "max", "prealloc+fusion"):
            s = scheme_by_name(name)
            assert s.frontier_capacity(1, 0) >= 1
