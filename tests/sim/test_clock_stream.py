"""Virtual clock, streams, events."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.stream import Event, Stream


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_to(self):
        c = VirtualClock()
        c.advance_to(1.5)
        assert c.now == 1.5

    def test_advance_by(self):
        c = VirtualClock()
        c.advance_by(0.5)
        c.advance_by(0.25)
        assert c.now == pytest.approx(0.75)

    def test_no_backward(self):
        c = VirtualClock()
        c.advance_to(2.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)

    def test_no_negative_delta(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance_by(-1.0)

    def test_reset(self):
        c = VirtualClock()
        c.advance_to(3.0)
        c.reset()
        assert c.now == 0.0


class TestStream:
    def test_fifo_ordering(self):
        s = Stream("s")
        e1 = s.launch(1.0)
        e2 = s.launch(2.0)
        assert e1.timestamp == 1.0
        assert e2.timestamp == 3.0

    def test_earliest_start_dependency(self):
        s = Stream("s")
        e = s.launch(1.0, earliest_start=5.0)
        assert e.timestamp == 6.0

    def test_earliest_start_no_op_when_busy(self):
        s = Stream("s")
        s.launch(10.0)
        e = s.launch(1.0, earliest_start=3.0)
        assert e.timestamp == 11.0

    def test_wait_event(self):
        a, b = Stream("a"), Stream("b")
        e = a.launch(4.0)
        b.wait_event(e)
        e2 = b.launch(1.0)
        assert e2.timestamp == 5.0

    def test_wait_event_does_not_rewind(self):
        s = Stream("s")
        s.launch(10.0)
        s.wait_event(Event(2.0))
        assert s.available_at == 10.0

    def test_record_event(self):
        s = Stream("s")
        s.launch(3.0)
        assert s.record_event().timestamp == 3.0

    def test_zero_duration(self):
        s = Stream("s")
        assert s.launch(0.0).timestamp == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Stream("s").launch(-1.0)

    def test_history_recording(self):
        s = Stream("s", record_history=True)
        s.launch(1.0, label="k1")
        s.launch(2.0, label="k2")
        assert s.history == [(0.0, 1.0, "k1"), (1.0, 3.0, "k2")]

    def test_history_off_by_default(self):
        s = Stream("s")
        s.launch(1.0, label="k1")
        assert s.history == []

    def test_reset(self):
        s = Stream("s", record_history=True)
        s.launch(1.0)
        s.reset()
        assert s.available_at == 0.0
        assert s.history == []
