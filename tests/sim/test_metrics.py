"""BSP counters and run metrics."""

import pytest

from repro.sim.metrics import IterationRecord, RunMetrics


def make_metrics():
    m = RunMetrics(num_gpus=2, primitive="bfs", dataset="toy", scale=4.0)
    r0 = IterationRecord(0)
    r0.edges_visited = {0: 100, 1: 50}
    r0.items_sent = {0: 10}
    r0.comm_compute_items = {1: 10}
    r0.compute_time = {0: 2.0, 1: 1.0}
    r0.comm_time = {0: 0.5, 1: 0.0}
    r0.duration = 3.0
    r1 = IterationRecord(1)
    r1.edges_visited = {0: 30, 1: 20}
    r1.items_sent = {1: 5}
    r1.compute_time = {0: 1.0, 1: 1.5}
    r1.comm_time = {0: 0.0, 1: 0.25}
    r1.duration = 2.0
    m.iterations = [r0, r1]
    m.elapsed = 5.0
    return m


class TestAggregates:
    def test_supersteps(self):
        assert make_metrics().supersteps == 2

    def test_total_edges(self):
        assert make_metrics().total_edges_visited == 200

    def test_total_items_sent(self):
        assert make_metrics().total_items_sent == 15

    def test_total_comm_compute(self):
        assert make_metrics().total_comm_compute == 10

    def test_max_compute_time_is_critical_path(self):
        assert make_metrics().max_compute_time() == pytest.approx(3.5)

    def test_max_comm_time(self):
        assert make_metrics().max_comm_time() == pytest.approx(0.75)


class TestGteps:
    def test_uses_scaled_edges(self):
        m = make_metrics()
        # 200 edges * scale 4 / 5 s / 1e9
        assert m.gteps() == pytest.approx(200 * 4 / 5 / 1e9)

    def test_explicit_edge_count(self):
        m = make_metrics()
        assert m.gteps(1000) == pytest.approx(1000 * 4 / 5 / 1e9)

    def test_zero_elapsed(self):
        m = RunMetrics(num_gpus=1)
        assert m.gteps() == 0.0

    def test_mteps(self):
        m = make_metrics()
        assert m.millions_of_teps() == pytest.approx(m.gteps() * 1e3)


class TestRecord:
    def test_record_totals(self):
        r = IterationRecord(0, edges_visited={0: 5, 1: 7}, items_sent={0: 2})
        assert r.total_edges() == 12
        assert r.total_items_sent() == 2

    def test_summary_mentions_primitive(self):
        assert "bfs" in make_metrics().summary()
        assert "toy" in make_metrics().summary()


class TestTraceExport:
    def test_to_dict_round_trips_json(self, tmp_path):
        import json

        m = make_metrics()
        d = m.to_dict()
        assert d["supersteps"] == 2
        assert d["total_edges_visited"] == 200
        assert len(d["iterations"]) == 2
        # JSON-serializable end to end
        p = tmp_path / "trace.json"
        m.save_json(p)
        back = json.loads(p.read_text())
        assert back["primitive"] == "bfs"
        assert back["iterations"][0]["edges_visited"]["0"] == 100

    def test_load_imbalance(self):
        m = make_metrics()
        # iter0: max 2.0 / mean 1.5; iter1: max 1.5 / mean 1.25
        expected = ((2.0 / 1.5) + (1.5 / 1.25)) / 2
        assert m.load_imbalance() == pytest.approx(expected)

    def test_load_imbalance_empty(self):
        from repro.sim.metrics import RunMetrics

        assert RunMetrics(num_gpus=1).load_imbalance() == 1.0

    def test_real_run_trace(self, small_rmat, tmp_path):
        from repro.primitives import run_bfs
        from repro.sim.machine import Machine

        _, metrics, _ = run_bfs(small_rmat, Machine(2, scale=64.0), src=0)
        d = metrics.to_dict()
        assert d["num_gpus"] == 2
        assert d["load_imbalance"] >= 1.0
        metrics.save_json(tmp_path / "run.json")
        assert (tmp_path / "run.json").stat().st_size > 100
