"""CLI: every command produces sane output and exit code 0."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDatasets:
    def test_lists_all(self):
        code, text = run_cli("datasets")
        assert code == 0
        assert "soc-orkut" in text
        assert "rmat_n24_32" in text
        assert "road-grid" in text

    def test_has_scale_column(self):
        _, text = run_cli("datasets")
        assert "scale" in text


class TestRun:
    @pytest.mark.parametrize("prim", ["bfs", "dobfs", "cc"])
    def test_primitives(self, prim):
        code, text = run_cli(
            "run", prim, "--dataset", "soc-LiveJournal1", "--gpus", "2"
        )
        assert code == 0
        assert prim in text
        assert "BSP:" in text

    def test_sssp_weights_auto(self):
        code, text = run_cli(
            "run", "sssp", "--dataset", "soc-LiveJournal1", "--gpus", "2"
        )
        assert code == 0

    def test_gteps_reported_for_traversal(self):
        _, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2"
        )
        assert "GTEPS" in text

    def test_gpu_model_option(self):
        code, _ = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1",
            "--gpus", "2", "--gpu-model", "p100",
        )
        assert code == 0

    def test_metis_partitioner_option(self):
        code, _ = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1",
            "--gpus", "2", "--partitioner", "metis",
        )
        assert code == 0

    def test_unknown_primitive_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "apsp")


class TestPartition:
    def test_compares_three(self):
        code, text = run_cli(
            "partition", "--dataset", "soc-LiveJournal1", "--gpus", "4"
        )
        assert code == 0
        for name in ("random", "biased-random", "metis"):
            assert name in text
        assert "border" in text


class TestSweep:
    def test_speedup_table(self):
        code, text = run_cli(
            "sweep", "bfs", "--dataset", "soc-LiveJournal1", "--max-gpus", "2"
        )
        assert code == 0
        assert "1.00x" in text
        assert "speedup" in text


class TestCheck:
    def test_clean_package_exits_zero(self):
        import pathlib

        import repro

        pkg = str(pathlib.Path(repro.__file__).parent)
        code, text = run_cli("check", pkg)
        assert code == 0
        assert "repro check: clean" in text

    def test_default_paths_lint_the_package(self):
        code, text = run_cli("check")
        assert code == 0
        assert "clean" in text

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""doc"""\n'
            "import numpy as np\n"
            "from repro.core.problem import ProblemBase\n\n\n"
            "class ToyProblem(ProblemBase):\n"
            "    NUM_VALUE_ASSOCIATES = 1\n"
        )
        code, text = run_cli("check", str(bad))
        assert code == 1
        assert "REP102" in text

    def test_json_output(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""doc"""\n'
            "import numpy as np\n"
            "from repro.core.problem import ProblemBase\n\n\n"
            "class ToyProblem(ProblemBase):\n"
            "    NUM_VALUE_ASSOCIATES = 1\n"
        )
        code, text = run_cli("check", "--json", str(bad))
        assert code == 1
        doc = json.loads(text)
        assert doc["tool"] == "repro-check"
        assert doc["by_rule"] == {"REP102": 1}


class TestSanitizeFlag:
    def test_clean_run_reports_and_exits_zero(self):
        code, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1",
            "--gpus", "2", "--sanitize",
        )
        assert code == 0
        assert "sanitizer: clean" in text


class TestFaultsFlag:
    def _plan(self, tmp_path, *specs):
        from repro.sim.faults import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan(list(specs)).save(path)
        return str(path)

    def test_faulted_run_reports_recovery(self, tmp_path):
        from repro.sim.faults import FaultSpec

        plan = self._plan(
            tmp_path,
            FaultSpec("gpu-loss", gpu=1, iteration=1),
        )
        code, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
            "--faults", plan, "--checkpoint-every", "2",
        )
        assert code == 0
        assert "recovery:" in text
        assert "1 rollbacks" in text
        assert "degraded GPUs [1]" in text

    def test_fault_free_run_prints_no_recovery_line(self):
        _, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2"
        )
        assert "recovery:" not in text

    def test_repro_error_is_one_line_diagnosis(self, tmp_path, capsys):
        from repro.sim.faults import FaultSpec

        # a plan targeting a GPU the machine doesn't have: structured
        # SimulationError -> one-line stderr diagnosis, exit 1
        plan = self._plan(
            tmp_path, FaultSpec("oom", gpu=7, iteration=0)
        )
        code, _ = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
            "--faults", plan,
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "SimulationError" in err
        assert "site=faults.plan" in err

    def test_sanitize_and_faults_mutually_exclusive(self, tmp_path, capsys):
        from repro.sim.faults import FaultSpec

        plan = self._plan(
            tmp_path, FaultSpec("oom", gpu=0, iteration=0)
        )
        code, _ = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
            "--faults", plan, "--sanitize",
        )
        assert code == 1
        assert "SimulationError" in capsys.readouterr().err


class TestChaos:
    def test_smoke_matrix_recovers(self):
        code, text = run_cli(
            "chaos", "--smoke", "--primitives", "bfs",
            "--kinds", "transient-comm", "gpu-loss",
        )
        assert code == 0
        assert "2/2 recovered" in text


def _faulted_trace(tmp_path):
    """One gpu-loss BFS run exported as a Chrome trace file."""
    from repro.sim.faults import FaultPlan, FaultSpec

    plan = tmp_path / "plan.json"
    FaultPlan([FaultSpec("gpu-loss", gpu=1, iteration=1)]).save(plan)
    trace = tmp_path / "out.trace.json"
    code, _ = run_cli(
        "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
        "--faults", str(plan), "--checkpoint-every", "2",
        "--trace", str(trace),
    )
    assert code == 0
    return str(trace)


class TestTrace:
    def test_summary_counts_recovery_instants(self, tmp_path):
        path = _faulted_trace(tmp_path)
        code, text = run_cli("trace", path)
        assert code == 0
        assert "trace: valid" in text
        line = [l for l in text.splitlines()
                if l.startswith("recovery/checkpoint:")]
        assert line, text
        assert "recovery.rollback×1" in line[0]
        assert "checkpoint×" in line[0]
        assert "checkpoint.capture×" in line[0]
        # no supervision ran, so no supervisor summary line
        assert "supervisor:" not in text

    def test_missing_file_exits_two(self):
        code, _ = run_cli("trace", "/nonexistent/x.trace.json")
        assert code == 2


class TestAnalyze:
    def test_renders_critical_path_table(self, tmp_path):
        code, text = run_cli("analyze", _faulted_trace(tmp_path))
        assert code == 0
        assert "bfs critical path (2 GPUs" in text
        assert "BSP terms (W + H·g + C + S·l):" in text
        assert "stragglers" in text
        assert "what-if" not in text

    def test_top_and_what_if(self, tmp_path):
        code, text = run_cli(
            "analyze", _faulted_trace(tmp_path), "--top", "2", "--what-if"
        )
        assert code == 0
        assert "what-if: zero-comm" in text
        assert "serial span sum" in text

    def test_json_report(self, tmp_path):
        import json

        code, text = run_cli("analyze", _faulted_trace(tmp_path), "--json")
        assert code == 0
        report = json.loads(text)
        assert report["type"] == "analysis.report"
        assert report["schema_version"] == 2
        assert set(report["terms"]) == {"W", "H", "C", "S"}
        wi = report["what_if"]
        assert wi["zero_comm_s"] <= wi["serial_span_sum_s"] + 1e-12

    def test_missing_file_exits_two(self):
        code, _ = run_cli("analyze", "/nonexistent/x.trace.json")
        assert code == 2

    def test_invalid_trace_exits_one(self, tmp_path):
        import json

        bad = tmp_path / "bad.trace.json"
        bad.write_text(json.dumps({"traceEvents": []}), "utf-8")
        code, _ = run_cli("analyze", str(bad))
        assert code == 1


class TestFlightRecorderFlag:
    def test_clean_run_reports_ring_stats(self, tmp_path):
        dump = tmp_path / "crash.json"
        code, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
            "--flight-recorder", str(dump),
        )
        assert code == 0
        assert "flight recorder:" in text
        assert "events recorded" in text
        # a clean run never writes the crash dump
        assert not dump.exists()

    def test_metrics_out_writes_openmetrics(self, tmp_path):
        path = tmp_path / "metrics.prom"
        code, text = run_cli(
            "run", "bfs", "--dataset", "soc-LiveJournal1", "--gpus", "2",
            "--metrics-out", str(path),
        )
        assert code == 0
        assert "(OpenMetrics)" in text
        body = path.read_text("utf-8")
        assert body.endswith("# EOF\n")
        assert "repro_run_elapsed_virtual_seconds" in body
