"""Shared fixtures: small deterministic graphs and machines."""

import numpy as np
import pytest

from repro.graph.build import add_random_weights, from_edges
from repro.graph.generators import (
    generate_rmat,
    generate_road,
    generate_social,
    generate_web,
)
from repro.sim.machine import Machine
from repro.sim.device import K40


@pytest.fixture(scope="session")
def path_graph():
    """0-1-2-...-9 undirected path."""
    edges = [(i, i + 1) for i in range(9)]
    return from_edges(10, edges)


@pytest.fixture(scope="session")
def star_graph():
    """Hub 0 connected to 1..15."""
    return from_edges(16, [(0, i) for i in range(1, 16)])


@pytest.fixture(scope="session")
def two_components_graph():
    """A triangle {0,1,2} and a path 3-4-5, disconnected."""
    return from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)])


@pytest.fixture(scope="session")
def small_rmat():
    """~1k-vertex rmat graph, the workhorse correctness graph."""
    return generate_rmat(10, 8, seed=42)


@pytest.fixture(scope="session")
def small_social():
    return generate_social(512, 12, seed=7)


@pytest.fixture(scope="session")
def small_web():
    return generate_web(768, 10, seed=7)


@pytest.fixture(scope="session")
def small_road():
    return generate_road(24, 24, seed=7)


@pytest.fixture(scope="session")
def weighted_rmat(small_rmat):
    return add_random_weights(small_rmat, 1, 64, seed=3)


@pytest.fixture
def machine2():
    return Machine(2, spec=K40, scale=64.0)


@pytest.fixture
def machine4():
    return Machine(4, spec=K40, scale=64.0)


@pytest.fixture(params=[1, 2, 3, 4])
def any_machine(request):
    """Machines with 1-4 GPUs, for correctness sweeps."""
    return Machine(request.param, spec=K40, scale=64.0)
