#!/usr/bin/env python
"""Social-network analytics: the paper's intro workload, end to end.

The paper motivates multi-GPU graph analytics with social-network-scale
graphs.  This example runs the full analytics pipeline a downstream user
would: connected components (is there a giant component?), PageRank
(who are the influencers?), BFS (degrees of separation from a seed), and
betweenness centrality (who brokers the network?), all on a 4-GPU
virtual node, and reports timing plus a BSP cost breakdown per
primitive.

Run:  python examples/social_network_analytics.py
"""

import numpy as np

from repro import datasets, run_bc, run_bfs, run_cc, run_pagerank
from repro.analysis.bsp import decompose
from repro.sim.machine import Machine

DATASET = "soc-twitter-2010"
NUM_GPUS = 4


def fresh_machine() -> Machine:
    return Machine(NUM_GPUS, scale=datasets.machine_scale(DATASET))


def main() -> None:
    graph = datasets.load(DATASET)
    print(f"analyzing {DATASET} stand-in: {graph}\n")

    # -- connected components: find the giant component -------------------
    comps, cc_metrics, _ = run_cc(graph, fresh_machine())
    ids, sizes = np.unique(comps, return_counts=True)
    giant = ids[np.argmax(sizes)]
    print(f"[cc]  {ids.size} components; giant component holds "
          f"{sizes.max()}/{graph.num_vertices} vertices "
          f"({cc_metrics.elapsed * 1e3:.2f} ms virtual)")

    # -- pagerank: influencer ranking --------------------------------------
    ranks, pr_metrics, _ = run_pagerank(graph, fresh_machine(), max_iter=50)
    top = np.argsort(-ranks)[:5]
    print(f"[pr]  top-5 influencers: {top.tolist()} "
          f"(ranks {np.round(ranks[top], 3).tolist()}) "
          f"({pr_metrics.elapsed * 1e3:.2f} ms, "
          f"S={pr_metrics.supersteps})")

    # -- bfs: degrees of separation from the top influencer ---------------
    seed = int(top[0])
    levels, bfs_metrics, _ = run_bfs(graph, fresh_machine(), src=seed)
    reached = levels[levels >= 0]
    print(f"[bfs] from vertex {seed}: eccentricity {int(reached.max())}, "
          f"mean separation {reached[reached > 0].mean():.2f} "
          f"({bfs_metrics.elapsed * 1e3:.2f} ms)")

    # -- betweenness: who brokers shortest paths from the seed? -----------
    deps, bc_metrics, _ = run_bc(graph, fresh_machine(), src=seed)
    brokers = np.argsort(-deps)[:5]
    print(f"[bc]  top-5 brokers for source {seed}: {brokers.tolist()} "
          f"({bc_metrics.elapsed * 1e3:.2f} ms)")

    # -- BSP cost breakdown -------------------------------------------------
    print("\nBSP decomposition (fraction of virtual runtime):")
    for name, metrics in [
        ("cc", cc_metrics),
        ("pr", pr_metrics),
        ("bfs", bfs_metrics),
        ("bc", bc_metrics),
    ]:
        f = decompose(metrics).fractions()
        print(f"  {name:4s} compute {f['compute']:.0%}  "
              f"communicate {f['communicate']:.0%}  "
              f"synchronize {f['synchronize']:.0%}")


if __name__ == "__main__":
    main()
