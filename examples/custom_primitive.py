#!/usr/bin/env python
"""Writing a NEW multi-GPU primitive with the framework.

The paper's core claim (Section III): to make a single-GPU algorithm
multi-GPU, a programmer specifies only (1) the per-iteration single-GPU
computation, (2) what data accompanies communicated vertices, (3) the
combiner for received data, and (4) the stop condition — the framework
handles partitioning, splitting, packaging, pushing, and merging.

This example implements a primitive NOT in the paper — *k-core-style
degree peeling* (iteratively remove vertices with degree < k) — and
validates it against a serial reference at several GPU counts.  Peeling
exercises the "data to communicate" design point nicely: when a peeled
vertex has remote neighbors, the *decrement counts* must travel to the
neighbors' hosting GPUs as value associates and be add-combined there —
only the host's degree counter is authoritative (proxy copies are
stale), exactly the local/remote discipline of Section III-B.

Run:  python examples/custom_primitive.py
"""

import numpy as np

from repro import datasets
from repro.core import Enactor, GpuContext, IterationBase, ProblemBase
from repro.core.comm import SELECTIVE
from repro.core.operators.advance import advance_push
from repro.core.stats import OpStats
from repro.partition.duplication import DUPLICATE_ALL
from repro.sim.machine import Machine

K = 32  # peel vertices with degree < K


class PeelProblem(ProblemBase):
    """Per-GPU state: degrees (authoritative for hosted vertices only),
    alive flags, and a per-iteration outgoing-decrement accumulator."""

    name = "kpeel"
    duplication = DUPLICATE_ALL
    communication = SELECTIVE
    NUM_VALUE_ASSOCIATES = 1  # the decrement count travels with each vertex

    def __init__(self, *args, k: int = K, **kwargs):
        self.k = k
        super().__init__(*args, **kwargs)

    def init_data_slice(self, ds, sub):
        ds.allocate("degree", sub.num_vertices, np.float64, fill=0)
        ds.allocate("alive", sub.num_vertices, bool, fill=True)
        ds.allocate("pending", sub.num_vertices, np.float64, fill=0)

    def reset(self):
        frontiers = []
        for gpu, ds in enumerate(self.data_slices):
            sub = self.subgraphs[gpu]
            ds["alive"].fill(True)
            ds["pending"].fill(0)
            # hosted vertices know their true (global) degree locally,
            # because edge-cut partitioning keeps all their out-edges
            ds["degree"][:] = np.diff(sub.csr.row_offsets)
            hosted = np.flatnonzero(sub.host_of_local == gpu)
            frontiers.append(hosted[ds["degree"][hosted] < self.k])
        return frontiers

    def core_mask(self) -> np.ndarray:
        """Global alive mask after peeling (the k-core membership)."""
        return self.extract("alive")


class PeelIteration(IterationBase):
    """Peel doomed hosted vertices; ship decrement counts to the hosts
    of their remote neighbors (add-combine)."""

    def full_queue_core(self, ctx: GpuContext, frontier):
        prob: PeelProblem = self.problem  # type: ignore[assignment]
        ds = ctx.slice
        alive, degree, pending = ds["alive"], ds["degree"], ds["pending"]
        pending.fill(0)
        mine = np.unique(frontier)  # local + received dooms may overlap
        mine = mine[alive[mine]]
        if mine.size == 0:
            return np.empty(0, dtype=np.int64), []
        alive[mine] = False
        nbrs, _src, _e, a_stats = advance_push(
            ctx.sub.csr, mine, ids_bytes=ctx.ids_bytes
        )
        nbrs = nbrs[alive[nbrs]]
        hosted_nb = nbrs[ctx.sub.is_hosted(nbrs)]
        remote_nb = nbrs[~ctx.sub.is_hosted(nbrs)]
        # hosted neighbors: apply decrements directly (authoritative)
        np.subtract.at(degree, hosted_nb, 1.0)
        newly_doomed = np.unique(
            hosted_nb[degree[hosted_nb] < prob.k]
        )
        # remote neighbors: accumulate decrement counts to ship
        np.add.at(pending, remote_nb, 1.0)
        to_send = np.unique(remote_nb)
        stats = OpStats(
            name="peel",
            input_size=int(mine.size),
            output_size=int(newly_doomed.size + to_send.size),
            vertices_processed=int(mine.size),
            launches=1,
            random_bytes=nbrs.size * 16,
            atomic_ops=float(nbrs.size),
        )
        # output frontier: newly doomed hosted vertices stay local; the
        # framework's split routes remote-neighbor entries (with their
        # pending counts) to the hosting GPUs
        out = np.concatenate([newly_doomed, to_send])
        return out, [a_stats, stats]

    def value_associate_arrays(self, ctx: GpuContext):
        return [ctx.slice["pending"]]

    def expand_incoming(self, ctx: GpuContext, msg):
        prob: PeelProblem = self.problem  # type: ignore[assignment]
        ds = ctx.slice
        degree, alive = ds["degree"], ds["alive"]
        verts = np.asarray(msg.vertices, dtype=np.int64)
        decrements = np.asarray(msg.value_associates[0], dtype=np.float64)
        # add-combine: decrements from several GPUs accumulate
        np.subtract.at(degree, verts, decrements)
        doomed = verts[alive[verts] & (degree[verts] < prob.k)]
        stats = OpStats(
            name="expand_incoming",
            input_size=msg.num_items,
            output_size=int(doomed.size),
            vertices_processed=msg.num_items,
            launches=1,
            random_bytes=msg.num_items * 16,
            atomic_ops=float(msg.num_items),
        )
        return doomed, [stats]


def peel_reference(graph, k: int) -> np.ndarray:
    """Serial reference: repeatedly remove degree-<k vertices."""
    alive = np.ones(graph.num_vertices, dtype=bool)
    degree = graph.out_degree().astype(np.int64).copy()
    while True:
        doomed = np.flatnonzero(alive & (degree < k))
        if doomed.size == 0:
            return alive
        alive[doomed] = False
        for v in doomed:
            nbrs = graph.neighbors(v)
            degree[nbrs[alive[nbrs]]] -= 1


def main() -> None:
    graph = datasets.load("soc-orkut")
    ref = peel_reference(graph, K)
    print(f"{K}-core of {graph}: {int(ref.sum())} vertices survive\n")

    for num_gpus in (1, 2, 4):
        machine = Machine(num_gpus,
                          scale=datasets.machine_scale("soc-orkut"))
        prob = PeelProblem(graph, machine, k=K)
        metrics = Enactor(prob, PeelIteration).enact()
        ok = np.array_equal(prob.core_mask(), ref)
        print(f"{num_gpus} GPU: correct={ok}  "
              f"{metrics.elapsed * 1e3:.2f} ms virtual, "
              f"S={metrics.supersteps}, H={metrics.total_items_sent}")
        assert ok


if __name__ == "__main__":
    main()
