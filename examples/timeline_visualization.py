#!/usr/bin/env python
"""Visualizing the BSP execution: virtual-time Gantt timelines.

Renders per-stream activity for a 3-GPU DOBFS run twice — with the
strict BSP barrier and with Gunrock's compute/communication overlap
(Section III-B) — so you can *see* the broadcast transfers sliding under
the next iteration's computation, and read off each GPU's busy fraction.

Run:  python examples/timeline_visualization.py
"""

from repro import datasets
from repro.analysis.timeline import busy_fraction, enable_timeline, render_timeline
from repro.core.enactor import Enactor
from repro.primitives.dobfs import DOBFSIteration, DOBFSProblem
from repro.sim.machine import Machine

DATASET = "rmat_n21_256"


def run(overlap: bool) -> None:
    machine = Machine(3, scale=datasets.machine_scale(DATASET))
    enable_timeline(machine)
    problem = DOBFSProblem(datasets.load(DATASET), machine)
    metrics = Enactor(
        problem, DOBFSIteration, overlap_communication=overlap
    ).enact(src=1)
    mode = "overlap" if overlap else "strict barrier"
    print(f"--- DOBFS on {DATASET}, 3 GPUs, {mode}: "
          f"{metrics.elapsed * 1e3:.3f} ms ---")
    print(render_timeline(machine, width=96))
    fracs = busy_fraction(machine)
    comm = busy_fraction(machine, "comm")
    print("busy fractions: " + "  ".join(
        f"gpu{g}: compute {fracs[g]:.0%} / comm {comm[g]:.0%}"
        for g in sorted(fracs)
    ))
    print()


def main() -> None:
    run(overlap=False)
    run(overlap=True)
    print("Legend: '#' busy most of the column, '+' partially, '.' idle.\n"
          "With overlap the comm rows extend under the next compute burst\n"
          "instead of serializing before the barrier.")


if __name__ == "__main__":
    main()
