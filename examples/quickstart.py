#!/usr/bin/env python
"""Quickstart: BFS on a multi-GPU virtual node in ~20 lines.

Loads the soc-orkut stand-in dataset, builds a 4x Tesla K40 virtual
machine at the matching workload scale, runs multi-GPU BFS from vertex 0,
and prints the timing/BSP summary — the "hello world" of the framework.

Run:  python examples/quickstart.py
"""

from repro import datasets, run_bfs
from repro.analysis.gteps import traversal_gteps
from repro.sim.machine import Machine


def main() -> None:
    # 1. a graph: any CsrGraph works; here a paper-dataset stand-in
    graph = datasets.load("soc-orkut")
    print(f"graph: {graph}")

    # 2. a machine: 4 K40 GPUs, scale matched to the dataset (DESIGN.md)
    machine = Machine(num_gpus=4, scale=datasets.machine_scale("soc-orkut"))
    print(f"machine: {machine.describe()}")

    # 3. run the primitive
    labels, metrics, _problem = run_bfs(graph, machine, src=0)

    # 4. inspect results + metrics
    reached = int((labels >= 0).sum())
    print(f"\nBFS from 0 reached {reached}/{graph.num_vertices} vertices "
          f"in {int(labels.max())} levels")
    print(metrics.summary())
    print(f"traversal rate: {traversal_gteps(graph, labels, metrics):.1f} GTEPS")
    print("\nper-iteration frontier sizes:",
          [r.frontier_size for r in metrics.iterations])


if __name__ == "__main__":
    main()
