#!/usr/bin/env python
"""Scaling study: reproduce the paper's headline scalability story.

Sweeps BFS, DOBFS, and PageRank over 1-6 virtual K40 GPUs on one rmat
and one web graph, printing runtime, speedup, GTEPS, and the BSP
decomposition — showing with live numbers *why* DOBFS stays flat
(communication-bound broadcast) while BFS/PR scale (computation-bound).

Run:  python examples/scaling_study.py
"""

from repro import datasets, run_bfs, run_dobfs, run_pagerank
from repro.analysis.bsp import decompose
from repro.analysis.gteps import traversal_gteps
from repro.analysis.reporting import render_table
from repro.sim.machine import Machine

GPU_COUNTS = (1, 2, 3, 4, 5, 6)


def sweep(prim_name, runner, dataset, **kwargs):
    graph = datasets.load(dataset)
    scale = datasets.machine_scale(dataset)
    rows = []
    base = None
    for n in GPU_COUNTS:
        machine = Machine(n, scale=scale)
        result, metrics, _ = runner(graph, machine, **kwargs)
        if base is None:
            base = metrics.elapsed
        terms = decompose(metrics).fractions()
        gteps = (
            traversal_gteps(graph, result, metrics)
            if prim_name in ("bfs", "dobfs")
            else graph.num_edges * metrics.supersteps * scale
            / metrics.elapsed / 1e9
        )
        rows.append(
            [
                n,
                f"{metrics.elapsed * 1e3:.2f}",
                f"{base / metrics.elapsed:.2f}x",
                f"{gteps:.1f}",
                f"{terms['compute']:.0%}",
                f"{terms['communicate']:.0%}",
                f"{terms['synchronize']:.0%}",
            ]
        )
    print(
        render_table(
            ["GPUs", "ms", "speedup", "GTEPS", "compute", "comm", "sync"],
            rows,
            title=f"{prim_name} on {dataset}",
        )
    )
    print()


def main() -> None:
    for dataset in ("rmat_n22_128", "uk-2002"):
        sweep("bfs", run_bfs, dataset, src=1)
        sweep("dobfs", run_dobfs, dataset, src=1)
        sweep("pr", run_pagerank, dataset, max_iter=30)
    print(
        "Note how DOBFS's 'comm' fraction explodes with GPU count while\n"
        "BFS/PR stay compute-dominated — the paper's Section V/VI-A story."
    )


if __name__ == "__main__":
    main()
