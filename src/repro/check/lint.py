"""The static lint pass: walk files, run rules, honor inline waivers.

Waiver syntax (used sparingly, with a reason on the same line)::

    labels[v] = x  # repro-check: disable=hot-loop -- fixpoint, not O(|E|)

A waiver names one or more rules (by name or ID, comma-separated) and
suppresses their findings on its own line; a comment-only waiver line
suppresses them on the following line instead.  ``disable=all`` waives
every rule at that location.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding
from .rules import Rule, default_rules
from .rules.base import ModuleContext

__all__ = ["lint_paths", "lint_source", "iter_python_files"]

_WAIVER_RE = re.compile(
    r"#\s*repro-check:\s*disable=([A-Za-z0-9_,\- ]+)"
)


def _collect_waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of waived rule names/IDs."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _WAIVER_RE.search(line)
        if not m:
            continue
        # everything after " -- " is the human reason, not a rule name
        names = m.group(1).split("--", 1)[0]
        rules = {
            r.strip() for r in names.split(",") if r.strip()
        }
        target = lineno
        if line.strip().startswith("#"):
            target = lineno + 1  # comment-only waiver covers the next line
        waivers.setdefault(target, set()).update(rules)
    return waivers


def _waived(finding: Finding, waivers: Dict[int, Set[str]]) -> bool:
    names = waivers.get(finding.line)
    if not names:
        return False
    return bool(
        {"all", finding.rule, finding.rule_id} & names
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string; returns unwaived findings sorted by line."""
    rules = list(rules) if rules is not None else default_rules()
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="REP000",
                rule="parse-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    waivers = _collect_waivers(source)
    findings: List[Finding] = []
    for rule in rules:
        for f in rule.check(ctx):
            if not _waived(f, waivers):
                findings.append(f)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(
                f for f in sorted(path.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(
                f"{p}: not a Python file or directory"
            )
    return out


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given paths.

    Findings come back sorted by (path, line, col, rule) so repeated
    runs — and ``--json`` diffs in CI — are byte-stable regardless of
    filesystem walk order.
    """
    findings: List[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(
            lint_source(f.read_text(encoding="utf-8"), str(f), rules)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
