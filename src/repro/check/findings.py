"""Finding: one linter or sanitizer result, renderable as text or JSON.

Both engines of ``repro check`` — the static lint pass and the dynamic
BSP race sanitizer — report through this shape so CI can consume one
machine-readable stream (``python -m repro check --json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["Finding", "render_findings", "findings_to_json"]


@dataclass
class Finding:
    """One rule violation at a source location.

    ``rule_id`` is the stable machine identifier (``REP103``), ``rule``
    the human mnemonic (``bare-dtype``); waivers accept either.
    """

    rule_id: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    #: free-form extra context (offending symbol, suggested fix, ...)
    extra: Dict[str, str] = field(default_factory=dict)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        d = {
            "rule_id": self.rule_id,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }
        if self.extra:
            d["extra"] = dict(self.extra)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            rule_id=d["rule_id"],
            rule=d["rule"],
            path=d["path"],
            line=int(d["line"]),
            col=int(d["col"]),
            message=d["message"],
            severity=d.get("severity", "error"),
            extra=dict(d.get("extra", {})),
        )

    def render(self) -> str:
        return (
            f"{self.location()}: {self.severity}: "
            f"{self.rule_id} ({self.rule}): {self.message}"
        )


def render_findings(findings: Iterable[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    findings = list(findings)
    lines = [f.render() for f in findings]
    n = len(findings)
    lines.append(
        "repro check: clean" if n == 0
        else f"repro check: {n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report for CI (stable schema, version tag)."""
    findings = list(findings)
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    doc = {
        "version": 1,
        "tool": "repro-check",
        "count": len(findings),
        "by_rule": by_rule,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
