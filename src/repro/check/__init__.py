"""``repro.check`` — framework-contract linter and BSP race sanitizer.

Two engines behind one CLI (``python -m repro check``):

* a static, AST-based lint pass (:mod:`repro.check.lint`) with pluggable
  rules (:mod:`repro.check.rules`) that verify the framework contract a
  primitive must honor — required iteration hooks, declared combiners,
  IdConfig dtype discipline, vectorized hot paths, pool-charged
  allocations, and no peer-state mutation;
* a dynamic BSP race sanitizer (:mod:`repro.check.sanitizer`) that wraps
  per-GPU slice arrays in shadow memory and flags mid-superstep peer
  access and non-combinable write-write races at each barrier
  (``Enactor(..., sanitize=True)`` / ``repro run --sanitize``).

See ``docs/static_analysis.md`` for the rule catalogue and how to add a
rule.
"""

from .findings import Finding, findings_to_json, render_findings
from .lint import iter_python_files, lint_paths, lint_source
from .rules import DEFAULT_RULES, Rule, default_rules, rule_index
from .sanitizer import BspSanitizer, Hazard, ShadowArray

__all__ = [
    "Finding",
    "findings_to_json",
    "render_findings",
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "Rule",
    "DEFAULT_RULES",
    "default_rules",
    "rule_index",
    "BspSanitizer",
    "Hazard",
    "ShadowArray",
]
