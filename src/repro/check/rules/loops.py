"""REP104 ``hot-loop``: no Python-level per-element iteration in hot paths.

Correctness-bearing computation runs in NumPy precisely because a
vectorized statement is this reproduction's stand-in for a GPU kernel
(DESIGN.md).  A Python-level ``for`` over frontier/edge elements inside
``full_queue_core``/``expand_incoming`` is the simulated equivalent of
single-threaded device code: it bypasses the kernel cost model and is
orders of magnitude slower.  The same applies to iteration dressed up as
an expression — generator/list/set/dict comprehensions and ``map`` /
``filter`` calls still execute a Python-level loop over every element.
Fixpoint ``while`` loops (pass counters, pointer-jumping rounds) are
iteration counts, not per-element work, and are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import CONTROL_HOOKS, ModuleContext, Rule

__all__ = ["HotLoopRule"]

#: builtins whose call is a hidden Python-level element loop
_LOOPING_BUILTINS = {"map", "filter"}

_COMPREHENSIONS = (
    ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp,
)


class HotLoopRule(Rule):
    """Flag per-element Python iteration inside iteration-class methods
    that run within the superstep (everything except the control-plane
    hooks): ``for`` statements, comprehensions/generator expressions,
    and ``map``/``filter`` calls."""

    rule_id = "REP104"
    name = "hot-loop"
    description = (
        "Python-level per-element iteration (for-loops, comprehensions, "
        "map/filter) is forbidden in operator hot paths; vectorize with "
        "numpy"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.iteration_classes:
            for method in ctx.methods(cls):
                if method.name in CONTROL_HOOKS:
                    continue
                for node in ast.walk(method):
                    if isinstance(node, ast.For):
                        yield self.finding(
                            ctx, node,
                            f"Python for-loop inside hot path "
                            f"{cls.name}.{method.name}; per-element work "
                            "must be a vectorized numpy operation (the "
                            "simulated kernel)",
                            cls=cls.name, method=method.name,
                        )
                    elif isinstance(node, _COMPREHENSIONS):
                        kind = (
                            "generator expression"
                            if isinstance(node, ast.GeneratorExp)
                            else "comprehension"
                        )
                        yield self.finding(
                            ctx, node,
                            f"{kind} inside hot path "
                            f"{cls.name}.{method.name}: it is still a "
                            "Python-level loop over every element; "
                            "vectorize with numpy",
                            cls=cls.name, method=method.name,
                        )
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in _LOOPING_BUILTINS
                    ):
                        yield self.finding(
                            ctx, node,
                            f"'{node.func.id}(...)' inside hot path "
                            f"{cls.name}.{method.name}: map/filter run a "
                            "Python-level loop (and call a Python "
                            "function) per element; vectorize with numpy",
                            cls=cls.name, method=method.name,
                        )
