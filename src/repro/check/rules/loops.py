"""REP104 ``hot-loop``: no Python for-loops in operator hot paths.

Correctness-bearing computation runs in NumPy precisely because a
vectorized statement is this reproduction's stand-in for a GPU kernel
(DESIGN.md).  A Python-level ``for`` over frontier/edge elements inside
``full_queue_core``/``expand_incoming`` is the simulated equivalent of
single-threaded device code: it bypasses the kernel cost model and is
orders of magnitude slower.  Fixpoint ``while`` loops (pass counters,
pointer-jumping rounds) are iteration counts, not per-element work, and
are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import CONTROL_HOOKS, ModuleContext, Rule

__all__ = ["HotLoopRule"]


class HotLoopRule(Rule):
    """Flag ``for`` statements inside iteration-class methods that run
    within the superstep (everything except the control-plane hooks)."""

    rule_id = "REP104"
    name = "hot-loop"
    description = (
        "Python for-loops are forbidden in operator hot paths; "
        "vectorize with numpy"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.iteration_classes:
            for method in ctx.methods(cls):
                if method.name in CONTROL_HOOKS:
                    continue
                for node in ast.walk(method):
                    if isinstance(node, ast.For):
                        yield self.finding(
                            ctx, node,
                            f"Python for-loop inside hot path "
                            f"{cls.name}.{method.name}; per-element work "
                            "must be a vectorized numpy operation (the "
                            "simulated kernel)",
                            cls=cls.name, method=method.name,
                        )
