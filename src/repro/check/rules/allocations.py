"""REP105 ``raw-alloc``: device arrays must go through the memory pool.

The allocation-scheme experiments (Fig. 3) only mean something if every
device-resident array is charged to the per-GPU
:class:`~repro.sim.memory.MemoryPool`.  Persistent slice arrays must use
``DataSlice.allocate`` (which charges the pool); O(|V|)-sized scratch
created with raw ``np.empty``/``np.zeros`` inside iteration code is
untracked device memory the peak-memory metrics never see.  The
zero-length empty-frontier sentinel (``np.empty(0, ...)``) is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import CONTROL_HOOKS, ModuleContext, Rule

__all__ = ["RawAllocationRule"]

ALLOC_FUNCS = {"empty", "zeros", "ones", "full", "empty_like", "zeros_like",
               "ones_like", "full_like"}


def _is_raw_alloc(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ALLOC_FUNCS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in ("np", "numpy")
    ):
        return node.func.attr
    return ""


def _is_zero_size(call: ast.Call) -> bool:
    if not call.args:
        return False
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value == 0


class RawAllocationRule(Rule):
    """Flag raw numpy allocations in ``init_data_slice`` (must be
    ``ds.allocate``) and non-sentinel allocations in hot-path methods."""

    rule_id = "REP105"
    name = "raw-alloc"
    description = (
        "array allocations in slice-init and iteration hot paths must be "
        "charged to the device memory pool"
    )

    def _scan(self, ctx, cls, method, where) -> Iterator[Finding]:
        for node in ast.walk(method):
            fname = _is_raw_alloc(node)
            if not fname:
                continue
            if where == "hot" and _is_zero_size(node):
                continue  # the empty-frontier sentinel allocates nothing
            if where == "init":
                msg = (
                    f"np.{fname} in {cls.name}.{method.name}; persistent "
                    "slice arrays must be created with ds.allocate so the "
                    "device memory pool is charged"
                )
            else:
                msg = (
                    f"np.{fname} in hot path {cls.name}.{method.name} "
                    "allocates untracked device memory; preallocate it in "
                    "init_data_slice via ds.allocate"
                )
            yield self.finding(
                ctx, node, msg, cls=cls.name, method=method.name,
            )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.problem_classes:
            init = ctx.find_method(cls, "init_data_slice")
            if init is not None:
                yield from self._scan(ctx, cls, init, "init")
        for cls in ctx.iteration_classes:
            for method in ctx.methods(cls):
                if method.name in CONTROL_HOOKS:
                    continue
                yield from self._scan(ctx, cls, method, "hot")
