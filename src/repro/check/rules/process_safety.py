"""REP115 ``process-unsafe-state``: hot hooks must survive a fork.

The ``processes`` execution backend runs every hot hook inside a forked
worker and ships only ``GpuStepEffects`` (plus the declared per-GPU
attrs) back to the parent.  That contract breaks when a hook creates or
captures *process-local* state:

* **open file handles** — a handle created in a worker vanishes with it,
  and a handle captured before the fork shares one file offset across
  all workers (interleaved reads/writes, nondeterministic results);
* **locks / conditions / semaphores** — a ``threading`` primitive only
  synchronizes threads of one process; across forked workers it is a
  silent no-op, and a held lock duplicated by ``fork`` can deadlock;
* **RNG instances** (``random.Random``, ``np.random.RandomState``,
  ``np.random.default_rng``) — each worker advances its own copy of the
  captured state, so results depend on which process ran the hook and
  the serial/threads/processes bit-identical guarantee is gone.

The rule flags (a) calls to such constructors (and ``open``) directly
inside a hot hook, and (b) hot-hook reads of a ``self.X`` attribute that
*any* method of the class assigns from one of them — the capture case.
Deterministic derived state (arrays, scalars) is what hooks may keep;
randomness belongs in graph generation, and synchronization belongs to
the enactor's barrier.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..findings import Finding
from .base import HOT_HOOKS, ModuleContext, Rule

__all__ = ["ProcessUnsafeStateRule"]

#: module-attribute constructors of process-local state:
#: {module alias: {attribute names}}
_UNSAFE_ATTRS = {
    "threading": {
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier", "local",
    },
    "multiprocessing": {
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier", "Queue", "Pipe",
    },
    "random": {"Random", "SystemRandom"},
    # both ``np.random.X`` and ``numpy.random.X`` resolve to attr
    # "random" one level up; handled in _unsafe_call
}

#: bare-name constructors (``from threading import Lock`` style).
#: ``Event`` is deliberately absent: the name is too generic outside an
#: explicit ``threading.``/``multiprocessing.`` prefix.
_UNSAFE_NAMES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Random", "SystemRandom", "RandomState", "default_rng",
}

_NUMPY_RANDOM = {"RandomState", "default_rng", "Generator"}


def _unsafe_call(node: ast.Call) -> Optional[str]:
    """A human-readable constructor name if ``node`` creates
    process-unsafe state, else None."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        if func.id in _UNSAFE_NAMES:
            return f"{func.id}()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    base = func.value
    if isinstance(base, ast.Name):
        if attr in _UNSAFE_ATTRS.get(base.id, ()):
            return f"{base.id}.{attr}()"
        return None
    # np.random.RandomState / numpy.random.default_rng
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and attr in _NUMPY_RANDOM
    ):
        return f"np.random.{attr}()"
    return None


def _self_attr_stores(
    cls: ast.ClassDef,
) -> Dict[str, Tuple[ast.AST, str]]:
    """``self.X = <unsafe constructor>`` assignments anywhere in the
    class: attr name -> (assignment node, constructor description)."""
    captured: Dict[str, Tuple[ast.AST, str]] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        desc = _unsafe_call(node.value)
        if desc is None:
            continue
        for t in node.targets:
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                captured[t.attr] = (node, desc)
    return captured


class ProcessUnsafeStateRule(Rule):
    """Flag hot hooks that create, or read ``self`` attributes assigned
    from, process-local constructs (files, locks, RNG instances)."""

    rule_id = "REP115"
    name = "process-unsafe-state"
    description = (
        "hot hooks run inside forked workers of the processes backend "
        "and must not create or capture process-local state (open file "
        "handles, threading/multiprocessing primitives, Random/"
        "RandomState instances)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.iteration_classes + ctx.problem_classes:
            captured = _self_attr_stores(cls)
            for method in ctx.methods(cls):
                if method.name not in HOT_HOOKS:
                    continue
                for node in ast.walk(method):
                    if isinstance(node, ast.Call):
                        desc = _unsafe_call(node)
                        if desc is not None:
                            yield self.finding(
                                ctx, node,
                                f"{cls.name}.{method.name} creates "
                                f"process-unsafe state ({desc}) inside a "
                                "hot hook; forked workers each get their "
                                "own copy and the backend bit-identical "
                                "contract breaks",
                                cls=cls.name, method=method.name,
                                construct=desc,
                            )
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and node.attr in captured
                    ):
                        _, desc = captured[node.attr]
                        yield self.finding(
                            ctx, node,
                            f"{cls.name}.{method.name} uses self."
                            f"{node.attr}, assigned from {desc} — "
                            "process-local state captured across the "
                            "fork; workers mutate diverging copies the "
                            "parent never sees",
                            cls=cls.name, method=method.name,
                            attr=node.attr, construct=desc,
                        )
