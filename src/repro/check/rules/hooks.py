"""REP101 ``iteration-hooks``: operator hooks exist with the right shape.

The enactor calls the :class:`IterationBase` hooks positionally; a
primitive that misses ``full_queue_core`` or overrides a hook with the
wrong arity fails at runtime deep inside the BSP loop.  This rule moves
that failure to lint time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["IterationHooksRule"]

#: hook name -> number of parameters after ``self``
HOOK_ARITY = {
    "full_queue_core": 2,  # (ctx, frontier)
    "expand_incoming": 2,  # (ctx, msg)
    "vertex_associate_arrays": 1,  # (ctx)
    "value_associate_arrays": 1,  # (ctx)
    "communicates_this_iteration": 1,  # (iteration)
    "should_stop": 3,  # (iteration, frontier_sizes, messages_in_flight)
    "max_iterations": 0,
    "on_iteration_end": 1,  # (iteration)
    "direction_of": 1,  # (gpu)
}


class IterationHooksRule(Rule):
    """Direct ``IterationBase`` subclasses must implement the required
    hooks, and every overridden hook must keep the base signature."""

    rule_id = "REP101"
    name = "iteration-hooks"
    description = (
        "IterationBase subclasses must define full_queue_core and keep "
        "the framework hook signatures"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.iteration_classes:
            direct = any(
                isinstance(b, ast.Name) and b.id == "IterationBase"
                for b in cls.bases
            ) or any(
                isinstance(b, ast.Attribute) and b.attr == "IterationBase"
                for b in cls.bases
            )
            if direct and ctx.find_method(cls, "full_queue_core") is None:
                yield self.finding(
                    ctx, cls,
                    f"{cls.name} subclasses IterationBase but does not "
                    "implement the required full_queue_core(ctx, frontier) "
                    "hook",
                    cls=cls.name,
                )
            for method in ctx.methods(cls):
                expected = HOOK_ARITY.get(method.name)
                if expected is None:
                    continue
                args = method.args
                if args.vararg is not None or args.kwarg is not None:
                    continue  # forwarding wrappers are fine
                n = len(args.posonlyargs) + len(args.args) - 1  # minus self
                if n != expected:
                    yield self.finding(
                        ctx, method,
                        f"{cls.name}.{method.name} takes {n} argument(s) "
                        f"after self but the framework calls it with "
                        f"{expected}; the enactor invokes hooks "
                        "positionally",
                        cls=cls.name, hook=method.name,
                    )
