"""REP107 ``workspace-bypass``: use the arena when one is in scope.

The zero-copy operator work (``repro.core.workspace``) only pays off if
hot paths actually route scratch through the per-GPU arena.  A function
that *accepts* a workspace (a parameter named ``ws`` or ``workspace``)
but still allocates fresh scratch with ``np.empty``/``np.zeros``/
``np.arange``/... on its main path silently regresses to the
allocation-churn baseline — the exact drift this rule pins down.

Allocations are fine when they sit in the no-workspace fallback branch
(inside ``if ws is None:``, or the ``else`` of ``if ws is not None:``),
and the zero-length empty-frontier sentinel (``np.empty(0, ...)``) is
exempt as always.  Results that must outlive the call (message payloads,
frontiers) should be built with non-alloc constructors (``np.repeat``,
boolean indexing, ``np.unique``) which this rule deliberately ignores.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..findings import Finding
from .allocations import ALLOC_FUNCS, _is_zero_size
from .base import ModuleContext, Rule

__all__ = ["WorkspaceBypassRule"]

#: parameter names that mark a function as workspace-aware
WS_PARAM_NAMES = {"ws", "workspace"}

#: flagged allocators: REP105's set plus arange (the iota() case)
SCRATCH_FUNCS = ALLOC_FUNCS | {"arange"}


def _param_names(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = [a.arg for a in args.args + args.posonlyargs + args.kwonlyargs]
    return set(names)


def _ws_name(fn: ast.FunctionDef) -> str:
    for name in _param_names(fn):
        if name in WS_PARAM_NAMES:
            return name
    return ""


def _is_ws_none_test(test: ast.AST, ws: str) -> str:
    """Classify ``if`` tests on the workspace: 'is-none', 'is-not-none',
    or '' for anything else."""
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == ws
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return "is-none"
        if isinstance(test.ops[0], ast.IsNot):
            return "is-not-none"
    return ""


def _fallback_nodes(fn: ast.FunctionDef, ws: str) -> Set[int]:
    """ids of AST nodes inside no-workspace fallback regions."""
    allowed: Set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        kind = _is_ws_none_test(node.test, ws)
        region: List[ast.stmt] = []
        if kind == "is-none":
            region = node.body
        elif kind == "is-not-none":
            region = node.orelse
        for stmt in region:
            for sub in ast.walk(stmt):
                allowed.add(id(sub))
    return allowed


def _alloc_name(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SCRATCH_FUNCS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in ("np", "numpy")
    ):
        return node.func.attr
    return ""


class WorkspaceBypassRule(Rule):
    """Flag fresh scratch allocation on the workspace-available path of
    any function that takes a ``ws``/``workspace`` parameter."""

    rule_id = "REP107"
    name = "workspace-bypass"
    description = (
        "functions taking a workspace must route scratch through "
        "ws.take()/ws.iota() outside the `if ws is None` fallback"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ws = _ws_name(node)
            if not ws:
                continue
            allowed = _fallback_nodes(node, ws)
            for sub in ast.walk(node):
                fname = _alloc_name(sub)
                if not fname:
                    continue
                if id(sub) in allowed:
                    continue
                if _is_zero_size(sub):
                    continue  # the empty-frontier sentinel
                yield self.finding(
                    ctx,
                    sub,
                    f"np.{fname} in {node.name} allocates fresh scratch "
                    f"although workspace `{ws}` is in scope; use "
                    f"{ws}.take()/{ws}.iota(), or move it under the "
                    f"`if {ws} is None` fallback",
                    function=node.name,
                )
