"""REP109 ``unguarded-tracer``: obs hooks must keep the None fast-path.

The observability layer (``repro.obs``) is opt-in: every instrumented
object carries a plain ``tracer`` attribute that is ``None`` in the
common case, and every hook site must be wrapped in a single
``if tracer is None`` / ``is not None`` check — the same zero-overhead
discipline ``sim/faults.py`` established for fault hooks.  A call like
``self.tracer.instant(...)`` without that guard either crashes the
untraced hot path (``AttributeError: 'NoneType'``) or, worse, tempts the
author into a try/except that hides the cost.  This rule finds method
calls on maybe-``None`` tracer expressions that no ``is None`` guard
dominates.

Maybe-``None`` tracer expressions are: any attribute named ``tracer``
(``self.tracer``, ``ctx.tracer``, ...), a local alias assigned from one
(``tracer = self.tracer``), and a parameter named ``tracer``/``_tracer``
whose default is ``None``.  Names bound by a constructor call
(``tracer = Tracer()``) and parameters without a ``None`` default are
known non-``None`` and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["UnguardedTracerRule"]

_TRACER_NAMES = {"tracer", "_tracer"}
_TERMINAL = (ast.Return, ast.Continue, ast.Break, ast.Raise)


def _expr_key(node: ast.AST) -> Optional[str]:
    """Dotted-name key for Name/Attribute chains (``self.tracer``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _tracer_key(node: ast.AST, maybe: Set[str]) -> Optional[str]:
    """Key of ``node`` if it is a maybe-None tracer expression."""
    if isinstance(node, ast.Name) and node.id in maybe:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _TRACER_NAMES:
        return _expr_key(node)
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _pos_guard(test: ast.AST, maybe: Set[str]) -> Optional[str]:
    """Key guarded by ``test`` when the test is true (``E is not None``)."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return _pos_guard(test.values[0], maybe)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and _is_none(test.comparators[0])
    ):
        return _tracer_key(test.left, maybe)
    return None


def _neg_guard(test: ast.AST, maybe: Set[str]) -> Optional[str]:
    """Key guarded by ``test`` being false (``E is None``)."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and _is_none(test.comparators[0])
    ):
        return _tracer_key(test.left, maybe)
    return None


def _scope_stmts(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's nodes without descending into nested scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _maybe_none_names(
    body: List[ast.stmt], fn: Optional[ast.AST] = None
) -> Set[str]:
    """Names in this scope that may hold a ``None`` tracer."""
    maybe: Set[str] = set()
    known: Set[str] = set()
    if fn is not None:
        args = fn.args
        pos = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        for a, d in zip(pos[len(pos) - len(defaults):], defaults):
            if a.arg in _TRACER_NAMES:
                (maybe if _is_none(d) else known).add(a.arg)
        for a, d in zip(args.kwonlyargs, args.kw_defaults):
            if a.arg in _TRACER_NAMES and d is not None:
                (maybe if _is_none(d) else known).add(a.arg)
        # a tracer parameter with no default is required, hence non-None
        known.update(
            a.arg
            for a in pos[: len(pos) - len(defaults)]
            if a.arg in _TRACER_NAMES
        )
    for node in _scope_stmts(body):
        if not isinstance(node, ast.Assign):
            continue
        names = {t.id for t in node.targets if isinstance(t, ast.Name)}
        if not names:
            continue
        if isinstance(node.value, ast.Attribute) and node.value.attr in _TRACER_NAMES:
            maybe.update(names)
        elif isinstance(node.value, ast.Call):
            known.update(names)
    return maybe - known


class UnguardedTracerRule(Rule):
    """Flag tracer hook calls outside an ``is None`` fast-path guard."""

    rule_id = "REP109"
    name = "unguarded-tracer"
    description = (
        "calls on a maybe-None tracer (obs hook sites) must sit inside an "
        "`if tracer is not None` guard — the zero-overhead fast-path "
        "discipline of the observability layer"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: List[Tuple[List[ast.stmt], Optional[ast.AST]]] = [
            (ctx.tree.body, None)
        ]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node.body, node))
        for body, fn in scopes:
            maybe = _maybe_none_names(body, fn)
            hits: List[Tuple[ast.Call, str]] = []
            self._scan_block(body, frozenset(), maybe, hits)
            for call, key in hits:
                yield self.finding(
                    ctx, call,
                    f"call on maybe-None tracer `{key}` is not guarded by "
                    f"`if {key} is not None` — untraced runs would crash "
                    "here, and the disabled fast-path must stay one "
                    "None-check",
                    tracer=key,
                )

    # -- recursive scan ----------------------------------------------------
    def _scan_block(self, stmts, guarded, maybe, hits) -> None:
        guarded = set(guarded)
        for st in stmts:
            if isinstance(st, ast.If):
                self._scan_node(st.test, guarded, maybe, hits)
                pos = _pos_guard(st.test, maybe)
                neg = _neg_guard(st.test, maybe)
                self._scan_block(
                    st.body, guarded | ({pos} if pos else set()), maybe, hits
                )
                self._scan_block(
                    st.orelse, guarded | ({neg} if neg else set()), maybe, hits
                )
                # early exit: `if tracer is None: return` guards the rest
                if (
                    neg
                    and not st.orelse
                    and st.body
                    and isinstance(st.body[-1], _TERMINAL)
                ):
                    guarded.add(neg)
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are checked independently
            else:
                self._scan_node(st, guarded, maybe, hits)

    def _scan_node(self, node, guarded, maybe, hits) -> None:
        if node is None:
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.IfExp):
            self._scan_node(node.test, guarded, maybe, hits)
            pos = _pos_guard(node.test, maybe)
            neg = _neg_guard(node.test, maybe)
            self._scan_node(
                node.body, set(guarded) | ({pos} if pos else set()), maybe, hits
            )
            self._scan_node(
                node.orelse, set(guarded) | ({neg} if neg else set()), maybe, hits
            )
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            g = set(guarded)
            for v in node.values:
                self._scan_node(v, g, maybe, hits)
                pos = _pos_guard(v, maybe)
                if pos:
                    g.add(pos)
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            key = _tracer_key(node.func.value, maybe)
            if key is not None and key not in guarded:
                hits.append((node, key))
        for field in node._fields:
            value = getattr(node, field, None)
            if isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._scan_block(value, guarded, maybe, hits)
                else:
                    for item in value:
                        if isinstance(item, ast.AST):
                            self._scan_node(item, guarded, maybe, hits)
            elif isinstance(value, ast.AST):
                self._scan_node(value, guarded, maybe, hits)
