"""REP103 ``bare-dtype``: per-vertex arrays must use IdConfig dtypes.

The whole library is parameterized on :class:`repro.types.IdConfig`
(Table V: 64-bit IDs double the bytes moved and halve throughput).  A
primitive that hard-codes ``np.int64``/``np.float64`` in its slice
allocations silently opts out of that parameterization — its arrays stop
shrinking when the graph is built with 32-bit IDs, and the cost model's
byte accounting diverges from the data actually allocated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["BareDtypeRule"]

#: concrete numpy scalar types that should come from an IdConfig instead
BARE_DTYPES = {
    "int8", "int16", "int32", "int64", "intp", "int_", "longlong",
    "uint8", "uint16", "uint32", "uint64", "uintp",
    "float16", "float32", "float64", "single", "double",
}


def _bare_dtype_name(node: ast.AST) -> str:
    """``np.int64``-style attribute -> ``int64``; anything else -> ''."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in BARE_DTYPES
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return node.attr
    return ""


class BareDtypeRule(Rule):
    """``DataSlice.allocate`` calls in primitive modules must take their
    dtype from the graph's IdConfig (``sub.csr.ids.vertex_dtype`` /
    ``value_dtype``), not a bare numpy scalar type."""

    rule_id = "REP103"
    name = "bare-dtype"
    description = (
        "slice allocations must use IdConfig dtypes, not bare np.int64/"
        "np.float64 literals"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_primitive_module:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "allocate"
            ):
                continue
            candidates = list(node.args[2:3]) + [
                kw.value for kw in node.keywords if kw.arg == "dtype"
            ]
            for arg in candidates:
                name = _bare_dtype_name(arg)
                if name:
                    yield self.finding(
                        ctx, arg,
                        f"slice array allocated with bare np.{name}; use "
                        "the graph's IdConfig dtypes "
                        "(sub.csr.ids.vertex_dtype for IDs/labels, "
                        ".value_dtype for per-vertex values) so the "
                        "primitive follows the Table V ID-width "
                        "parameterization",
                        dtype=name,
                    )
