"""REP102 ``undeclared-combiner``: communicated values must declare merge.

Section III-B: the programmer specifies the data to communicate *and*
how the receiver combines it.  A primitive that registers value
associates (``NUM_VALUE_ASSOCIATES > 0``) without declaring combiners in
``ProblemBase.combiners`` leaves the superstep-boundary merge semantics
unspecified — exactly the silent-race class the BSP sanitizer exists to
catch at runtime; this rule catches the missing declaration statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["UndeclaredCombinerRule"]


def _positive_int_assign(node: ast.AST, name: str) -> Optional[int]:
    """Return the value if ``node`` assigns a positive int constant to
    ``name`` (class-level or ``self.``-qualified), else None."""
    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
        return None
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    matched = False
    for t in targets:
        if isinstance(t, ast.Name) and t.id == name:
            matched = True
        if (
            isinstance(t, ast.Attribute)
            and t.attr == name
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ):
            matched = True
    if not matched:
        return None
    value = node.value
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return value.value if value.value > 0 else None
    return None  # dynamic expression: statically undecidable, skip


def _allocated_names(ctx: ModuleContext, cls: ast.ClassDef) -> List[str]:
    """String literals passed as the first argument of ``.allocate`` calls
    inside ``init_data_slice``."""
    init = ctx.find_method(cls, "init_data_slice")
    names: List[str] = []
    if init is None:
        return names
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "allocate"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.append(node.args[0].value)
    return names


class UndeclaredCombinerRule(Rule):
    """Problems with value associates must declare a non-empty
    ``combiners`` mapping, and its keys must name allocated arrays."""

    rule_id = "REP102"
    name = "undeclared-combiner"
    description = (
        "a Problem registering NUM_VALUE_ASSOCIATES must declare the "
        "merge semantics in a class-level `combiners` mapping"
    )

    def _combiners_assign(self, cls: ast.ClassDef) -> Optional[ast.AST]:
        for node in cls.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name) and t.id == "combiners":
                        return node
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.problem_classes:
            n_values = 0
            for node in ast.walk(cls):
                v = _positive_int_assign(node, "NUM_VALUE_ASSOCIATES")
                if v:
                    n_values = max(n_values, v)
            decl = self._combiners_assign(cls)
            if n_values > 0:
                if decl is None:
                    yield self.finding(
                        ctx, cls,
                        f"{cls.name} registers NUM_VALUE_ASSOCIATES="
                        f"{n_values} but declares no `combiners` mapping; "
                        "the superstep-boundary merge semantics of the "
                        "communicated values are unspecified",
                        cls=cls.name,
                    )
                    continue
                value = decl.value
                if isinstance(value, ast.Dict) and not value.keys:
                    yield self.finding(
                        ctx, decl,
                        f"{cls.name}.combiners is empty but the problem "
                        "registers value associates",
                        cls=cls.name,
                    )
            # keys must correspond to arrays the slice actually allocates
            if decl is not None and isinstance(decl.value, ast.Dict):
                allocated = set(_allocated_names(ctx, cls))
                if not allocated:
                    continue  # arrays allocated dynamically; cannot check
                for key in decl.value.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value not in allocated
                    ):
                        yield self.finding(
                            ctx, key,
                            f"{cls.name}.combiners declares a combiner for "
                            f"{key.value!r} but init_data_slice never "
                            "allocates an array of that name",
                            cls=cls.name, array=key.value,
                        )
