"""REP118 ``unbounded-wait``: core IPC waits must be bounded.

The ``processes`` execution backend talks to real forked workers over
duplex pipes.  Any *unbounded* blocking call on that path turns a dead
or wedged worker into a deadlocked parent: ``Connection.recv()`` blocks
forever if the peer was SIGKILLed before replying, ``Process.join()``
blocks forever on a SIGSTOPped child, and ``Queue.get()`` blocks
forever on an empty queue nobody will ever fill.  The supervision layer
(``repro.core.supervise``) exists precisely so every such wait runs
under a deadline — ``wait_for_reply`` for replies, ``reap_worker`` for
teardown — and this rule keeps new unbounded waits from creeping back
into the core.

What is flagged (in modules under a ``core`` directory only — that is
where the worker-pool plumbing lives; tests and tools may block):

* ``X.recv()`` — ``multiprocessing.connection.Connection.recv`` has no
  timeout parameter at all, so a bare ``recv()`` is unbounded unless a
  ``poll(timeout)`` / ``connection.wait(..., timeout)`` dominates it.
  The rule is syntactic and cannot prove dominance, so bounded sites
  carry an inline waiver naming the bounding call::

      conn.recv()  # repro-check: disable=REP118 -- poll() above bounds this recv

* ``X.join()`` with no arguments — ``Process.join``/``Thread.join``
  without a ``timeout``.  (``str.join`` and ``os.path.join`` always
  take arguments, so the zero-argument form is reliably a
  process/thread join.)
* ``X.get()`` with no ``timeout`` — ``Queue.get()`` and
  ``Queue.get(True)`` block indefinitely.  (``dict.get`` takes at
  least a key argument; the zero-argument form is reliably a queue.)

A wait with any positional or ``timeout=`` argument is bounded and
passes; so is ``get_nowait``/``block=False``.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator, Optional

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["BoundedWaitRule"]


def _unbounded_wait(node: ast.Call) -> Optional[str]:
    """Description of the unbounded wait ``node`` performs, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    kwnames = {kw.arg for kw in node.keywords}
    if attr == "recv":
        # Connection.recv has no timeout parameter; any call is
        # unbounded unless a dominating poll()/wait() bounds it (the
        # rule cannot prove that — bounded sites carry a waiver)
        if not node.args and not node.keywords:
            return "Connection.recv() blocks forever if the worker died"
        return None
    if attr == "join":
        if not node.args and "timeout" not in kwnames:
            return (
                "Process.join() without a timeout blocks forever on a "
                "hung child"
            )
        return None
    if attr == "get":
        if node.args:
            # Queue.get(True) blocks forever; Queue.get(False) and
            # dict.get(key) do not
            first = node.args[0]
            blocking = (
                isinstance(first, ast.Constant) and first.value is True
            )
            if not (blocking and len(node.args) == 1
                    and "timeout" not in kwnames):
                return None
        elif node.keywords:
            block_false = any(
                kw.arg == "block"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            if block_false or "timeout" in kwnames:
                return None
        return "Queue.get() without a timeout blocks forever when empty"
    return None


class BoundedWaitRule(Rule):
    """Flag unbounded ``recv``/``join``/``get`` waits in core modules."""

    rule_id = "REP118"
    name = "unbounded-wait"
    description = (
        "core worker-pool code must bound every blocking IPC wait "
        "(Connection.recv behind poll/wait, Process.join and Queue.get "
        "with a timeout) so a dead or hung worker cannot deadlock the "
        "parent; see repro.core.supervise"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if "core" not in PurePath(ctx.path).parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            desc = _unbounded_wait(node)
            if desc is None:
                continue
            yield self.finding(
                ctx, node,
                f"unbounded wait in core: {desc}; bound it with a "
                "timeout (or a dominating poll()/connection.wait() "
                "plus an inline waiver naming it)",
                call=getattr(node.func, "attr", "?"),
            )
