"""Pluggable rule registry for the ``repro check`` static lint pass.

To add a rule: subclass :class:`~repro.check.rules.base.Rule` in a new
module here, give it the next free ``REP1xx`` ID and a kebab-case
``name``, and append it to :data:`DEFAULT_RULES`.  Rules receive a parsed
:class:`~repro.check.rules.base.ModuleContext` and yield
:class:`~repro.check.findings.Finding`s; they must never import or
execute the code under analysis (user primitive files may not even be
importable).  Document new rules in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .allocations import RawAllocationRule
from .base import ModuleContext, Rule
from .bounded_wait import BoundedWaitRule
from .combiners import UndeclaredCombinerRule
from .dtypes import BareDtypeRule
from .hooks import IterationHooksRule
from .loops import HotLoopRule
from .obs_guard import UnguardedTracerRule
from .peer_access import PeerMutationRule
from .process_safety import ProcessUnsafeStateRule
from .swallow import SwallowedErrorRule
from .workspace_rule import WorkspaceBypassRule

__all__ = [
    "Rule",
    "ModuleContext",
    "DEFAULT_RULES",
    "default_rules",
    "rule_index",
    "IterationHooksRule",
    "UndeclaredCombinerRule",
    "BareDtypeRule",
    "HotLoopRule",
    "RawAllocationRule",
    "PeerMutationRule",
    "WorkspaceBypassRule",
    "SwallowedErrorRule",
    "UnguardedTracerRule",
    "ProcessUnsafeStateRule",
    "BoundedWaitRule",
]

#: every shipped rule class, in rule-ID order
DEFAULT_RULES: List[Type[Rule]] = [
    IterationHooksRule,
    UndeclaredCombinerRule,
    BareDtypeRule,
    HotLoopRule,
    RawAllocationRule,
    PeerMutationRule,
    WorkspaceBypassRule,
    SwallowedErrorRule,
    UnguardedTracerRule,
    ProcessUnsafeStateRule,
    BoundedWaitRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in DEFAULT_RULES]


def rule_index() -> Dict[str, Type[Rule]]:
    """Lookup by both rule ID (``REP103``) and name (``bare-dtype``)."""
    idx: Dict[str, Type[Rule]] = {}
    for cls in DEFAULT_RULES:
        idx[cls.rule_id] = cls
        idx[cls.name] = cls
    return idx
