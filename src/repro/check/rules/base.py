"""Rule framework: the AST context rules run against, and the Rule base.

A rule sees one parsed module at a time through a :class:`ModuleContext`
that pre-computes the classifications every rule needs — which classes
are ``ProblemBase`` subclasses, which are ``IterationBase`` subclasses —
so individual rules stay small.  Classification is purely syntactic
(direct base named ``ProblemBase``/``IterationBase``, or a base whose
name ends in ``Problem``/``Iteration``): the linter must work on user
primitive files it cannot import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..findings import Finding

__all__ = ["ModuleContext", "Rule", "HOT_HOOKS", "CONTROL_HOOKS"]

#: iteration hooks that run inside the superstep (operator hot paths)
HOT_HOOKS = {
    "full_queue_core",
    "expand_incoming",
    "vertex_associate_arrays",
    "value_associate_arrays",
}

#: iteration hooks that run at/after the barrier (control plane, not hot)
CONTROL_HOOKS = {
    "should_stop",
    "max_iterations",
    "on_iteration_end",
    "direction_of",
    "communicates_this_iteration",
}


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for b in cls.bases:
        if isinstance(b, ast.Name):
            names.append(b.id)
        elif isinstance(b, ast.Attribute):
            names.append(b.attr)
    return names


def _is_problem_class(cls: ast.ClassDef) -> bool:
    return any(
        n == "ProblemBase" or n.endswith("Problem") for n in _base_names(cls)
    )


def _is_iteration_class(cls: ast.ClassDef) -> bool:
    return any(
        n == "IterationBase" or n.endswith("Iteration")
        for n in _base_names(cls)
    )


@dataclass
class ModuleContext:
    """One parsed source module plus the classifications rules share."""

    path: str
    source: str
    tree: ast.Module
    problem_classes: List[ast.ClassDef] = field(default_factory=list)
    iteration_classes: List[ast.ClassDef] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                if _is_problem_class(node):
                    ctx.problem_classes.append(node)
                if _is_iteration_class(node):
                    ctx.iteration_classes.append(node)
        return ctx

    @property
    def is_primitive_module(self) -> bool:
        """Whether this module defines primitive code (rule scope)."""
        return bool(self.problem_classes or self.iteration_classes)

    def methods(self, cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def find_method(
        self, cls: ast.ClassDef, name: str
    ) -> Optional[ast.FunctionDef]:
        for m in self.methods(cls):
            if m.name == name:
                return m
        return None


class Rule:
    """One pluggable contract check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding`s.  Register new rules in
    ``repro.check.rules.DEFAULT_RULES`` (see ``docs/static_analysis.md``).
    """

    rule_id: str = "REP000"
    name: str = "unnamed"
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by concrete rules ----------------------------------
    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, **extra: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            extra=extra,
        )
