"""REP106 ``peer-mutation``: only comm.py moves data between GPUs.

The BSP contract (Section III-B) is that peer state changes *only* via
split/package/push messages combined at the superstep boundary.  An
iteration hook that writes through ``problem.data_slices[j]`` or
``problem.subgraphs[j]`` mutates another GPU's memory mid-superstep —
on real hardware that is a cross-device race the barrier cannot order.
Hooks must touch only their own ``ctx.slice``/``ctx.sub``; the dynamic
sanitizer enforces the same contract at runtime (SAN201/SAN202).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["PeerMutationRule"]

_PEER_ATTRS = ("data_slices", "subgraphs")
#: mutating methods whose receiver/first argument we inspect
_MUTATORS = {"fill", "at", "put", "copyto"}


def _mentions_peer_state(node: ast.AST) -> bool:
    """Whether the expression reaches through ``.data_slices[...]`` or
    ``.subgraphs[...]`` (indexed access to another GPU's state)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Attribute)
            and sub.value.attr in _PEER_ATTRS
        ):
            return True
    return False


class PeerMutationRule(Rule):
    """Flag stores and mutating calls that reach through
    ``data_slices[...]``/``subgraphs[...]`` inside iteration hooks."""

    rule_id = "REP106"
    name = "peer-mutation"
    description = (
        "iteration hooks must not mutate another GPU's slice or subgraph "
        "arrays; inter-GPU data moves only through comm.py messages"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ctx.iteration_classes:
            for method in ctx.methods(cls):
                for node in ast.walk(method):
                    targets = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    for t in targets:
                        # only subscript/attribute stores can mutate peer
                        # arrays; binding a plain name is a local read
                        if isinstance(
                            t, (ast.Subscript, ast.Attribute)
                        ) and _mentions_peer_state(t):
                            yield self.finding(
                                ctx, node,
                                f"{cls.name}.{method.name} writes through "
                                "problem.data_slices/subgraphs — a "
                                "mid-superstep mutation of peer GPU "
                                "state; communicate via messages instead",
                                cls=cls.name, method=method.name,
                            )
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                        and (
                            _mentions_peer_state(node.func.value)
                            or any(
                                _mentions_peer_state(a)
                                for a in node.args[:1]
                            )
                        )
                    ):
                        yield self.finding(
                            ctx, node,
                            f"{cls.name}.{method.name} calls a mutating "
                            f"method ({node.func.attr}) on peer GPU state "
                            "reached through problem.data_slices/"
                            "subgraphs",
                            cls=cls.name, method=method.name,
                        )
