"""REP108 ``swallowed-error``: framework errors must not vanish.

Every :class:`~repro.errors.ReproError` carries structured fault context
(gpu/iteration/site) precisely so failures stay attributable.  An
``except`` clause that catches a ReproError subclass (or everything, via
``except:`` / ``except Exception:``) and neither re-raises nor touches
the bound exception erases that context — the run continues with the
fault silently absorbed, which is indistinguishable from recovery but
isn't one.  Handlers are fine when they contain a ``raise`` on some path
(retry loops re-raise when the budget runs out) or when they reference
the caught exception (recording/diagnosing it counts as handling).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["SwallowedErrorRule"]

#: the repro exception hierarchy, plus the catch-alls that include it
_REPRO_ERRORS = {
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "DeviceMemoryError",
    "DeviceLostError",
    "SimulationError",
    "ConvergenceError",
    "CommunicationError",
    "WorkerCrashError",
    "WorkerHangError",
    "ShmIntegrityError",
}
_CATCH_ALLS = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler):
    """Exception class names a handler catches ([] for a bare except)."""
    t = handler.type
    if t is None:
        return []
    elts = t.elts if isinstance(t, ast.Tuple) else [t]
    names = []
    for e in elts:
        if isinstance(e, ast.Name):
            names.append(e.id)
        elif isinstance(e, ast.Attribute):
            names.append(e.attr)
    return names


def _catches_repro_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except: catches everything
    names = _caught_names(handler)
    return any(n in _REPRO_ERRORS or n in _CATCH_ALLS for n in names)


def _handles(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises on some path or uses the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            handler.name
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


class SwallowedErrorRule(Rule):
    """Flag except clauses that absorb ReproErrors without a trace."""

    rule_id = "REP108"
    name = "swallowed-error"
    description = (
        "except clauses catching ReproError (or everything) must re-raise "
        "or reference the caught exception; silently absorbing a "
        "framework fault erases its gpu/iteration/site context"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _catches_repro_error(node):
                continue
            if _handles(node):
                continue
            what = ", ".join(_caught_names(node)) or "everything (bare)"
            yield self.finding(
                ctx, node,
                f"except clause catches {what} but neither re-raises nor "
                "references the exception — the fault's gpu/iteration/"
                "site context is silently discarded",
                caught=what,
            )
