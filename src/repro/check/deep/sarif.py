"""SARIF 2.1.0 emitter for ``repro check`` findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI systems ingest natively (GitHub code scanning, `sarif-tools`,
...).  The emitter is deliberately minimal: one run, one driver, one
``result`` per :class:`~repro.check.findings.Finding`, rule metadata
from the registries of both tiers.  Output is deterministic — findings
are emitted in the order given (the CLI sorts globally first) and all
dicts serialize with sorted keys.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..findings import Finding

__all__ = ["findings_to_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}

#: rules whose severity is fixed by contract (emitted into SARIF
#: ``defaultConfiguration`` so dashboards triage them correctly even
#: before any finding exists)
_RULE_DEFAULT_LEVELS = {
    "REP116": "error",    # strict-barrier divergence: broken contract
    "REP117": "warning",  # relaxed-unsafe: only bites with opt-in mode
}

#: expanded guidance for rules whose one-line description is not enough
#: to act on a finding (shown by SARIF viewers as fullDescription)
_RULE_FULL_DESCRIPTIONS = {
    "REP116": (
        "The superstep interleaving model checker found two strict-"
        "barrier schedules of this primitive's effect summaries that "
        "reach different final states. Under the framework contract "
        "(messages merged at the barrier in pinned sender order, "
        "REP113) this can only happen when hooks write peer-GPU slices "
        "or message payload views. The attached ScheduleCertificate "
        "carries a minimal counterexample: a witness/divergent pair of "
        "replayable schedule traces (repro check --mc --trace-out DIR "
        "renders them for Perfetto)."
    ),
    "REP117": (
        "The primitive is deterministic under strict barriers but "
        "diverges in the relaxed model where a GPU consumes partial "
        "remote data for superstep i+1 (late or duplicated straggler "
        "merges). It must not run with Enactor(relaxed_barriers=True); "
        "the enactor refuses unless the primitive's "
        "ScheduleCertificate proves relaxed safety. The certificate "
        "records which array/fold pair breaks (non-idempotent sum "
        "folds, mid-superstep resets, or value reads of remote-merged "
        "state) plus the counterexample schedule pair."
    ),
}


def _rule_descriptor(rule_id: str, name: str, description: str) -> dict:
    desc = {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": description or name},
        "helpUri": (
            "https://github.com/"  # repo-relative docs anchor
            f"../blob/main/docs/static_analysis.md#{rule_id.lower()}"
        ),
    }
    full = _RULE_FULL_DESCRIPTIONS.get(rule_id)
    if full:
        desc["fullDescription"] = {"text": full}
    level = _RULE_DEFAULT_LEVELS.get(rule_id)
    if level:
        desc["defaultConfiguration"] = {"level": level}
    return desc


def findings_to_sarif(
    findings: Iterable[Finding],
    rules: Optional[Dict[str, Tuple[str, str]]] = None,
    tool_name: str = "repro-check",
    tool_version: str = "1",
) -> str:
    """Render findings as a SARIF 2.1.0 JSON document (a string).

    ``rules`` maps rule_id -> (name, description); rules only seen on
    findings are synthesized from the finding itself so the document is
    always self-consistent.
    """
    findings = list(findings)
    rules = dict(rules or {})
    for f in findings:
        rules.setdefault(f.rule_id, (f.rule, ""))
    rule_ids = sorted(rules)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    results: List[dict] = []
    for f in findings:
        results.append({
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
            "properties": dict(f.extra),
        })

    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": tool_version,
                    "informationUri":
                        "docs/static_analysis.md",
                    "rules": [
                        _rule_descriptor(rid, *rules[rid])
                        for rid in rule_ids
                    ],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
