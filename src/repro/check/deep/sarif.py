"""SARIF 2.1.0 emitter for ``repro check`` findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI systems ingest natively (GitHub code scanning, `sarif-tools`,
...).  The emitter is deliberately minimal: one run, one driver, one
``result`` per :class:`~repro.check.findings.Finding`, rule metadata
from the registries of both tiers.  Output is deterministic — findings
are emitted in the order given (the CLI sorts globally first) and all
dicts serialize with sorted keys.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..findings import Finding

__all__ = ["findings_to_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(rule_id: str, name: str, description: str) -> dict:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": description or name},
        "helpUri": (
            "https://github.com/"  # repo-relative docs anchor
            f"../blob/main/docs/static_analysis.md#{rule_id.lower()}"
        ),
    }


def findings_to_sarif(
    findings: Iterable[Finding],
    rules: Optional[Dict[str, Tuple[str, str]]] = None,
    tool_name: str = "repro-check",
    tool_version: str = "1",
) -> str:
    """Render findings as a SARIF 2.1.0 JSON document (a string).

    ``rules`` maps rule_id -> (name, description); rules only seen on
    findings are synthesized from the finding itself so the document is
    always self-consistent.
    """
    findings = list(findings)
    rules = dict(rules or {})
    for f in findings:
        rules.setdefault(f.rule_id, (f.rule, ""))
    rule_ids = sorted(rules)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    results: List[dict] = []
    for f in findings:
        results.append({
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": _LEVELS.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
            "properties": dict(f.extra),
        })

    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": tool_version,
                    "informationUri":
                        "docs/static_analysis.md",
                    "rules": [
                        _rule_descriptor(rid, *rules[rid])
                        for rid in rule_ids
                    ],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
