"""Schedule-space exploration for the superstep model checker.

This module is the *dynamic* half of the relaxed-barrier model checker
(the static half — compiling hot hooks into effect summaries — lives in
:mod:`repro.check.deep.modelcheck`).  It takes a per-GPU effect program
and exhaustively enumerates the schedules the framework can produce on
2–3 virtual GPUs over a small bounded horizon, in the style of stateless
model checkers (CHESS/DPOR): every reachable *final* state must be
unique, otherwise the pair of schedules that disagree is the
counterexample.

State model
-----------
Instead of concrete vertex arrays, every combined slice array is a
**fold** of symbolic update terms.  The fold structure is chosen from
the combiner's *evaluated* algebra (``deep/certify.py``), not its
declared flags:

* ``set``       — idempotent + commutative + associative (min/max/or):
                  an unordered set of terms; re-delivery and reordering
                  are absorbed by construction, so divergence can only
                  enter through value terms that depend on *when* a
                  read happened.
* ``multiset``  — commutative but not idempotent (sum): a multiset of
                  terms; reordering is absorbed but re-delivery is not.
* ``seq``       — non-commutative (overwrite/first/last/unknown): an
                  ordered sequence; everything matters.

Update terms carry digests of the folds they were derived from, so a
value computed from a *partial* remote snapshot produces a different
term than one computed from the fully-merged state — exactly the
divergence channel relaxed barriers open.

Schedule models
---------------
``strict``   — the framework contract: all messages from superstep *k*
               are merged at barrier *k* in pinned (sender, receiver)
               lexicographic order (the REP113 discipline).  Compute
               phases are only interleaved when a program writes peer
               or message state (REP111/REP106 territory), which is
               what REP116 flags.
``relaxed``  — ROADMAP item 5: each message may additionally be merged
               *late* (after the receiver already ran superstep k+1 on
               partial data) and may be merged *twice* (at-least-once
               re-delivery when a straggler merge races the catch-up
               path).

Partial-order reduction
-----------------------
Branches are pruned with static independence facts (sleep sets):

* the late/early slot choice is only explored when the receiver's next
  compute actually *reads* (or resets, or re-ships) state the merge
  writes;
* the duplicate-delivery choice is only explored when some merge target
  is not an idempotent ``set`` fold;
* compute-phase interleavings are only explored when peer/message
  writes make the phases dependent;
* reached states are memoized on a canonical digest.

Everything here is deterministic: no randomness, no wall clock, and all
iteration orders are sorted, so the same program always yields the same
verdict, counters, and counterexample — which is what lets the findings
be baselined and the certificates be byte-stable in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from itertools import permutations, product
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "FOLD_SET",
    "FOLD_MULTISET",
    "FOLD_SEQ",
    "FOLD_EXCLUDED",
    "ArrayModel",
    "Effect",
    "GpuProgram",
    "ExploreResult",
    "fold_kind_for",
    "canon",
    "explore",
    "replay",
    "build_counterexample",
    "explore_op_schedules",
    "schedule_trace_to_tracer",
    "TRACE_VERSION",
]

# fold structure kinds (see module docstring)
FOLD_SET = "set"
FOLD_MULTISET = "multiset"
FOLD_SEQ = "seq"
#: array is excluded from the model (witness combiners pick an arbitrary
#: contributor by contract, so their content is *allowed* to be
#: schedule-dependent — they must not poison the verdict)
FOLD_EXCLUDED = "excluded"

#: version of the replayable schedule-trace JSON documents
TRACE_VERSION = 1


def fold_kind_for(idempotent: Optional[bool], commutative: Optional[bool],
                  excluded: bool = False) -> str:
    """Map an *evaluated* combiner algebra onto a fold structure."""
    if excluded:
        return FOLD_EXCLUDED
    if commutative is None or idempotent is None:
        # unknown op semantics: assume nothing commutes
        return FOLD_SEQ
    if not commutative:
        return FOLD_SEQ
    return FOLD_SET if idempotent else FOLD_MULTISET


@dataclass(frozen=True)
class ArrayModel:
    """One combined slice array in the model."""

    name: str
    op: str
    fold: str  # one of the FOLD_* kinds


@dataclass(frozen=True)
class Effect:
    """One write effect extracted from a hot hook.

    ``kind`` is one of:

    * ``"apply"``    — apply the declared combiner with ``value``
    * ``"reset"``    — destructive whole-array reinitialization (fill)
    * ``"peer"``     — write into a *peer's* slice (REP106 territory)
    * ``"msgwrite"`` — write through message payload views (REP111)

    ``value`` is a value spec tuple:

    * ``("const", token)``   — schedule-independent constant
    * ``("iter",)``          — derived from ``ctx.iteration`` only
    * ``("fwd", B)``         — untransformed forward of combined array B
    * ``("pay", names)``     — untransformed forward of a message
                               payload whose candidate source arrays
                               are ``names`` (a frozenset)
    * ``("expr", site, reads)`` — arbitrary expression reading the
                               combined arrays in ``reads`` (frozenset)
    """

    kind: str
    array: str
    value: tuple
    hook: str = ""
    line: int = 0

    def describe(self) -> str:
        tag = self.value[0]
        if tag == "expr":
            what = "expr over {%s}" % ", ".join(sorted(self.value[2]))
        elif tag == "fwd":
            what = "forward of '%s'" % self.value[1]
        elif tag == "pay":
            what = "payload forward of {%s}" % ", ".join(sorted(self.value[1]))
        elif tag == "iter":
            what = "iteration-derived value"
        else:
            what = "constant"
        return "%s '%s' <- %s (%s:%d)" % (
            self.kind, self.array, what, self.hook, self.line)


@dataclass(frozen=True)
class GpuProgram:
    """The per-GPU superstep program (same code runs on every GPU)."""

    #: compute-phase effects, in program order (full_queue_core first,
    #: then helper-method effects)
    core: Tuple[Effect, ...] = ()
    #: merge-phase effects (expand_incoming), in program order
    expand: Tuple[Effect, ...] = ()
    #: combined arrays shipped as message payload each superstep
    payload_arrays: FrozenSet[str] = frozenset()


@dataclass
class ExploreResult:
    """Outcome of one exploration of one model."""

    model: str  # "strict" | "relaxed"
    num_gpus: int
    horizon: int
    deterministic: bool
    num_final_states: int
    states: int
    schedules: int
    pruned: int
    #: True when the whole schedule space was enumerated (required for a
    #: *safety* verdict; a refutation needs only two schedules)
    exhausted: bool
    #: POR facts that justified pruning, for the certificate
    independence: Tuple[str, ...] = ()
    #: choices of the canonical schedule and of the first schedule that
    #: reached a different final state (None unless divergent)
    witness_choices: Optional[list] = None
    divergent_choices: Optional[list] = None


# ---------------------------------------------------------------------------
# canonical serialization (frozensets and dicts get a stable rendering)
# ---------------------------------------------------------------------------


def canon(obj) -> str:
    """Deterministic canonical string for nested term structures."""
    if isinstance(obj, frozenset) or isinstance(obj, set):
        return "{" + ",".join(sorted(canon(x) for x in obj)) + "}"
    if isinstance(obj, tuple) or isinstance(obj, list):
        return "(" + ",".join(canon(x) for x in obj) + ")"
    if isinstance(obj, dict):
        items = sorted((canon(k), canon(v)) for k, v in obj.items())
        return "{" + ",".join("%s:%s" % kv for kv in items) + "}"
    return repr(obj)


# ---------------------------------------------------------------------------
# fold operations
# ---------------------------------------------------------------------------


def _fold_init(kind: str, gpu: int):
    term = ("init", gpu)
    if kind == FOLD_SET:
        return frozenset([term])
    return (term,)


def _fold_add(kind: str, fold, term):
    if kind == FOLD_SET:
        return fold | {term}
    if kind == FOLD_MULTISET:
        return tuple(sorted(fold + (term,), key=canon))
    return fold + (term,)  # FOLD_SEQ: order preserved


def _fold_union(fold, other: frozenset):
    """Absorb another set fold into a set fold (identity forwards)."""
    return fold | other


class _Machine:
    """Executes effect programs over fold states, recording events.

    One instance per exploration; ``explore`` drives it branch-by-branch
    on copied fold dicts, ``replay`` drives it once along recorded
    choices with event recording on.
    """

    def __init__(self, program: GpuProgram, arrays: Sequence[ArrayModel],
                 num_gpus: int):
        self.program = program
        self.num_gpus = num_gpus
        self.kinds = {a.name: a.fold for a in arrays
                      if a.fold != FOLD_EXCLUDED}
        self.payload = tuple(sorted(
            a for a in program.payload_arrays if a in self.kinds))
        self.events: Optional[list] = None  # set by replay

    # -- state ----------------------------------------------------------

    def initial_folds(self) -> dict:
        return {(g, a): _fold_init(k, g)
                for g in range(self.num_gpus)
                for a, k in sorted(self.kinds.items())}

    def digest(self, folds: dict) -> str:
        return canon(tuple(
            (g, a, folds[(g, a)])
            for g in range(self.num_gpus)
            for a in sorted(self.kinds)))

    # -- value terms ----------------------------------------------------

    def _term(self, spec: tuple, gpu: int, step: int, folds: dict,
              payload: Optional[dict], send_step: Optional[int]):
        tag = spec[0]
        if tag == "const":
            return ("const", spec[1])
        if tag == "iter":
            # a message is always consumed *for* superstep send_step+1,
            # whatever the delivery slot — ctx.iteration reads the same
            # either way, so the term must not depend on the slot
            return ("iter", step if send_step is None else send_step + 1)
        if tag == "fwd":
            src = spec[1]
            return ("fwd", src, canon(folds.get((gpu, src))))
        if tag == "pay":
            names = tuple(sorted(spec[1]))
            snap = {n: (payload or {}).get(n) for n in names}
            return ("pay", names, canon(snap))
        # ("expr", site, reads): digest every read's current fold; for
        # merge-phase exprs the payload snapshot is part of the read set
        site, reads = spec[1], spec[2]
        parts = []
        for r in sorted(reads):
            if payload is not None and r in payload:
                parts.append(("pay", r, canon(payload[r])))
            if (gpu, r) in folds:
                parts.append((r, folds[(gpu, r)]))
        return ("expr", site, gpu, step, canon(tuple(parts)))

    # -- effect application --------------------------------------------

    def _emit(self, ev: dict) -> None:
        if self.events is not None:
            self.events.append(ev)

    def _apply(self, eff: Effect, gpu: int, step: int, folds: dict,
               payload: Optional[dict] = None,
               send_step: Optional[int] = None) -> None:
        kind = self.kinds.get(eff.array)
        if kind is None:  # excluded (witness) or unmodeled array
            return
        if eff.kind == "reset":
            term = ("reset", gpu, step, eff.line)
            folds[(gpu, eff.array)] = (
                frozenset([term]) if kind == FOLD_SET else (term,))
            self._emit({"ev": "reset", "step": step, "gpu": gpu,
                        "array": eff.array, "hook": eff.hook,
                        "line": eff.line})
            return
        if eff.kind in ("peer", "msgwrite"):
            # handled by the callers (compute / deliver), which know the
            # target GPU; _apply only sees local applies
            raise AssertionError("peer/msgwrite must not reach _apply")
        spec = eff.value
        key = (gpu, eff.array)
        # identity forwards into an idempotent set fold are absorbed:
        # min-combining an array into itself, or merging a payload that
        # *is* a snapshot of the same fold, is a sub-fold union
        if kind == FOLD_SET and spec[0] == "fwd" and spec[1] == eff.array:
            self._emit({"ev": "apply", "step": step, "gpu": gpu,
                        "array": eff.array, "absorbed": True,
                        "hook": eff.hook, "line": eff.line})
            return
        if (kind == FOLD_SET and spec[0] == "pay"
                and set(spec[1]) == {eff.array} and payload is not None
                and payload.get(eff.array) is not None):
            folds[key] = _fold_union(folds[key], payload[eff.array])
            self._emit({"ev": "apply", "step": step, "gpu": gpu,
                        "array": eff.array, "absorbed": True,
                        "hook": eff.hook, "line": eff.line})
            return
        term = self._term(spec, gpu, step, folds, payload, send_step)
        folds[key] = _fold_add(kind, folds[key], term)
        self._emit({"ev": "apply", "step": step, "gpu": gpu,
                    "array": eff.array, "term": canon(term),
                    "hook": eff.hook, "line": eff.line})

    # -- phases ---------------------------------------------------------

    def compute(self, gpu: int, step: int, folds: dict) -> None:
        self._emit({"ev": "compute", "step": step, "gpu": gpu})
        for eff in self.program.core:
            if eff.kind == "peer":
                # the target slice index is dynamic; model as a write
                # visible in every peer (broadcast upper bound)
                term = self._term(eff.value, gpu, step, folds, None, None)
                for p in range(self.num_gpus):
                    if p == gpu or (p, eff.array) not in folds:
                        continue
                    k = self.kinds[eff.array]
                    folds[(p, eff.array)] = _fold_add(
                        k, folds[(p, eff.array)], ("peer", gpu) + term)
                    self._emit({"ev": "peer-write", "step": step,
                                "gpu": gpu, "peer": p, "array": eff.array,
                                "hook": eff.hook, "line": eff.line})
                continue
            if eff.kind == "msgwrite":
                continue  # only meaningful at merge time
            self._apply(eff, gpu, step, folds)

    def snapshot_payload(self, gpu: int, folds: dict) -> dict:
        return {a: folds[(gpu, a)] for a in self.payload}

    def deliver(self, msg: tuple, folds: dict, copies: int, slot: str,
                step: int) -> None:
        """Merge one message: ``msg = (sender, receiver, send_step,
        payload_snapshot)``."""
        sender, receiver, send_step, payload = msg
        for _ in range(copies):
            self._emit({"ev": "deliver", "step": step, "gpu": receiver,
                        "from": sender, "sent_step": send_step,
                        "slot": slot, "copies": copies})
            for eff in self.program.expand:
                if eff.kind == "msgwrite":
                    # writing through payload views mutates the
                    # *sender's* arrays (they alias under zero-copy
                    # comm) — the hazard REP111 flags dynamically
                    if (sender, eff.array) in folds:
                        k = self.kinds[eff.array]
                        folds[(sender, eff.array)] = _fold_add(
                            k, folds[(sender, eff.array)],
                            ("msgwrite", receiver, step, eff.line))
                        self._emit({"ev": "msg-write", "step": step,
                                    "gpu": receiver, "peer": sender,
                                    "array": eff.array, "line": eff.line})
                    continue
                if eff.kind == "peer":
                    continue
                self._apply(eff, receiver, step, folds,
                            payload=payload, send_step=send_step)


# ---------------------------------------------------------------------------
# static independence facts (sleep sets)
# ---------------------------------------------------------------------------


def _expand_written(program: GpuProgram, kinds: dict) -> frozenset:
    """Arrays that receive *remote* contributions at merge time."""
    return frozenset(e.array for e in program.expand
                     if e.kind in ("apply", "reset") and e.array in kinds)


def _independence(program: GpuProgram, kinds: dict,
                  relaxed: bool) -> Tuple[bool, bool, bool, bool, list]:
    """Compute which choice dimensions need branching.

    Returns ``(peer_branch, msg_branch, slot_branch, dup_branch,
    notes)``.  A dimension that does not branch is a proven
    independence fact, recorded in ``notes`` for the certificate.
    """
    notes: List[str] = []
    remote_in = _expand_written(program, kinds)

    peer_branch = any(e.kind == "peer" for e in program.core)
    if not peer_branch:
        notes.append("compute phases are pairwise independent "
                     "(no peer-slice writes): single interleaving explored")
    msg_branch = any(e.kind == "msgwrite" for e in program.expand)
    if not msg_branch:
        notes.append("merges do not write through payload views: "
                     "barrier merge order stays pinned (REP113)")

    slot_branch = dup_branch = False
    if relaxed and remote_in:
        # late merge can only matter if the receiver's next superstep
        # observes the difference: via a value read, via the payload it
        # re-ships, via a reset racing the straggler, or because the
        # fold itself is order-sensitive
        for eff in program.core:
            if eff.kind == "reset" and eff.array in remote_in:
                slot_branch = True
            reads: frozenset = frozenset()
            if eff.value[0] == "fwd":
                reads = frozenset([eff.value[1]]) - {eff.array}
            elif eff.value[0] == "expr":
                reads = eff.value[2]
            if reads & remote_in:
                slot_branch = True
        if program.payload_arrays & remote_in:
            slot_branch = True
        if any(kinds.get(a) == FOLD_SEQ for a in remote_in):
            slot_branch = True
        # a duplicate delivery is absorbed iff every merge target is an
        # idempotent set fold and no merge value depends on receiver
        # state mutated by the first copy
        for eff in program.expand:
            if eff.kind != "apply" or eff.array not in kinds:
                continue
            if kinds[eff.array] != FOLD_SET:
                dup_branch = True
            if eff.value[0] == "expr" and eff.value[2] & frozenset(kinds):
                dup_branch = True
    if relaxed and not slot_branch:
        notes.append("superstep i+1 never observes whether a straggler "
                     "merge already landed: early/late slot collapsed")
    if relaxed and not dup_branch:
        notes.append("every merge target is an idempotent set fold: "
                     "at-least-once re-delivery collapsed")
    return peer_branch, msg_branch, slot_branch, dup_branch, notes


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------


class _Diverged(Exception):
    pass


class _Budget(Exception):
    pass


def explore(program: GpuProgram, arrays: Sequence[ArrayModel],
            num_gpus: int = 2, horizon: int = 2, relaxed: bool = False,
            max_states: int = 20000,
            stop_on_divergence: bool = True) -> ExploreResult:
    """Enumerate every schedule of ``program`` under one barrier model.

    Safe (deterministic) verdicts require ``exhausted``; refutations
    stop at the second distinct final state and return the two choice
    sequences that disagree.
    """
    m = _Machine(program, arrays, num_gpus)
    kinds = m.kinds
    peer_b, msg_b, slot_b, dup_b, notes = _independence(
        program, kinds, relaxed)
    gpus = range(num_gpus)
    counters = {"states": 0, "schedules": 0, "pruned": 0}
    visited: set = set()
    finals: Dict[str, list] = {}

    has_comm = bool(m.payload) or any(
        e.kind in ("apply", "reset", "msgwrite") for e in program.expand)

    def run_step(step: int, folds: dict, stragglers: tuple,
                 choices: list) -> None:
        if step == horizon:
            counters["schedules"] += 1
            d = m.digest(folds)
            if d not in finals:
                finals[d] = list(choices)
                if len(finals) > 1 and stop_on_divergence:
                    raise _Diverged
            return
        key = (step, m.digest(folds), canon(stragglers))
        if key in visited:
            counters["pruned"] += 1
            return
        visited.add(key)
        counters["states"] += 1
        if counters["states"] > max_states:
            raise _Budget

        orders = (list(permutations(gpus)) if peer_b
                  else [tuple(gpus)])
        for order in orders:
            f2 = dict(folds)
            msgs = []
            for g in order:
                m.compute(g, step, f2)
            if has_comm:
                for g in gpus:  # send snapshots, pinned order
                    snap = m.snapshot_payload(g, f2)
                    for r in gpus:
                        if r != g:
                            msgs.append((g, r, step, snap))
            # stragglers chosen 'late' at step-1 merge now, after this
            # step's computes and send snapshots (the straggler lands
            # while superstep `step` runs; its output already shipped)
            for (smsg, copies) in stragglers:
                m.deliver(smsg, f2, copies, "late", step)
            last = step == horizon - 1
            slot_opts = ("bar", "late") if (relaxed and slot_b
                                            and not last) else ("bar",)
            dup_opts = (1, 2) if (relaxed and dup_b) else (1,)
            opts = [(s, c) for s in slot_opts for c in dup_opts]
            if relaxed:
                full = (2 if not last else 1) * 2
                counters["pruned"] += len(msgs) * (full - len(opts))
            combos = product(opts, repeat=len(msgs)) if msgs else [()]
            for combo in combos:
                f3 = dict(f2)
                strag2 = []
                bar = [(msg, c) for msg, (s, c) in zip(msgs, combo)
                       if s == "bar"]
                d_orders = (list(permutations(range(len(bar))))
                            if msg_b and len(bar) > 1
                            else [tuple(range(len(bar)))])
                for d_order in d_orders:
                    f4 = dict(f3)
                    for i in d_order:
                        msg, copies = bar[i]
                        m.deliver(msg, f4, copies, "bar", step)
                    strag2 = tuple(
                        (msg, c) for msg, (s, c) in zip(msgs, combo)
                        if s == "late")
                    rec = {"step": step, "order": list(order),
                           "msgs": [[msg[0], msg[1], s, c]
                                    for msg, (s, c) in zip(msgs, combo)],
                           "deliver_order": list(d_order)}
                    run_step(step + 1, f4, strag2, choices + [rec])

    exhausted = True
    try:
        run_step(0, m.initial_folds(), (), [])
    except _Diverged:
        exhausted = False
    except _Budget:
        exhausted = False

    det = len(finals) <= 1 and exhausted
    keys = sorted(finals)
    witness = finals[keys[0]] if keys else None
    divergent = finals[keys[1]] if len(keys) > 1 else None
    return ExploreResult(
        model="relaxed" if relaxed else "strict",
        num_gpus=num_gpus,
        horizon=horizon,
        deterministic=det,
        num_final_states=len(finals),
        states=counters["states"],
        schedules=counters["schedules"],
        pruned=counters["pruned"],
        exhausted=exhausted,
        independence=tuple(notes),
        witness_choices=witness,
        divergent_choices=divergent,
    )


# ---------------------------------------------------------------------------
# replay: choices -> full event trace (the replayable JSON documents)
# ---------------------------------------------------------------------------


def replay(program: GpuProgram, arrays: Sequence[ArrayModel],
           num_gpus: int, horizon: int, choices: list,
           model: str = "relaxed", primitive: str = "") -> dict:
    """Re-execute one recorded schedule, returning the trace document.

    The document is self-contained and replayable: feeding its
    ``choices`` back through :func:`replay` reproduces the identical
    event list and final state digest.
    """
    m = _Machine(program, arrays, num_gpus)
    m.events = []
    folds = m.initial_folds()
    stragglers: tuple = ()
    by_step = {c["step"]: c for c in choices}
    for step in range(horizon):
        rec = by_step.get(step, {"order": list(range(num_gpus)),
                                 "msgs": [], "deliver_order": []})
        for g in rec["order"]:
            m.compute(g, step, folds)
        msgs = []
        snaps = {g: m.snapshot_payload(g, folds) for g in range(num_gpus)}
        for g in range(num_gpus):
            for r in range(num_gpus):
                if r != g:
                    msgs.append((g, r, step, snaps[g]))
        m.events.append({"ev": "send", "step": step,
                         "payload": sorted(m.payload)})
        for (smsg, copies) in stragglers:
            m.deliver(smsg, folds, copies, "late", step)
        plan = rec["msgs"] or [[s, r, "bar", 1] for (s, r, _k, _p) in msgs]
        bar = []
        strag2 = []
        for msg, (_s, _r, slot, copies) in zip(msgs, plan):
            if slot == "bar":
                bar.append((msg, copies))
            else:
                strag2.append((msg, copies))
        order = rec.get("deliver_order") or list(range(len(bar)))
        for i in order:
            msg, copies = bar[i]
            m.deliver(msg, folds, copies, "bar", step)
        m.events.append({"ev": "barrier", "step": step})
        stragglers = tuple(strag2)
    return {
        "version": TRACE_VERSION,
        "primitive": primitive,
        "model": model,
        "gpus": num_gpus,
        "horizon": horizon,
        "choices": choices,
        "events": m.events,
        "final_state": m.digest(folds),
    }


def build_counterexample(program: GpuProgram, arrays: Sequence[ArrayModel],
                         result: ExploreResult,
                         primitive: str = "") -> Optional[dict]:
    """Render an ``ExploreResult`` divergence as a witness/divergent
    trace pair, or ``None`` when the exploration was deterministic."""
    if result.divergent_choices is None:
        return None
    witness = replay(program, arrays, result.num_gpus, result.horizon,
                     result.witness_choices or [], model=result.model,
                     primitive=primitive)
    divergent = replay(program, arrays, result.num_gpus, result.horizon,
                       result.divergent_choices, model=result.model,
                       primitive=primitive)
    first = 0
    wc = witness["choices"]
    dc = divergent["choices"]
    for i in range(min(len(wc), len(dc))):
        if wc[i] != dc[i]:
            first = i
            break
    return {
        "model": result.model,
        "gpus": result.num_gpus,
        "horizon": result.horizon,
        "first_divergent_step": first,
        "witness": witness,
        "divergent": divergent,
    }


# ---------------------------------------------------------------------------
# concrete mode: schedule exploration over a real binary op
# ---------------------------------------------------------------------------


def explore_op_schedules(fn, domain: Sequence) -> dict:
    """Explore merge schedules of a *concrete* combiner function.

    Two virtual contributors each deliver one update into a shared
    accumulator; the schedule space is (a) the two delivery orders and
    (b) an at-least-once re-delivery of a single update.  The op is
    order-independent iff every delivery order reaches the same final
    value for every start state and update pair, and redelivery-safe
    iff merging the same update twice equals merging it once.

    This quantifies over exactly the same space as
    :func:`repro.check.deep.certify.evaluate_op`'s commutativity and
    idempotency formulas — by construction, so the two provers must
    agree (the property test in ``tests/check/test_mc_property.py``
    enforces that).
    """
    order_cex = None
    dup_cex = None
    for s in domain:
        for a in domain:
            for b in domain:
                finals = set()
                trace = {}
                for perm in permutations((a, b)):
                    v = s
                    for upd in perm:
                        v = fn(v, upd)
                    finals.add(v)
                    trace[perm] = v
                if len(finals) > 1 and order_cex is None:
                    order_cex = {"start": s, "updates": (a, b),
                                 "finals": trace}
            once = fn(s, a)
            twice = fn(once, a)
            if twice != once and dup_cex is None:
                dup_cex = {"start": s, "update": a,
                           "once": once, "twice": twice}
    return {
        "order_independent": order_cex is None,
        "redelivery_safe": dup_cex is None,
        "order_counterexample": order_cex,
        "redelivery_counterexample": dup_cex,
    }


# ---------------------------------------------------------------------------
# trace rendering: schedule trace -> obs.Tracer (for chrome_trace export)
# ---------------------------------------------------------------------------


def schedule_trace_to_tracer(doc: dict, divergent_step: Optional[int] = None):
    """Convert a schedule-trace document into an :class:`obs.Tracer`
    so ``obs/chrome_trace.py`` can render it in Perfetto.

    Each compute event becomes an ``op`` span on its GPU track wrapped
    in a per-step ``superstep`` span; merges become ``comm`` spans on
    the shared communication row, annotated with their slot and copy
    count; the first divergent step (if given) gets an
    ``mc.divergence`` instant.
    """
    from ...obs.tracer import COMM_TRACK, Span, Tracer

    num_gpus = int(doc.get("gpus", 2))
    tracer = Tracer()
    tracer.primitive = doc.get("primitive", "") or "modelcheck"
    tracer.backend = "mc-%s" % doc.get("model", "strict")
    tracer.num_gpus = num_gpus
    cursor = [0.0] * num_gpus
    comm_cursor = [0.0]

    def comm_span(name: str, step: int, args: dict) -> None:
        tracer.spans.append(Span(
            name=name, cat="comm", track=COMM_TRACK, iteration=step,
            vt_start=comm_cursor[0], vt_dur=1.0, args=args))
        comm_cursor[0] += 1.0

    for ev in doc.get("events", []):
        kind = ev.get("ev")
        step = int(ev.get("step", 0))
        if kind == "compute":
            g = int(ev["gpu"])
            tracer.spans.append(Span(
                name="superstep %d" % step, cat="superstep", track=g,
                iteration=step, vt_start=cursor[g], vt_dur=2.0,
                args={"step": step}))
            tracer.spans.append(Span(
                name="compute", cat="op", track=g, iteration=step,
                vt_start=cursor[g], vt_dur=1.0, args={"step": step}))
            cursor[g] += 2.0
        elif kind in ("apply", "reset"):
            g = int(ev["gpu"])
            tracer.spans.append(Span(
                name="%s %s" % (kind, ev.get("array", "?")), cat="op",
                track=g, iteration=step, vt_start=cursor[g], vt_dur=0.5,
                args={k: v for k, v in sorted(ev.items())
                      if k not in ("ev",)}))
            cursor[g] += 0.5
        elif kind == "deliver":
            comm_span("merge %s->%s [%s x%d]" % (
                ev.get("from"), ev.get("gpu"), ev.get("slot", "bar"),
                int(ev.get("copies", 1))), step,
                {k: v for k, v in sorted(ev.items()) if k != "ev"})
        elif kind in ("peer-write", "msg-write"):
            comm_span("%s %s->%s '%s'" % (
                kind, ev.get("gpu"), ev.get("peer"),
                ev.get("array", "?")), step,
                {k: v for k, v in sorted(ev.items()) if k != "ev"})
        elif kind == "send":
            comm_span("send payload", step,
                      {"payload": ",".join(ev.get("payload", []))})
        elif kind == "barrier":
            tracer.events.append({"type": "barrier", "iteration": step,
                                  "vt": max(cursor + comm_cursor)})
    if divergent_step is not None:
        tracer.events.append({
            "type": "mc.divergence", "iteration": divergent_step,
            "vt": max(cursor + comm_cursor),
            "detail": "first schedule choice that changes the final state",
        })
    return tracer


def dump_trace(doc: dict) -> str:
    """Serialize a trace document byte-stably."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
