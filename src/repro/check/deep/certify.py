"""Algebraic combiner certification (REP114) and CombinerCertificate.

A :class:`~repro.core.combine.Combiner` carries programmer *claims*
(``commutative=True``, ``idempotent=True``).  The BSP race sanitizer and
the planned relaxed-barrier mode both trust those flags, so a wrong claim
silently converts a data race into "benign".  This module closes the loop:
each combiner op name resolves to concrete merge semantics
(:func:`repro.core.combine.op_semantics`) which are evaluated
**exhaustively** over a small finite domain —

* idempotent   — ``f(f(a, b), b) == f(a, b)``      for all a, b
  (re-applying an already-applied update is a no-op, the
  :class:`Combiner` docstring's definition)
* commutative  — ``f(f(s, a), b) == f(f(s, b), a)`` for all s, a, b
  (update application order is invisible in the merged state)
* associative  — ``f(f(a, b), c) == f(a, f(b, c))`` for all a, b, c

The result is a machine-checkable :class:`CombinerCertificate`.  Only
**over-claims** are findings: a declared property the evaluation refutes
(with the counterexample in the message).  Under-claiming is conservative
and allowed — declaring ``commutative=False`` for a commutative op costs
safety margin, not correctness.

Ops registered with ``fn=None`` (``witness``) are *declared
nondeterministic*: there is no merge function to certify, so they are
exempt from equational checks but can never be certified for
relaxed-barrier execution.

Two entry points:

* :func:`certify_module` — static, AST-based, used by
  ``repro check --deep``; resolves ``combiners = {...}`` declarations in
  problem classes without importing the module.
* :func:`certify_problem_combiners` — runtime, used by the
  :class:`~repro.core.enactor.Enactor` ``relaxed_barriers`` precondition
  on live :class:`Combiner` instances.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core import combine as _combine
from ...core.combine import Combiner, OpSemantics, op_semantics
from ..findings import Finding
from ..rules.base import ModuleContext

__all__ = [
    "CombinerCertificate",
    "evaluate_op",
    "certify_combiner",
    "certify_problem_combiners",
    "certify_module",
    "declared_combiners",
    "DEEP_CERTIFY_RULES",
]

DEEP_CERTIFY_RULES = {
    "REP114": (
        "combiner-certification",
        "declared combiner properties must survive exhaustive evaluation "
        "of the op's concrete semantics",
    ),
}

#: certificate status values
STATUS_CERTIFIED = "certified"
STATUS_REFUTED = "refuted"
STATUS_NONDETERMINISTIC = "nondeterministic"
STATUS_UNKNOWN_OP = "unknown-op"


@dataclass(frozen=True)
class CombinerCertificate:
    """Machine-checkable record of what was proven about one combiner.

    ``idempotent``/``commutative``/``associative`` are the *evaluated*
    truths (``None`` when nothing could be evaluated); the ``declared_*``
    fields echo the programmer's claims so consumers can audit the gap.
    """

    array: str                     # slice-array name the combiner guards
    op: str
    status: str                    # certified | refuted | nondeterministic | unknown-op
    declared_commutative: bool
    declared_idempotent: bool
    idempotent: Optional[bool] = None
    commutative: Optional[bool] = None
    associative: Optional[bool] = None
    domain: Tuple = ()
    #: property name -> counterexample tuple (as evaluated), for refuted
    counterexamples: Dict[str, Tuple] = field(default_factory=dict)
    note: str = ""

    @property
    def certified_order_independent(self) -> bool:
        """Whether this certificate licenses relaxed-barrier merging:
        the evaluation proved BOTH idempotency and commutativity (the
        declaration alone is never enough)."""
        return (
            self.status == STATUS_CERTIFIED
            and bool(self.idempotent)
            and bool(self.commutative)
        )

    @property
    def overclaims(self) -> List[str]:
        """Declared properties the evaluation refuted."""
        bad = []
        if self.declared_commutative and self.commutative is False:
            bad.append("commutative")
        if self.declared_idempotent and self.idempotent is False:
            bad.append("idempotent")
        return bad

    def to_dict(self) -> dict:
        return {
            "array": self.array,
            "op": self.op,
            "status": self.status,
            "declared": {
                "commutative": self.declared_commutative,
                "idempotent": self.declared_idempotent,
            },
            "evaluated": {
                "idempotent": self.idempotent,
                "commutative": self.commutative,
                "associative": self.associative,
            },
            "domain": list(self.domain),
            "counterexamples": {
                k: list(v) for k, v in sorted(self.counterexamples.items())
            },
            "certified_order_independent": self.certified_order_independent,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CombinerCertificate":
        declared = d.get("declared", {})
        evaluated = d.get("evaluated", {})
        return cls(
            array=d["array"],
            op=d["op"],
            status=d["status"],
            declared_commutative=bool(declared.get("commutative", False)),
            declared_idempotent=bool(declared.get("idempotent", False)),
            idempotent=evaluated.get("idempotent"),
            commutative=evaluated.get("commutative"),
            associative=evaluated.get("associative"),
            domain=tuple(d.get("domain", ())),
            counterexamples={
                k: tuple(v)
                for k, v in d.get("counterexamples", {}).items()
            },
            note=d.get("note", ""),
        )

    def describe(self) -> str:
        props = []
        for name, val in (
            ("idempotent", self.idempotent),
            ("commutative", self.commutative),
            ("associative", self.associative),
        ):
            if val is True:
                props.append(name)
        body = ", ".join(props) or self.status
        return f"{self.array}: {self.op} [{self.status}] ({body})"


def evaluate_op(sem: OpSemantics) -> Tuple[
    Optional[bool], Optional[bool], Optional[bool], Dict[str, Tuple]
]:
    """Exhaustively evaluate (idempotent, commutative, associative) for
    one op over its finite domain; returns the three verdicts plus the
    first counterexample found per refuted property."""
    fn = sem.fn
    if fn is None:
        return None, None, None, {}
    dom = sem.domain
    counter: Dict[str, Tuple] = {}

    idem = True
    for a, b in itertools.product(dom, repeat=2):
        if fn(fn(a, b), b) != fn(a, b):
            idem = False
            counter["idempotent"] = (a, b)
            break

    comm = True
    for s, a, b in itertools.product(dom, repeat=3):
        if fn(fn(s, a), b) != fn(fn(s, b), a):
            comm = False
            counter["commutative"] = (s, a, b)
            break

    assoc = True
    for a, b, c in itertools.product(dom, repeat=3):
        if fn(fn(a, b), c) != fn(a, fn(b, c)):
            assoc = False
            counter["associative"] = (a, b, c)
            break

    return idem, comm, assoc, counter


def certify_combiner(array: str, combiner: Combiner) -> CombinerCertificate:
    """Certify one live :class:`Combiner` declaration."""
    sem = op_semantics(combiner.op)
    if sem is None:
        return CombinerCertificate(
            array=array,
            op=combiner.op,
            status=STATUS_UNKNOWN_OP,
            declared_commutative=combiner.commutative,
            declared_idempotent=combiner.idempotent,
            note=(
                "no registered semantics for this op; register them with "
                "repro.core.combine.register_op_semantics to certify it"
            ),
        )
    if sem.fn is None:
        return CombinerCertificate(
            array=array,
            op=combiner.op,
            status=STATUS_NONDETERMINISTIC,
            declared_commutative=combiner.commutative,
            declared_idempotent=combiner.idempotent,
            domain=sem.domain,
            note=sem.note,
        )
    idem, comm, assoc, counter = evaluate_op(sem)
    cert = CombinerCertificate(
        array=array,
        op=combiner.op,
        status=STATUS_CERTIFIED,
        declared_commutative=combiner.commutative,
        declared_idempotent=combiner.idempotent,
        idempotent=idem,
        commutative=comm,
        associative=assoc,
        domain=sem.domain,
        counterexamples=counter,
        note=sem.note,
    )
    if cert.overclaims:
        cert = CombinerCertificate(
            **{**cert.__dict__, "status": STATUS_REFUTED}
        )
    return cert


def certify_problem_combiners(
    problem, arrays: Optional[List[str]] = None
) -> Dict[str, CombinerCertificate]:
    """Certify a live problem's declared combiners (Enactor entry point).

    ``arrays`` restricts certification to the slice arrays actually in
    play (e.g. only those allocated on the data slices); by default every
    declared combiner is certified.
    """
    certs: Dict[str, CombinerCertificate] = {}
    for name, combiner in sorted(problem.combiners.items()):
        if arrays is not None and name not in arrays:
            continue
        certs[name] = certify_combiner(name, combiner)
    return certs


# ---------------------------------------------------------------------------
# Static (AST) certification for `repro check --deep`


#: exported combiner constants resolvable by bare name in source
_KNOWN_COMBINER_CONSTANTS: Dict[str, Combiner] = {
    name: getattr(_combine, name)
    for name in ("MIN", "MAX", "SUM", "ANY", "WITNESS", "OVERWRITE")
}


def _literal_bool(node: Optional[ast.AST], default: bool) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return default


def _resolve_combiner_expr(
    node: ast.AST, module_constants: Dict[str, ast.AST], depth: int = 0
) -> Optional[Combiner]:
    """Resolve a combiners-dict value expression to a Combiner, without
    importing the module.  Handles the shipped idioms:

    * ``MIN`` / ``combine.MIN`` — exported constants by name
    * ``Combiner("sub", commutative=True, ...)`` — literal construction
    * a module-level name bound to either of the above
    """
    if depth > 4:
        return None
    if isinstance(node, ast.Name):
        if node.id in _KNOWN_COMBINER_CONSTANTS:
            return _KNOWN_COMBINER_CONSTANTS[node.id]
        if node.id in module_constants:
            return _resolve_combiner_expr(
                module_constants[node.id], module_constants, depth + 1
            )
        return None
    if isinstance(node, ast.Attribute):
        if node.attr in _KNOWN_COMBINER_CONSTANTS:
            return _KNOWN_COMBINER_CONSTANTS[node.attr]
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, (ast.Name, ast.Attribute))
    ):
        fname = (node.func.id if isinstance(node.func, ast.Name)
                 else node.func.attr)
        if fname != "Combiner":
            return None
        if not (node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            return None
        op = node.args[0].value
        commutative = True
        idempotent = False
        if len(node.args) > 1:
            commutative = _literal_bool(node.args[1], commutative)
        if len(node.args) > 2:
            idempotent = _literal_bool(node.args[2], idempotent)
        for kw in node.keywords:
            if kw.arg == "commutative":
                commutative = _literal_bool(kw.value, commutative)
            elif kw.arg == "idempotent":
                idempotent = _literal_bool(kw.value, idempotent)
        return Combiner(op, commutative=commutative, idempotent=idempotent)
    return None


def _module_constants(ctx: ModuleContext) -> Dict[str, ast.AST]:
    """Module-level simple name bindings (for toy-primitive idioms like
    ``NONCOMM = Combiner("sub", commutative=True)``)."""
    out: Dict[str, ast.AST] = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            t = stmt.targets[0]
            if isinstance(t, ast.Name):
                out[t.id] = stmt.value
    return out


def declared_combiners(
    ctx: ModuleContext,
) -> Dict[str, Dict[str, Combiner]]:
    """Statically resolve every problem class's ``combiners = {...}``
    declaration to live :class:`Combiner` objects, without importing
    the module.  Returns ``{problem class name: {array: Combiner}}``
    (unresolvable value expressions are skipped, same as
    :func:`certify_module`).  The model checker uses this to pair each
    iteration class with the combiner algebra its effects fold under.
    """
    out: Dict[str, Dict[str, Combiner]] = {}
    constants = _module_constants(ctx)
    for cls in ctx.problem_classes:
        combs: Dict[str, Combiner] = {}
        for stmt in cls.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not any(
                isinstance(t, ast.Name) and t.id == "combiners"
                for t in targets
            ):
                continue
            if not isinstance(value, ast.Dict):
                continue
            for key, val in zip(value.keys, value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                combiner = _resolve_combiner_expr(val, constants)
                if combiner is not None:
                    combs[key.value] = combiner
        if combs:
            out[cls.name] = combs
    return out


def certify_module(
    ctx: ModuleContext,
) -> Tuple[List[CombinerCertificate], List[Finding]]:
    """Statically certify every combiners declaration in a module.

    Returns the certificates plus REP114 findings for every over-claim
    (a declared property the exhaustive evaluation refuted).  Unknown
    ops declared order-independent get a warning-severity REP114 — their
    claims are unverifiable until semantics are registered.
    """
    certificates: List[CombinerCertificate] = []
    findings: List[Finding] = []
    constants = _module_constants(ctx)
    rule_name, _ = DEEP_CERTIFY_RULES["REP114"]
    for cls in ctx.problem_classes:
        for stmt in cls.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not any(
                isinstance(t, ast.Name) and t.id == "combiners"
                for t in targets
            ):
                continue
            if not isinstance(value, ast.Dict):
                continue
            for key, val in zip(value.keys, value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                array = key.value
                combiner = _resolve_combiner_expr(val, constants)
                if combiner is None:
                    continue  # unresolvable expression: runtime-only
                cert = certify_combiner(array, combiner)
                certificates.append(cert)
                site = val
                for prop in cert.overclaims:
                    ce = cert.counterexamples.get(prop, ())
                    findings.append(Finding(
                        rule_id="REP114",
                        rule=rule_name,
                        path=ctx.path,
                        line=getattr(site, "lineno", stmt.lineno),
                        col=getattr(site, "col_offset", 0) + 1,
                        message=(
                            f"combiner for '{array}' declares "
                            f"{prop}=True but op '{cert.op}' is not "
                            f"{prop}: counterexample "
                            f"{_render_counterexample(prop, ce, cert.op)} "
                            f"over domain {list(cert.domain)}"
                        ),
                        extra={
                            "cls": cls.name, "array": array, "op": cert.op,
                            "property": prop,
                            "counterexample": repr(tuple(ce)),
                        },
                    ))
                if (
                    cert.status == STATUS_UNKNOWN_OP
                    and (combiner.commutative or combiner.idempotent)
                ):
                    findings.append(Finding(
                        rule_id="REP114",
                        rule=rule_name,
                        path=ctx.path,
                        line=getattr(site, "lineno", stmt.lineno),
                        col=getattr(site, "col_offset", 0) + 1,
                        severity="warning",
                        message=(
                            f"combiner for '{array}' claims order-"
                            f"independence but op '{cert.op}' has no "
                            "registered semantics to certify the claim; "
                            "register them with repro.core.combine."
                            "register_op_semantics"
                        ),
                        extra={"cls": cls.name, "array": array,
                               "op": cert.op},
                    ))
    return certificates, findings


def _render_counterexample(prop: str, ce: Tuple, op: str) -> str:
    if prop == "commutative" and len(ce) == 3:
        s, a, b = ce
        return (f"apply({s};{a},{b}) != apply({s};{b},{a})")
    if prop == "idempotent" and len(ce) == 2:
        a, b = ce
        return f"{op}({op}({a},{b}),{b}) != {op}({a},{b})"
    return repr(tuple(ce))
