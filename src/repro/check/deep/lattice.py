"""Abstract domain for the deep dataflow tier.

The interpreter (``repro.check.deep.interp``) propagates one
:class:`AbstractValue` per expression.  The domain is deliberately small —
three orthogonal facets cover the REP110–REP112 properties:

* **dtype kind** — where the value's numeric width comes from.  ``ID`` and
  ``VALUE`` are the IdConfig-parameterized kinds (``ids.vertex_dtype`` /
  ``ids.value_dtype``); ``INT``/``FLOAT``/``BOOL`` are concrete Python or
  numpy kinds; ``UNKNOWN`` is top.  The join is width-directed: FLOAT
  absorbs integer kinds (that absorption *into an integer slice array* is
  exactly the silent upcast REP110 flags).
* **origin** — which memory the value aliases. ``SLICE`` is this GPU's own
  slice arrays, ``MSG`` a received message payload (peer-visible: the
  comm layer may hand the receiver a view of the sender's buffers),
  ``PEER`` another GPU's slice, ``FRESH`` newly materialized data, and
  ``OPAQUE`` anything the interpreter cannot place.
* **view** — whether the value is a *basic-slice view* of its origin
  (``arr[1:]``, ``arr.T``, ``.reshape``...).  Views matter because the
  BSP sanitizer's shadow wrappers do not survive slicing
  (docs/static_analysis.md, "known coverage limits"): a write through a
  view is invisible to the dynamic tier, so the static tier must flag it
  (REP111).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "DTYPE_ID", "DTYPE_VALUE", "DTYPE_INT", "DTYPE_FLOAT", "DTYPE_BOOL",
    "DTYPE_UNKNOWN",
    "ORIGIN_SLICE", "ORIGIN_MSG", "ORIGIN_PEER", "ORIGIN_FRESH",
    "ORIGIN_OPAQUE",
    "AbstractValue", "join_dtype", "join", "INTEGER_KINDS",
]

# -- dtype kinds ------------------------------------------------------------
DTYPE_ID = "id"          # IdConfig vertex dtype (integer, width-parameterized)
DTYPE_VALUE = "value"    # IdConfig value dtype (float, width-parameterized)
DTYPE_INT = "int"        # concrete integer (python int, np.int64, ...)
DTYPE_FLOAT = "float"    # concrete float (python float, np.float64, ...)
DTYPE_BOOL = "bool"
DTYPE_UNKNOWN = "unknown"

#: kinds whose storage is integral — a FLOAT stored into one truncates
#: silently (numpy casts on subscript assignment without warning)
INTEGER_KINDS = frozenset({DTYPE_ID, DTYPE_INT, DTYPE_BOOL})

#: float-like kinds (VALUE is float by IdConfig convention)
_FLOATISH = frozenset({DTYPE_FLOAT, DTYPE_VALUE})

# -- origins ----------------------------------------------------------------
ORIGIN_SLICE = "slice"   # this GPU's own DataSlice array
ORIGIN_MSG = "msg"       # received Message payload (peer-visible memory)
ORIGIN_PEER = "peer"     # another GPU's DataSlice (REP106's territory)
ORIGIN_FRESH = "fresh"   # newly materialized (copy, unique, fancy index...)
ORIGIN_OPAQUE = "opaque"  # unknown provenance


def join_dtype(a: str, b: str) -> str:
    """Dtype join for binary numpy ops: float-ness dominates.

    ``ID op ID`` stays ``ID`` (width preserved); any float operand makes
    the result concrete FLOAT unless both sides are the parameterized
    VALUE kind (VALUE op VALUE stays VALUE).
    """
    if a == b:
        return a
    if DTYPE_UNKNOWN in (a, b):
        return DTYPE_UNKNOWN
    if a in _FLOATISH or b in _FLOATISH:
        return DTYPE_FLOAT if a != b else a
    # integer-kind mixtures: a concrete int absorbs BOOL; ID survives
    # only against BOOL/INT scalars (indexing arithmetic)
    if DTYPE_ID in (a, b):
        return DTYPE_ID
    return DTYPE_INT


@dataclass(frozen=True)
class AbstractValue:
    """One expression's abstract state (immutable; use helpers to derive)."""

    dtype: str = DTYPE_UNKNOWN
    origin: str = ORIGIN_OPAQUE
    #: slice-array name (origin SLICE/PEER) or payload field (origin MSG)
    base: Optional[str] = None
    #: True when this is a basic-slice/reshape view of its origin
    is_view: bool = False
    #: True for array-shaped values (False for scalars); views/writes only
    #: make sense on arrays
    is_array: bool = False

    def as_view(self) -> "AbstractValue":
        return replace(self, is_view=True)

    def as_fresh(self) -> "AbstractValue":
        """A materialized copy: provenance (and view-ness) is severed."""
        return replace(self, origin=ORIGIN_FRESH, base=None, is_view=False)

    def with_dtype(self, dtype: str) -> "AbstractValue":
        return replace(self, dtype=dtype)

    @property
    def aliases_shared(self) -> bool:
        """Whether writes through this value land in memory another GPU
        (or the shadow-tracked slice) can observe."""
        return self.origin in (ORIGIN_SLICE, ORIGIN_MSG, ORIGIN_PEER)


#: the completely-unknown value (top)
TOP = AbstractValue()


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two abstract values (e.g. ternary arms)."""
    if a == b:
        return a
    return AbstractValue(
        dtype=a.dtype if a.dtype == b.dtype else join_dtype(a.dtype, b.dtype),
        origin=a.origin if a.origin == b.origin else ORIGIN_OPAQUE,
        base=a.base if a.base == b.base else None,
        is_view=a.is_view or b.is_view,
        is_array=a.is_array or b.is_array,
    )
