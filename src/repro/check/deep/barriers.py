"""Barrier-discipline verification (REP113).

The backends' determinism contract (``core/backend.py`` docstring) rests
on three structural properties of the *framework* code — not the
primitives:

1. every concrete ``map_supersteps`` returns results in **submission
   order** (never completion order), so list position == GPU index;
2. the enactor dispatches the supersteps in **ascending GPU index**
   (via ``backend.run_iteration``, whose default builds the closure
   list in ``gpu_indices`` order and defers to ``map_supersteps``) and
   merges the staged :class:`GpuStepEffects` by iterating that result
   list directly — no re-ordering between dispatch and merge;
3. the merge happens at the **barrier point**: after the merge loop the
   enactor calls ``machine.barrier(...)`` before anything else consumes
   the merged state, and there is exactly one merge site.

These used to be prose ("asserted in test_backend_determinism.py" checks
the *observable* equivalence, not the mechanism).  This verifier walks
the two framework modules and proves each obligation syntactically; a
refactor that gathers futures with ``as_completed``, sorts the results,
or merges before the barrier turns a silent determinism regression into
a REP113 finding.

Each obligation is reported as proved/violated in a
:class:`BarrierReport`; violations also flow through the normal
findings pipeline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..findings import Finding

__all__ = [
    "BarrierReport",
    "verify_barrier_discipline",
    "DEEP_BARRIER_RULES",
    "OBLIGATIONS",
]

DEEP_BARRIER_RULES = {
    "REP113": (
        "barrier-discipline",
        "staged GpuStepEffects must be gathered in submission order and "
        "merged only at barrier points in GPU-index order",
    ),
}

#: obligation id -> human description (stable: consumed by docs/tests)
OBLIGATIONS: Dict[str, str] = {
    "backend-return-order": (
        "every concrete map_supersteps returns results in submission "
        "order (in-order comprehension over the closures or over "
        "in-order-submitted futures)"
    ),
    "no-completion-order-gather": (
        "no backend gathers futures in completion order (as_completed, "
        "wait, add_done_callback)"
    ),
    "dispatch-in-gpu-index-order": (
        "the enactor dispatches supersteps in ascending GPU-index order "
        "(no reversed/sorted/shuffled closure list or gpu_indices)"
    ),
    "merge-in-gpu-index-order": (
        "the merge loop iterates the dispatch result list directly, "
        "preserving GPU-index order"
    ),
    "merge-at-barrier": (
        "each merge loop is followed by machine.barrier(...) before the "
        "superstep loop continues"
    ),
    "single-merge-site": (
        "staged effects are merged by exactly one loop (no second "
        "partial-merge site)"
    ),
}

#: future-gathering helpers that break submission order
_COMPLETION_ORDER_NAMES = {"as_completed", "wait", "add_done_callback"}
#: enactor-side dispatch entry points whose assigned result is the merge
#: input: the legacy closure-list call and the structured per-iteration
#: call (serial/threads default to closures, processes to a pipe
#: protocol — both must return results in gpu_indices order)
_DISPATCH_NAMES = {"map_supersteps", "run_iteration"}
#: iterator wrappers that re-order a list
_REORDERING_CALLS = {"sorted", "reversed", "set", "frozenset", "shuffle"}


@dataclass
class BarrierReport:
    """Outcome of one barrier-discipline verification run."""

    #: obligation id -> proved?
    obligations: Dict[str, bool] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def all_proved(self) -> bool:
        return all(self.obligations.values())

    def describe(self) -> str:
        proved = sum(1 for ok in self.obligations.values() if ok)
        return (
            f"barrier discipline: {proved}/{len(self.obligations)} "
            "obligations proved"
        )

    def to_dict(self) -> dict:
        return {
            "obligations": {
                k: self.obligations[k] for k in sorted(self.obligations)
            },
            "all_proved": self.all_proved,
            "findings": [f.to_dict() for f in self.findings],
        }


def _finding(path: str, node: ast.AST, obligation: str, message: str,
             **extra: str) -> Finding:
    name, _ = DEEP_BARRIER_RULES["REP113"]
    return Finding(
        rule_id="REP113",
        rule=name,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        extra=dict(extra, obligation=obligation),
    )


def _call_name(node: ast.AST) -> Optional[str]:
    """Bare callable name of a Call's func (Name or trailing Attribute)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_in_order_gather(
    ret: ast.expr,
    fns_param: str,
    local_assigns: Dict[str, ast.expr],
    depth: int = 0,
) -> bool:
    """Whether a return expression provably preserves submission order.

    Accepts ``[fn() for fn in fns]`` (direct in-order execution) and
    ``[f.result() for f in futures]`` where ``futures`` was built by an
    in-order comprehension over the closures (``[pool.submit(fn) for fn
    in fns]``).  A bare name resolves through local assignments.
    """
    if depth > 4:
        return False
    if isinstance(ret, ast.Name):
        if ret.id not in local_assigns:
            return False
        return _is_in_order_gather(
            local_assigns[ret.id], fns_param, local_assigns, depth + 1
        )
    if not isinstance(ret, ast.ListComp) or len(ret.generators) != 1:
        return False
    gen = ret.generators[0]
    if gen.ifs or gen.is_async:
        return False  # filtering changes positions; cannot prove order
    src = gen.iter
    if isinstance(src, ast.Name):
        if src.id == fns_param:
            return True  # iterating the closures themselves, in order
        if src.id in local_assigns:
            return _is_in_order_gather(
                local_assigns[src.id], fns_param, local_assigns, depth + 1
            )
    return False


def _check_backend_module(path: str, tree: ast.Module,
                          report: BarrierReport) -> None:
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        for fn in (n for n in cls.body if isinstance(n, ast.FunctionDef)):
            if fn.name != "map_supersteps":
                continue
            params = [a.arg for a in fn.args.args if a.arg != "self"]
            if not params:
                continue
            fns_param = params[0]
            if any(
                isinstance(n, ast.Raise) for n in ast.walk(fn)
            ) and not any(isinstance(n, ast.Return) for n in ast.walk(fn)):
                continue  # abstract base: raises NotImplementedError
            local_assigns: Dict[str, ast.expr] = {}
            for node in ast.walk(fn):
                if (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    local_assigns[node.targets[0].id] = node.value
            for node in ast.walk(fn):
                cname = _call_name(node) if isinstance(node, (
                    ast.Call, ast.Name, ast.Attribute)) else None
                if cname in _COMPLETION_ORDER_NAMES:
                    report.obligations["no-completion-order-gather"] = False
                    report.findings.append(_finding(
                        path, node, "no-completion-order-gather",
                        f"{cls.name}.map_supersteps uses '{cname}': "
                        "gathering futures in completion order breaks the "
                        "GPU-index-order determinism contract — gather in "
                        "submission order instead",
                        cls=cls.name,
                    ))
            for node in ast.walk(fn):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if not _is_in_order_gather(node.value, fns_param,
                                           local_assigns):
                    report.obligations["backend-return-order"] = False
                    report.findings.append(_finding(
                        path, node, "backend-return-order",
                        f"{cls.name}.map_supersteps: cannot prove this "
                        "return preserves submission order; return an "
                        "in-order comprehension over the closures or over "
                        "in-order-submitted futures",
                        cls=cls.name,
                    ))


def _barrier_lines(fn: ast.FunctionDef) -> List[int]:
    lines = []
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "barrier"):
            lines.append(node.lineno)
    return lines


def _check_enactor_module(path: str, tree: ast.Module,
                          report: BarrierReport) -> None:
    enact_fns = [
        fn
        for cls in ast.walk(tree) if isinstance(cls, ast.ClassDef)
        for fn in cls.body
        if isinstance(fn, ast.FunctionDef) and fn.name == "enact"
    ]
    for fn in enact_fns:
        # names bound from a dispatch call (map_supersteps or
        # run_iteration), and the argument names those dispatches consume
        result_names: List[str] = []
        dispatch_args: List[str] = []
        dispatch_calls: List[ast.Call] = []
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _call_name(node.value) in _DISPATCH_NAMES
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                result_names.append(node.targets[0].id)
                dispatch_calls.append(node.value)
                for arg in node.value.args:
                    if isinstance(arg, ast.Name):
                        dispatch_args.append(arg.id)
        if not result_names:
            report.obligations["single-merge-site"] = False
            report.findings.append(_finding(
                path, fn, "single-merge-site",
                "enact() never assigns a dispatch (map_supersteps / "
                "run_iteration) result: the verifier cannot locate the "
                "merge site",
            ))
            continue

        # gpu_indices handed to the dispatch must not pass through a
        # re-ordering wrapper inline (sorted(...), reversed(...))
        for call in dispatch_calls:
            for arg in call.args:
                for sub in ast.walk(arg):
                    if (isinstance(sub, ast.Call)
                            and _call_name(sub) in _REORDERING_CALLS):
                        report.obligations[
                            "dispatch-in-gpu-index-order"] = False
                        report.findings.append(_finding(
                            path, sub, "dispatch-in-gpu-index-order",
                            f"a dispatch argument is built through "
                            f"'{_call_name(sub)}': dispatch must follow "
                            "ascending GPU index so result positions are "
                            "GPU indices",
                        ))

        # dispatch order: the closure lists must not be built through a
        # re-ordering wrapper
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in dispatch_args):
                continue
            for sub in ast.walk(node.value):
                if (isinstance(sub, ast.Call)
                        and _call_name(sub) in _REORDERING_CALLS):
                    report.obligations["dispatch-in-gpu-index-order"] = False
                    report.findings.append(_finding(
                        path, sub, "dispatch-in-gpu-index-order",
                        f"superstep closures are built through "
                        f"'{_call_name(sub)}': dispatch must follow "
                        "ascending GPU index so result positions are "
                        "GPU indices",
                    ))

        merge_loops = [
            node for node in ast.walk(fn)
            if isinstance(node, ast.For)
            and (
                (isinstance(node.iter, ast.Name)
                 and node.iter.id in result_names)
                or (isinstance(node.iter, ast.Call)
                    and any(isinstance(a, ast.Name)
                            and a.id in result_names
                            for a in node.iter.args))
            )
        ]
        if len(merge_loops) > 1:
            report.obligations["single-merge-site"] = False
            for loop in merge_loops[1:]:
                report.findings.append(_finding(
                    path, loop, "single-merge-site",
                    "staged effects are merged at more than one site; a "
                    "second merge loop can interleave with barrier state",
                ))
        if not merge_loops:
            report.obligations["merge-at-barrier"] = False
            report.findings.append(_finding(
                path, fn, "merge-at-barrier",
                "enact() has no merge loop over the map_supersteps "
                "results; staged effects are never applied",
            ))
            continue
        barriers = _barrier_lines(fn)
        for loop in merge_loops:
            if isinstance(loop.iter, ast.Call):
                report.obligations["merge-in-gpu-index-order"] = False
                report.findings.append(_finding(
                    path, loop, "merge-in-gpu-index-order",
                    f"the merge loop iterates "
                    f"'{_call_name(loop.iter)}(...)' instead of the "
                    "result list itself: any wrapper may re-order the "
                    "staged effects; iterate the list directly",
                ))
            merge_end = max(
                (getattr(n, "lineno", loop.lineno)
                 for n in ast.walk(loop)), default=loop.lineno
            )
            if not any(b >= merge_end for b in barriers):
                report.obligations["merge-at-barrier"] = False
                report.findings.append(_finding(
                    path, loop, "merge-at-barrier",
                    "no machine.barrier(...) call follows this merge "
                    "loop: staged effects must be merged at the barrier "
                    "point, not mid-superstep",
                ))


def verify_barrier_discipline(
    backend: Optional[Tuple[str, str]] = None,
    enactor: Optional[Tuple[str, str]] = None,
) -> BarrierReport:
    """Verify the framework's barrier obligations.

    ``backend``/``enactor`` are optional ``(path, source)`` overrides
    (used by tests to check mutated variants); by default the installed
    ``repro.core.backend`` / ``repro.core.enactor`` sources are read.
    """
    report = BarrierReport(
        obligations={name: True for name in OBLIGATIONS}
    )
    if backend is None:
        backend = _read_module_source("repro.core.backend")
    if enactor is None:
        enactor = _read_module_source("repro.core.enactor")
    b_path, b_src = backend
    e_path, e_src = enactor
    _check_backend_module(b_path, ast.parse(b_src, filename=b_path), report)
    _check_enactor_module(e_path, ast.parse(e_src, filename=e_path), report)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report


def _read_module_source(modname: str) -> Tuple[str, str]:
    import importlib

    mod = importlib.import_module(modname)
    path = mod.__file__ or modname
    with open(path, "r", encoding="utf-8") as fh:
        return path, fh.read()
