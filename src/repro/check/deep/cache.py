"""Per-file memoization cache for the deep analysis tiers.

``repro check --deep``/``--mc`` re-run whole-module static analysis on
every invocation; in CI the check-deep job analyzes the same unchanged
modules on every push.  This cache keys each module's results on its
content identity so unchanged files are never re-analyzed:

* fast path — ``(mtime_ns, size)`` match ⇒ trust the entry without
  reading the file twice;
* slow path — stat changed (fresh checkout, touch) ⇒ compare the
  source's SHA-256; a content match revalidates the entry in place.

Entries are invalidated by :data:`ANALYSIS_VERSION`, which must be
bumped whenever any deep-tier rule logic changes (new rules, changed
classifications) — a stale cache must never mask a new finding.  The
store is one JSON document under ``.repro-check-cache/`` (git-ignored);
``--no-cache`` bypasses it entirely.

Payloads are plain dicts of ``to_dict()`` forms; the report layer
rehydrates them through the matching ``from_dict`` constructors
(:class:`~repro.check.findings.Finding`,
:class:`~repro.check.deep.certify.CombinerCertificate`,
:class:`~repro.check.deep.modelcheck.ScheduleCertificate`).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

__all__ = ["ANALYSIS_VERSION", "DeepCheckCache", "DEFAULT_CACHE_DIR"]

#: bump on ANY change to deep-tier analysis semantics (interp, certify,
#: modelcheck, schedules): entries from other versions are discarded
ANALYSIS_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-check-cache"
_STORE_NAME = "deep.json"


def _stable_path(path: str) -> str:
    """Same normalization the baseline uses, so cache keys survive
    running from a different working directory."""
    p = path.replace("\\", "/")
    marker = "src/"
    idx = p.rfind("/" + marker)
    if idx >= 0:
        return p[idx + 1:]
    if p.startswith(marker):
        return p
    return p.lstrip("./")


def _sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class DeepCheckCache:
    """Content-addressed result cache for ``--deep``/``--mc`` analysis.

    One instance per CLI invocation: ``get`` / ``put`` during the walk,
    one ``save`` at the end.  All failures (unreadable store, bad JSON,
    unwritable directory) degrade to cache misses — the cache must never
    change analysis results, only skip recomputing them.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.store_path = os.path.join(root, _STORE_NAME)
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.store_path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict):
            return
        if doc.get("analysis_version") != ANALYSIS_VERSION:
            return  # rule logic changed: every entry is stale
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                k: v for k, v in entries.items() if isinstance(v, dict)
            }

    @staticmethod
    def _key(path: str, tier: str) -> str:
        return "%s::%s" % (tier, _stable_path(path))

    def get(self, path: str, source: str, tier: str) -> Optional[dict]:
        """Return the cached payload for ``(path, tier)`` if the file is
        unchanged, else ``None``."""
        entry = self._entries.get(self._key(path, tier))
        if entry is None:
            self.misses += 1
            return None
        try:
            st = os.stat(path)
            stat_match = (entry.get("mtime_ns") == st.st_mtime_ns
                          and entry.get("size") == st.st_size)
        except OSError:
            stat_match = False
        if not stat_match:
            if entry.get("sha256") != _sha256(source):
                self.misses += 1
                return None
            # same content, new stat (fresh checkout): revalidate
            try:
                st = os.stat(path)
                entry["mtime_ns"] = st.st_mtime_ns
                entry["size"] = st.st_size
                self._dirty = True
            except OSError:
                pass
        self.hits += 1
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, path: str, source: str, tier: str,
            payload: dict) -> None:
        entry = {
            "sha256": _sha256(source),
            "payload": payload,
        }
        try:
            st = os.stat(path)
            entry["mtime_ns"] = st.st_mtime_ns
            entry["size"] = st.st_size
        except OSError:
            pass
        self._entries[self._key(path, tier)] = entry
        self._dirty = True

    def save(self) -> bool:
        """Persist the store; returns False (and stays silent) when the
        cache directory cannot be written."""
        if not self._dirty:
            return True
        doc = {
            "analysis_version": ANALYSIS_VERSION,
            "tool": "repro-check-deep",
            "entries": self._entries,
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            tmp = self.store_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.store_path)
        except OSError:
            return False
        self._dirty = False
        return True

    def describe(self) -> str:
        return "deep-check cache: %d hit%s, %d miss%s" % (
            self.hits, "" if self.hits == 1 else "s",
            self.misses, "" if self.misses == 1 else "es")
