"""Deep analysis tier: ``python -m repro check --deep``.

Where the syntactic tier (``repro.check.rules``, REP101–109) pattern-
matches source text, this tier does real static analysis over primitive
modules and the framework itself:

* :mod:`~repro.check.deep.interp` — abstract interpretation of hook
  bodies over a dtype/origin/view lattice (REP110 silent-upcast,
  REP111 alias-write, REP112 superstep-escape);
* :mod:`~repro.check.deep.certify` — exhaustive algebraic certification
  of declared combiners, emitting :class:`CombinerCertificate`
  (REP114 combiner-certification);
* :mod:`~repro.check.deep.barriers` — structural verification of the
  backend/enactor barrier discipline (REP113);
* :mod:`~repro.check.deep.modelcheck` +
  :mod:`~repro.check.deep.schedules` — the superstep interleaving model
  checker (``--mc``): hot hooks compile to per-GPU effect summaries
  whose schedules are exhaustively explored under strict and relaxed
  barrier models, emitting :class:`ScheduleCertificate` (REP116
  non-commutative-effects, REP117 relaxed-barrier-unsafe) with
  replayable counterexample schedules;
* :mod:`~repro.check.deep.sarif` — SARIF 2.1.0 output for CI ingestion;
* :mod:`~repro.check.deep.baseline` — fingerprint-based suppression so
  CI gates on *new* findings only;
* :mod:`~repro.check.deep.cache` — per-file mtime+hash memoization of
  ``--deep``/``--mc`` results under ``.repro-check-cache/``.

Inline waivers (``# repro-check: disable=REP111 -- reason``) apply to
deep findings exactly as they do to syntactic ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..findings import Finding
from ..lint import _collect_waivers, _waived, iter_python_files
from ..rules.base import ModuleContext
from .barriers import (
    DEEP_BARRIER_RULES,
    BarrierReport,
    verify_barrier_discipline,
)
from .certify import (
    DEEP_CERTIFY_RULES,
    CombinerCertificate,
    certify_combiner,
    certify_module,
    certify_problem_combiners,
)
from .interp import DEEP_INTERP_RULES, analyze_module
from .baseline import (
    fingerprint,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .cache import ANALYSIS_VERSION, DEFAULT_CACHE_DIR, DeepCheckCache
from .modelcheck import (
    DEEP_MC_RULES,
    ScheduleCertificate,
    certify_schedule_for,
    modelcheck_module,
)
from .sarif import findings_to_sarif

__all__ = [
    "DEEP_RULES",
    "DeepReport",
    "deep_analyze_source",
    "deep_analyze_paths",
    "modelcheck_source",
    "CombinerCertificate",
    "ScheduleCertificate",
    "certify_combiner",
    "certify_problem_combiners",
    "certify_schedule_for",
    "verify_barrier_discipline",
    "BarrierReport",
    "findings_to_sarif",
    "fingerprint",
    "load_baseline",
    "split_baselined",
    "write_baseline",
    "DeepCheckCache",
    "DEFAULT_CACHE_DIR",
    "ANALYSIS_VERSION",
]

#: rule_id -> (name, description) for every rule this tier can emit
DEEP_RULES: Dict[str, Tuple[str, str]] = {
    **DEEP_INTERP_RULES,
    **DEEP_BARRIER_RULES,
    **DEEP_CERTIFY_RULES,
    **DEEP_MC_RULES,
}


@dataclass
class DeepReport:
    """Everything one ``--deep``/``--mc`` run produced."""

    findings: List[Finding] = field(default_factory=list)
    certificates: List[CombinerCertificate] = field(default_factory=list)
    schedule_certificates: List[ScheduleCertificate] = field(
        default_factory=list)
    barrier: Optional[BarrierReport] = None
    cache_note: str = ""

    def render_certificates(self) -> str:
        if not self.certificates:
            return "combiner certificates: none"
        lines = ["combiner certificates:"]
        for cert in self.certificates:
            lines.append(f"  {cert.describe()}")
        return "\n".join(lines)

    def render_schedule_certificates(self) -> str:
        if not self.schedule_certificates:
            return "schedule certificates: none"
        lines = ["schedule certificates:"]
        for cert in self.schedule_certificates:
            lines.append(f"  {cert.describe()}")
        return "\n".join(lines)


def deep_analyze_source(
    source: str, path: str = "<string>"
) -> Tuple[List[Finding], List[CombinerCertificate]]:
    """Deep-analyze one source string (interp + combiner certification).

    Waivers are honored; findings come back sorted by (line, col, rule).
    """
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return (
            [Finding(
                rule_id="REP000", rule="parse-error", path=path,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"cannot parse module: {exc.msg}",
            )],
            [],
        )
    waivers = _collect_waivers(source)
    findings = list(analyze_module(ctx))
    certificates, cert_findings = certify_module(ctx)
    findings.extend(cert_findings)
    findings = [f for f in findings if not _waived(f, waivers)]
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings, certificates


def modelcheck_source(
    source: str, path: str = "<string>"
) -> Tuple[List[Finding], List[ScheduleCertificate]]:
    """Model-check one source string (REP116/REP117 + schedule certs).

    Waivers are honored; findings come back sorted by (line, col, rule).
    """
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return (
            [Finding(
                rule_id="REP000", rule="parse-error", path=path,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"cannot parse module: {exc.msg}",
            )],
            [],
        )
    waivers = _collect_waivers(source)
    findings, certificates = modelcheck_module(ctx)
    findings = [f for f in findings if not _waived(f, waivers)]
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings, certificates


def deep_analyze_paths(
    paths: Iterable[str],
    verify_framework: bool = True,
    deep: bool = True,
    mc: bool = False,
    cache: Optional[DeepCheckCache] = None,
) -> DeepReport:
    """Run the requested deep tiers over every ``.py`` file under paths.

    ``deep`` runs the abstract-interpretation + combiner-certification
    tier (REP110–114); ``mc`` runs the superstep interleaving model
    checker (REP116/117).  ``verify_framework`` additionally runs the
    barrier-discipline verifier over the installed ``repro.core``
    backend/enactor (part of the ``deep`` tier: their obligations hold
    for every run regardless of which primitive paths were analyzed).
    ``cache`` (a :class:`DeepCheckCache`) skips re-analysis of files
    whose content is unchanged.  Findings are globally sorted by (path,
    line, col, rule) for stable CI diffs.
    """
    report = DeepReport()
    for f in iter_python_files(paths):
        source = f.read_text(encoding="utf-8")
        path = str(f)
        if deep:
            payload = cache.get(path, source, "deep") if cache else None
            if payload is not None:
                findings = [Finding.from_dict(d)
                            for d in payload.get("findings", [])]
                certs = [CombinerCertificate.from_dict(d)
                         for d in payload.get("certificates", [])]
            else:
                findings, certs = deep_analyze_source(source, path)
                if cache is not None:
                    cache.put(path, source, "deep", {
                        "findings": [x.to_dict() for x in findings],
                        "certificates": [x.to_dict() for x in certs],
                    })
            report.findings.extend(findings)
            report.certificates.extend(certs)
        if mc:
            payload = cache.get(path, source, "mc") if cache else None
            if payload is not None:
                findings = [Finding.from_dict(d)
                            for d in payload.get("findings", [])]
                scerts = [ScheduleCertificate.from_dict(d)
                          for d in payload.get("schedule_certificates", [])]
            else:
                findings, scerts = modelcheck_source(source, path)
                if cache is not None:
                    cache.put(path, source, "mc", {
                        "findings": [x.to_dict() for x in findings],
                        "schedule_certificates": [
                            x.to_dict() for x in scerts],
                    })
            report.findings.extend(findings)
            report.schedule_certificates.extend(scerts)
    if deep and verify_framework:
        report.barrier = verify_barrier_discipline()
        report.findings.extend(report.barrier.findings)
    if cache is not None:
        cache.save()
        report.cache_note = cache.describe()
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report.certificates.sort(key=lambda c: (c.array, c.op))
    report.schedule_certificates.sort(key=lambda c: (c.path, c.primitive))
    return report
