"""Baseline suppression for deep findings: CI gates on *new* findings.

A deep tier that must be finding-free from day one can never ship new
rules; a baseline file makes the gate incremental instead.  Each known
finding is recorded by a **fingerprint** that survives unrelated edits:
the SHA-1 of (normalized path | rule id | sorted extra context |
message), truncated to 16 hex chars.  Line/column numbers are
deliberately excluded — inserting a line above a baselined finding must
not resurrect it.

The committed baseline (``check_deep_baseline.json``) is loaded by
``repro check --deep --baseline <file>``; matching findings are
suppressed (and counted), anything new fails the gate.
``--write-baseline`` regenerates the file from the current findings.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Tuple

from ..findings import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "baseline_document",
    "split_baselined",
]

_BASELINE_VERSION = 1

#: extra keys excluded from fingerprints: run metadata that legitimately
#: changes without the finding itself changing (e.g. the model checker's
#: explored-state counters shift with any POR refinement, but the
#: REP116/117 verdict they annotate is the same finding)
_VOLATILE_EXTRA = frozenset({"mc_states", "mc_schedules", "mc_pruned"})


def _stable_path(path: str) -> str:
    """Repo-stable form of a finding path: posix separators, rooted at
    the package (``src/...``) when recognizable, so the fingerprint is
    identical whether the checker ran on ``src/repro``, an absolute
    path, or from a different working directory."""
    p = path.replace("\\", "/")
    marker = "src/"
    idx = p.rfind("/" + marker)
    if idx >= 0:
        return p[idx + 1:]
    if p.startswith(marker):
        return p
    return p.lstrip("./")


def fingerprint(finding: Finding) -> str:
    """Stable 16-hex-char identity of one finding (line-independent)."""
    extra = "|".join(
        f"{k}={finding.extra[k]}" for k in sorted(finding.extra)
        if k not in _VOLATILE_EXTRA
    )
    payload = "|".join([
        _stable_path(finding.path),
        finding.rule_id,
        extra,
        finding.message,
    ])
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def baseline_document(findings: Iterable[Finding]) -> dict:
    """The JSON document recording the given findings as suppressed."""
    seen = set()
    suppressions: List[dict] = []
    for f in sorted(findings, key=lambda f: (f.path, f.rule_id, f.message)):
        fp = fingerprint(f)
        if fp in seen:
            continue
        seen.add(fp)
        suppressions.append({
            "fingerprint": fp,
            "rule_id": f.rule_id,
            "path": _stable_path(f.path),
            "message": f.message,
        })
    return {
        "version": _BASELINE_VERSION,
        "tool": "repro-check-deep",
        "suppressions": suppressions,
    }


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write (overwrite) a baseline file; returns suppression count."""
    doc = baseline_document(findings)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(doc["suppressions"])


def load_baseline(path: str) -> Dict[str, dict]:
    """Load a baseline file; returns fingerprint -> suppression entry."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "suppressions" not in doc:
        raise ValueError(f"not a repro-check-deep baseline file: {path}")
    out: Dict[str, dict] = {}
    for entry in doc["suppressions"]:
        fp = entry.get("fingerprint")
        if isinstance(fp, str) and fp:
            out[fp] = entry
    return out


def split_baselined(
    findings: Iterable[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, suppressed) against a baseline."""
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        (suppressed if fingerprint(f) in baseline else new).append(f)
    return new, suppressed
