"""Abstract interpretation of primitive hook bodies (REP110–REP112).

The syntactic tier (``repro.check.rules``) pattern-matches source text;
this tier *executes* hook bodies over the abstract domain in
``repro.check.deep.lattice``, so it can answer semantic questions the
pattern matchers cannot:

* **REP110 ``silent-upcast``** — a float-kind expression is stored into a
  slice array whose dtype comes from the IdConfig integer side
  (``vertex_dtype``, ``bool`` bitmaps, concrete ints).  Numpy casts on
  subscript assignment without warning, so the store silently truncates —
  and the cost model's byte accounting (Table V ID-width
  parameterization) diverges from the arithmetic actually performed.
  Explicit ``.astype(...)`` conversions are deliberate and never flagged.
* **REP111 ``alias-write``** — a write lands in shared memory through an
  alias the dynamic tier cannot see: either a *basic-slice view* of a
  slice array (the BSP sanitizer's shadow wrappers do not survive
  slicing) or a received message payload (``msg.vertices`` /
  ``msg.*_associates`` may alias the sender's buffers — mutating them is
  a cross-GPU write that never rode the communication layer).
* **REP112 ``superstep-escape``** — a hot hook stores state on the
  iteration/problem object (``self.x = ...``, ``problem.y[...] = ...``)
  that is neither a declared checkpointed effect
  (``ProblemBase.CHECKPOINT_ATTRS``) nor a declared re-derivable cache
  (``IterationBase.SNAPSHOT_EXCLUDE``).  Such values escape the
  superstep outside the slice arrays and combiners the framework
  reasons about: a rollback silently resurrects them and the relaxed
  barrier mode cannot prove them safe.

The interpreter is interprocedural within one module: calls from a hook
into a module-level helper function propagate the caller's abstract
arguments into the helper body (memoized, depth-capped), so moving an
offending store into a helper does not hide it.  Helper *methods* of the
iteration class are analyzed directly with convention-bound parameters
(``ctx``/``msg``), matching how the enactor calls them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..findings import Finding
from ..rules.base import CONTROL_HOOKS, ModuleContext
from .lattice import (
    DTYPE_BOOL,
    DTYPE_FLOAT,
    DTYPE_ID,
    DTYPE_INT,
    DTYPE_UNKNOWN,
    DTYPE_VALUE,
    INTEGER_KINDS,
    ORIGIN_FRESH,
    ORIGIN_MSG,
    ORIGIN_OPAQUE,
    ORIGIN_PEER,
    ORIGIN_SLICE,
    AbstractValue,
    join,
    join_dtype,
)

__all__ = ["analyze_module", "DEEP_INTERP_RULES"]

#: rule_id -> (name, description) for the findings this module emits
DEEP_INTERP_RULES = {
    "REP110": (
        "silent-upcast",
        "float-kind expressions must not be stored into integer-kind "
        "(IdConfig vertex / bool) slice arrays",
    ),
    "REP111": (
        "alias-write",
        "writes must not reach shared memory through slice-views of "
        "slice arrays or received message payloads",
    ),
    "REP112": (
        "superstep-escape",
        "hot-hook state stores must be declared via CHECKPOINT_ATTRS "
        "or SNAPSHOT_EXCLUDE",
    ),
}

#: iteration-class methods that run outside the superstep, exempt from
#: hot-path semantics (same set the syntactic tier uses, plus lifecycle)
_NON_HOT_METHODS = CONTROL_HOOKS | {
    "__init__", "on_restore", "restore_state", "snapshot_state",
}

_TOP = AbstractValue()
_INT_SCALAR = AbstractValue(dtype=DTYPE_INT)
_FLOAT_SCALAR = AbstractValue(dtype=DTYPE_FLOAT)
_BOOL_SCALAR = AbstractValue(dtype=DTYPE_BOOL)

_MAX_HELPER_DEPTH = 3


class _Special:
    """Non-array abstract objects the hooks navigate (ctx, msg, ...)."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<special {self.kind}>"


_CTX = _Special("ctx")
_MSG = _Special("msg")
_SELF = _Special("self")
_PROBLEM = _Special("problem")
_SLICE = _Special("slice")
_PEER_SLICES = _Special("peer_slices")
_PEER_SLICE = _Special("peer_slice")
_SUB = _Special("sub")
_CSR = _Special("csr")
_MSG_VA = _Special("msg_va")
_MSG_LA = _Special("msg_la")

_Value = Union[AbstractValue, _Special, "_TupleVal"]


class _TupleVal:
    """A tuple-valued expression, for unpacking assignments."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[_Value]):
        self.items = list(items)


def _classify_dtype_expr(node: Optional[ast.AST]) -> str:
    """Dtype kind of an expression used as a numpy ``dtype=`` argument."""
    if node is None:
        return DTYPE_UNKNOWN
    if isinstance(node, ast.Attribute):
        if node.attr == "vertex_dtype":
            return DTYPE_ID
        if node.attr == "value_dtype":
            return DTYPE_VALUE
        if isinstance(node.value, ast.Name) and node.value.id in ("np", "numpy"):
            if node.attr.startswith(("int", "uint")):
                return DTYPE_INT
            if node.attr.startswith(("float", "double", "single")):
                return DTYPE_FLOAT
            if node.attr.startswith("bool"):
                return DTYPE_BOOL
    if isinstance(node, ast.Name):
        if node.id == "bool":
            return DTYPE_BOOL
        if node.id in ("int",):
            return DTYPE_INT
        if node.id in ("float",):
            return DTYPE_FLOAT
    return DTYPE_UNKNOWN


def _collect_slice_dtypes(ctx: ModuleContext) -> Dict[str, str]:
    """Map slice-array name -> dtype kind, from every ``ds.allocate`` in
    the module's problem classes (merged; conflicts become UNKNOWN)."""
    table: Dict[str, str] = {}
    for cls in ctx.problem_classes:
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "allocate"
            ):
                continue
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            name = node.args[0].value
            dtype_expr = node.args[2] if len(node.args) > 2 else None
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dtype_expr = kw.value
            kind = _classify_dtype_expr(dtype_expr)
            if name in table and table[name] != kind:
                table[name] = DTYPE_UNKNOWN
            else:
                table[name] = kind
    return table


def _collect_declared_escapes(ctx: ModuleContext) -> Set[str]:
    """Attribute names a hot hook may legitimately store into:
    every CHECKPOINT_ATTRS entry (declared checkpointed effects) and
    every SNAPSHOT_EXCLUDE entry (declared re-derivable caches)."""
    declared: Set[str] = set()
    classes = ctx.problem_classes + ctx.iteration_classes
    for cls in classes:
        for stmt in cls.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            names = {
                t.id for t in targets if isinstance(t, ast.Name)
            }
            if not names & {"CHECKPOINT_ATTRS", "SNAPSHOT_EXCLUDE"}:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    declared.add(node.value)
    return declared


def _is_basic_slice(index: ast.AST) -> bool:
    """Whether a subscript index produces a *view* (basic slicing)."""
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Tuple):
        return any(isinstance(e, ast.Slice) for e in index.elts)
    return False


#: numpy constructors returning fresh integer index arrays
_NP_INT_FRESH = {
    "flatnonzero", "argsort", "lexsort", "searchsorted", "arange",
    "nonzero", "argmin", "argmax", "argwhere",
}
#: numpy functions returning a fresh array with arg0's dtype
_NP_DTYPE_OF_ARG0 = {
    "unique", "sort", "repeat", "cumsum", "diff", "take", "where",
    "ascontiguousarray", "abs", "concatenate", "copy",
}
#: elementwise numpy binary functions (dtype join of the operands)
_NP_ELEMENTWISE = {"minimum", "maximum", "add", "subtract", "multiply",
                   "divide", "true_divide", "hypot", "fmin", "fmax"}
#: ufunc ``.at``-style scatter names that write their first argument
_SCATTER_AT_OPS = {"add", "minimum", "maximum", "subtract", "multiply",
                   "bitwise_or", "bitwise_and", "logical_or", "logical_and"}


class _HookInterp:
    """One interpretation pass over one hook (plus reached helpers)."""

    def __init__(
        self,
        mod: ModuleContext,
        slice_dtypes: Dict[str, str],
        declared_escapes: Set[str],
        module_functions: Dict[str, ast.FunctionDef],
        findings: List[Finding],
    ):
        self.mod = mod
        self.slice_dtypes = slice_dtypes
        self.declared_escapes = declared_escapes
        self.module_functions = module_functions
        self.findings = findings
        self._helper_memo: Set[Tuple[str, Tuple]] = set()
        self._depth = 0
        self._globals_declared: Set[str] = set()
        self.hook_name = ""
        self.cls_name = ""

    # -- reporting ---------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str,
              **extra: str) -> None:
        name, _desc = DEEP_INTERP_RULES[rule_id]
        self.findings.append(
            Finding(
                rule_id=rule_id,
                rule=name,
                path=self.mod.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                extra=dict(extra, cls=self.cls_name, method=self.hook_name),
            )
        )

    # -- expression evaluation ----------------------------------------------
    def eval(self, node: ast.AST, env: Dict[str, _Value]) -> _Value:
        if isinstance(node, ast.Name):
            return env.get(node.id, _TOP)
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return _BOOL_SCALAR
            if isinstance(v, int):
                return _INT_SCALAR
            if isinstance(v, float):
                return _FLOAT_SCALAR
            return _TOP
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, (ast.BoolOp, ast.Compare)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self.eval(sub, env)
            return AbstractValue(dtype=DTYPE_BOOL, origin=ORIGIN_FRESH,
                                 is_array=True)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(operand, AbstractValue):
                return operand.as_fresh() if operand.is_array else operand
            return _TOP
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            a = self.eval(node.body, env)
            b = self.eval(node.orelse, env)
            if isinstance(a, AbstractValue) and isinstance(b, AbstractValue):
                return join(a, b)
            return _TOP
        if isinstance(node, ast.Tuple):
            return _TupleVal([self.eval(e, env) for e in node.elts])
        if isinstance(node, (ast.List, ast.Set)):
            for e in node.elts:
                self.eval(e, env)
            return _TOP
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        # comprehensions, lambdas, f-strings...: evaluate children for
        # effects, result unknown
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                self.eval(sub, env)
        return _TOP

    def _eval_attribute(self, node: ast.Attribute, env) -> _Value:
        base = self.eval(node.value, env)
        attr = node.attr
        if isinstance(base, _Special):
            if base.kind == "ctx":
                return {
                    "slice": _SLICE,
                    "sub": _SUB,
                    "iteration": _INT_SCALAR,
                    "num_gpus": _INT_SCALAR,
                    "ids_bytes": _INT_SCALAR,
                    "fused": _BOOL_SCALAR,
                }.get(attr, _TOP)
            if base.kind == "self":
                if attr == "problem":
                    return _PROBLEM
                return _TOP
            if base.kind == "problem":
                if attr == "data_slices":
                    return _PEER_SLICES
                return _TOP
            if base.kind == "msg":
                if attr == "vertices":
                    return AbstractValue(
                        dtype=DTYPE_ID, origin=ORIGIN_MSG,
                        base="vertices", is_array=True,
                    )
                if attr == "vertex_associates":
                    return _MSG_VA
                if attr == "value_associates":
                    return _MSG_LA
                return _INT_SCALAR
            if base.kind == "sub":
                if attr == "csr":
                    return _CSR
                if attr in ("local_to_global", "host_of_local"):
                    return AbstractValue(dtype=DTYPE_INT,
                                         origin=ORIGIN_OPAQUE, is_array=True)
                return _INT_SCALAR
            if base.kind == "csr":
                if attr in ("cols64", "offsets64", "row_offsets",
                            "col_indices"):
                    return AbstractValue(dtype=DTYPE_INT,
                                         origin=ORIGIN_OPAQUE, is_array=True)
                if attr == "values":
                    return AbstractValue(dtype=DTYPE_VALUE,
                                         origin=ORIGIN_OPAQUE, is_array=True)
                return _TOP
            return _TOP
        if isinstance(base, AbstractValue):
            if attr in ("T",):
                return base.as_view()
            if attr in ("size", "ndim", "itemsize", "nbytes"):
                return _INT_SCALAR
            if attr == "shape":
                return _TOP
        return _TOP

    def _eval_subscript(self, node: ast.Subscript, env) -> _Value:
        base = self.eval(node.value, env)
        index = node.slice
        # evaluate the index for its own effects
        if isinstance(index, ast.expr) and not isinstance(index, ast.Slice):
            self.eval(index, env)
        if isinstance(base, _Special):
            if base.kind == "slice" and isinstance(index, ast.Constant):
                name = str(index.value)
                return AbstractValue(
                    dtype=self.slice_dtypes.get(name, DTYPE_UNKNOWN),
                    origin=ORIGIN_SLICE, base=name, is_array=True,
                )
            if base.kind == "peer_slices":
                return _PEER_SLICE
            if base.kind == "peer_slice":
                name = (index.value if isinstance(index, ast.Constant)
                        else None)
                return AbstractValue(
                    dtype=self.slice_dtypes.get(str(name), DTYPE_UNKNOWN),
                    origin=ORIGIN_PEER,
                    base=str(name) if name is not None else None,
                    is_array=True,
                )
            if base.kind == "msg_va":
                return AbstractValue(dtype=DTYPE_ID, origin=ORIGIN_MSG,
                                     base="vertex_associates", is_array=True)
            if base.kind == "msg_la":
                return AbstractValue(dtype=DTYPE_VALUE, origin=ORIGIN_MSG,
                                     base="value_associates", is_array=True)
            return _TOP
        if isinstance(base, AbstractValue) and base.is_array:
            if _is_basic_slice(index):
                return base.as_view()
            # fancy/boolean/scalar indexing materializes a copy (or a
            # scalar) — provenance is severed either way
            return base.as_fresh()
        return _TOP

    def _eval_binop(self, node: ast.BinOp, env) -> _Value:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        l_av = left if isinstance(left, AbstractValue) else _TOP
        r_av = right if isinstance(right, AbstractValue) else _TOP
        if isinstance(node.op, ast.Div):
            dtype = DTYPE_FLOAT  # numpy true division always yields floats
        else:
            dtype = join_dtype(l_av.dtype, r_av.dtype)
        return AbstractValue(
            dtype=dtype, origin=ORIGIN_FRESH,
            is_array=l_av.is_array or r_av.is_array,
        )

    # -- calls ---------------------------------------------------------------
    def _dtype_kwarg(self, node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                kind = _classify_dtype_expr(kw.value)
                return kind
        return None

    def _eval_call(self, node: ast.Call, env) -> _Value:
        func = node.func
        args = [self.eval(a, env) for a in node.args]
        for kw in node.keywords:
            if kw.arg != "out":
                self.eval(kw.value, env)

        # np.<func>(...) and np.<ufunc>.at(...)
        if isinstance(func, ast.Attribute):
            owner = func.value
            # np.add.at(target, idx, vals) — scatter write into target
            if (
                func.attr == "at"
                and isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")
                and owner.attr in _SCATTER_AT_OPS
            ):
                if node.args:
                    target = args[0]
                    value = args[2] if len(args) > 2 else _TOP
                    self._check_array_write(node.args[0], target, value,
                                            node)
                return _TOP
            if isinstance(owner, ast.Name) and owner.id in ("np", "numpy"):
                return self._eval_numpy_call(func.attr, node, args, env)
            # method calls on abstract arrays / specials
            recv = self.eval(owner, env)
            if isinstance(recv, AbstractValue):
                return self._eval_array_method(func.attr, owner, recv, node,
                                               args)
            if isinstance(recv, _Special) and recv.kind == "self":
                # helper methods of the iteration class are analyzed
                # directly (convention-bound params); don't recurse
                return _TOP
            return _TOP

        if isinstance(func, ast.Name):
            name = func.id
            if name in ("int", "len", "round"):
                return _INT_SCALAR
            if name == "float":
                return _FLOAT_SCALAR
            if name == "bool":
                return _BOOL_SCALAR
            if name in self.module_functions:
                return self._eval_helper_call(name, node, args)
            return _TOP
        return _TOP

    def _eval_numpy_call(self, fname: str, node: ast.Call,
                         args: List[_Value], env) -> _Value:
        arg0 = args[0] if args else _TOP
        arg0_av = arg0 if isinstance(arg0, AbstractValue) else _TOP
        dtype_kw = self._dtype_kwarg(node)
        if fname in ("asarray", "ascontiguousarray"):
            # asarray of an ndarray ALIASES it (same origin, same view-ness)
            out = arg0_av
            if dtype_kw is not None and dtype_kw != DTYPE_UNKNOWN:
                # a dtype change forces a copy only when widths differ;
                # conservatively keep the alias, adopt the new kind
                out = out.with_dtype(dtype_kw)
            return out if out.is_array else out
        if fname in ("array",):
            out = arg0_av.as_fresh()
            if dtype_kw:
                out = out.with_dtype(dtype_kw)
            return out
        if fname in ("empty", "zeros", "ones", "full", "empty_like",
                     "zeros_like", "full_like"):
            kind = dtype_kw or (DTYPE_FLOAT if fname in ("zeros", "ones",
                                                         "empty", "full")
                                else arg0_av.dtype)
            return AbstractValue(dtype=kind, origin=ORIGIN_FRESH,
                                 is_array=True)
        if fname in _NP_INT_FRESH:
            return AbstractValue(dtype=DTYPE_INT, origin=ORIGIN_FRESH,
                                 is_array=True)
        if fname in _NP_DTYPE_OF_ARG0:
            return AbstractValue(dtype=arg0_av.dtype, origin=ORIGIN_FRESH,
                                 is_array=True)
        if fname in _NP_ELEMENTWISE:
            arg1_av = (args[1] if len(args) > 1 and
                       isinstance(args[1], AbstractValue) else _TOP)
            for kw in node.keywords:
                if kw.arg == "out":
                    out_target = self.eval(kw.value, env)
                    self._check_array_write(
                        kw.value, out_target,
                        AbstractValue(
                            dtype=join_dtype(arg0_av.dtype, arg1_av.dtype),
                            origin=ORIGIN_FRESH, is_array=True),
                        node,
                    )
            dtype = (DTYPE_FLOAT if fname in ("divide", "true_divide")
                     else join_dtype(arg0_av.dtype, arg1_av.dtype))
            return AbstractValue(dtype=dtype, origin=ORIGIN_FRESH,
                                 is_array=True)
        if fname == "copyto" and len(node.args) >= 2:
            value = args[1] if len(args) > 1 else _TOP
            self._check_array_write(node.args[0], arg0, value, node)
            return _TOP
        if fname in ("errstate", "printoptions"):
            return _TOP
        return _TOP

    def _eval_array_method(self, mname: str, owner_node: ast.AST,
                           recv: AbstractValue, node: ast.Call,
                           args: List[_Value]) -> _Value:
        if mname == "copy":
            return recv.as_fresh()
        if mname == "astype":
            # explicit conversion: deliberate, provenance severed
            kind = (_classify_dtype_expr(node.args[0]) if node.args
                    else DTYPE_UNKNOWN)
            return AbstractValue(dtype=kind or DTYPE_UNKNOWN,
                                 origin=ORIGIN_FRESH, is_array=True)
        if mname in ("reshape", "ravel", "view", "swapaxes", "transpose"):
            return recv.as_view()
        if mname == "fill":
            value = args[0] if args else _TOP
            self._check_array_write(owner_node, recv, value, node,
                                    is_fill=True)
            return _TOP
        if mname == "put":
            value = args[1] if len(args) > 1 else _TOP
            self._check_array_write(owner_node, recv, value, node)
            return _TOP
        if mname in ("sum", "max", "min", "mean", "prod", "dot"):
            return AbstractValue(dtype=recv.dtype, origin=ORIGIN_FRESH)
        if mname in ("any", "all"):
            return _BOOL_SCALAR
        if mname == "tolist":
            return _TOP
        return _TOP

    def _eval_helper_call(self, name: str, node: ast.Call,
                          args: List[_Value]) -> _Value:
        """Interprocedural step: analyze a same-module helper function
        under the caller's abstract arguments."""
        fn = self.module_functions[name]
        sig = tuple(
            (a.dtype, a.origin, a.base, a.is_view)
            if isinstance(a, AbstractValue) else getattr(a, "kind", "?")
            for a in args
        )
        key = (name, sig)
        if self._depth >= _MAX_HELPER_DEPTH or key in self._helper_memo:
            return _TOP
        self._helper_memo.add(key)
        env: Dict[str, _Value] = {}
        params = [p.arg for p in fn.args.args]
        for pname, val in zip(params, args):
            env[pname] = val
        for pname in params[len(args):]:
            env[pname] = _seed_param(pname)
        self._depth += 1
        try:
            return self._run_body(fn.body, env)
        finally:
            self._depth -= 1

    # -- write checks --------------------------------------------------------
    def _check_array_write(
        self,
        target_node: ast.AST,
        target: _Value,
        value: _Value,
        site: ast.AST,
        is_fill: bool = False,
    ) -> None:
        """Apply REP110/REP111 to a write whose destination evaluated to
        an abstract array."""
        if not isinstance(target, AbstractValue) or not target.is_array:
            return
        value_av = value if isinstance(value, AbstractValue) else _TOP
        if target.origin == ORIGIN_MSG:
            self._emit(
                "REP111", site,
                f"write into received message payload "
                f"'{target.base or '?'}': message arrays may alias the "
                "sender's buffers; mutating them is a cross-GPU write "
                "that bypasses the communication layer",
                symbol=str(target.base or ""),
            )
            return
        if target.origin == ORIGIN_SLICE and target.is_view:
            self._emit(
                "REP111", site,
                f"write through a slice-view of slice array "
                f"'{target.base or '?'}': the BSP sanitizer's shadow "
                "wrapper does not survive basic slicing, so this write "
                "is invisible to the dynamic race tier; write through "
                "the array itself (or an index array) instead",
                symbol=str(target.base or ""),
            )
            return
        if target.origin == ORIGIN_PEER:
            return  # REP106 (syntactic peer-mutation) already owns this
        if (
            target.origin == ORIGIN_SLICE
            and target.dtype in INTEGER_KINDS
            and value_av.dtype in (DTYPE_FLOAT, DTYPE_VALUE)
        ):
            kind = ("fill" if is_fill else "store")
            self._emit(
                "REP110", site,
                f"silent upcast: float-kind expression {kind} into "
                f"integer-kind slice array '{target.base or '?'}' "
                f"(dtype kind '{target.dtype}'); numpy truncates on "
                "assignment without warning — cast explicitly with "
                ".astype(...) or keep the arithmetic integral",
                symbol=str(target.base or ""),
            )

    def _check_attr_store(self, attr_node: ast.Attribute, env,
                          site: ast.AST) -> bool:
        """REP112 for ``self.x``/``problem.x`` store targets.  Returns
        True when the target was an escaping attribute (handled)."""
        base = self.eval(attr_node.value, env)
        if not (isinstance(base, _Special)
                and base.kind in ("self", "problem")):
            return False
        name = attr_node.attr
        if name in self.declared_escapes:
            return True
        owner = "self" if base.kind == "self" else "problem"
        self._emit(
            "REP112", site,
            f"'{owner}.{name}' is written inside hot hook "
            f"{self.cls_name}.{self.hook_name} but is neither a declared "
            "checkpointed effect (ProblemBase.CHECKPOINT_ATTRS) nor a "
            "declared re-derivable cache (IterationBase.SNAPSHOT_EXCLUDE): "
            "the value escapes the superstep outside the slice arrays and "
            "combiners the framework reasons about",
            symbol=name,
        )
        return True

    # -- statement execution -------------------------------------------------
    def _assign_target(self, target: ast.expr, value: _Value, env,
                       site: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._globals_declared:
                self._emit(
                    "REP112", site,
                    f"module-level name '{target.id}' is written inside "
                    f"hot hook {self.cls_name}.{self.hook_name}: global "
                    "state escapes the superstep outside declared "
                    "effects",
                    symbol=target.id,
                )
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = (value.items if isinstance(value, _TupleVal)
                     else [_TOP] * len(target.elts))
            for t, v in zip(target.elts, items):
                self._assign_target(t, v, env, site)
            return
        if isinstance(target, ast.Subscript):
            # writes through an attribute chain (self.x[...] = v) are
            # escape-checked on the attribute; everything else on the
            # evaluated array
            if isinstance(target.value, ast.Attribute):
                if self._check_attr_store(target.value, env, site):
                    return
            base = self.eval(target.value, env)
            self._check_array_write(target.value, base, value, site)
            return
        if isinstance(target, ast.Attribute):
            self._check_attr_store(target, env, site)
            return

    def _run_body(self, body: Sequence[ast.stmt],
                  env: Dict[str, _Value]) -> _Value:
        """Execute statements; returns the join of return-value AVs."""
        ret: _Value = _TOP
        for stmt in body:
            if isinstance(stmt, ast.Global):
                self._globals_declared.update(stmt.names)
            elif isinstance(stmt, ast.Assign):
                value = self.eval(stmt.value, env)
                for t in stmt.targets:
                    self._assign_target(t, value, env, stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._assign_target(stmt.target, value, env, stmt)
            elif isinstance(stmt, ast.AugAssign):
                value = self.eval(stmt.value, env)
                current = self.eval(stmt.target, env)
                merged = (join(current, value)
                          if isinstance(current, AbstractValue)
                          and isinstance(value, AbstractValue) else _TOP)
                self._assign_target(stmt.target, merged, env, stmt)
            elif isinstance(stmt, ast.Expr):
                self.eval(stmt.value, env)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    ret = self.eval(stmt.value, env)
            elif isinstance(stmt, (ast.If,)):
                self.eval(stmt.test, env)
                r1 = self._run_body(stmt.body, env)
                r2 = self._run_body(stmt.orelse, env)
                for r in (r1, r2):
                    if isinstance(r, AbstractValue) and r is not _TOP:
                        ret = r
            elif isinstance(stmt, (ast.For,)):
                self.eval(stmt.iter, env)
                self._assign_target(stmt.target, _TOP, env, stmt)
                r = self._run_body(stmt.body, env)
                self._run_body(stmt.orelse, env)
                if isinstance(r, AbstractValue) and r is not _TOP:
                    ret = r
            elif isinstance(stmt, ast.While):
                self.eval(stmt.test, env)
                r = self._run_body(stmt.body, env)
                self._run_body(stmt.orelse, env)
                if isinstance(r, AbstractValue) and r is not _TOP:
                    ret = r
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self.eval(item.context_expr, env)
                    if item.optional_vars is not None:
                        self._assign_target(item.optional_vars, _TOP, env,
                                            stmt)
                r = self._run_body(stmt.body, env)
                if isinstance(r, AbstractValue) and r is not _TOP:
                    ret = r
            elif isinstance(stmt, ast.Try):
                r = self._run_body(stmt.body, env)
                for handler in stmt.handlers:
                    self._run_body(handler.body, env)
                self._run_body(stmt.orelse, env)
                self._run_body(stmt.finalbody, env)
                if isinstance(r, AbstractValue) and r is not _TOP:
                    ret = r
            # pass/break/continue/raise/import/docstring: no dataflow
        return ret

    # -- hook entry ----------------------------------------------------------
    def run_hook(self, cls: ast.ClassDef, method: ast.FunctionDef) -> None:
        self.cls_name = cls.name
        self.hook_name = method.name
        self._globals_declared = set()
        env: Dict[str, _Value] = {}
        for p in method.args.args:
            env[p.arg] = _seed_param(p.arg)
        self._run_body(method.body, env)


def _seed_param(name: str) -> _Value:
    """Convention-bound abstract value for a hook/helper parameter."""
    if name == "self":
        return _SELF
    if name == "ctx":
        return _CTX
    if name == "msg":
        return _MSG
    if name == "problem":
        return _PROBLEM
    if name == "frontier":
        return AbstractValue(dtype=DTYPE_INT, origin=ORIGIN_OPAQUE,
                             is_array=True)
    return _TOP


def analyze_module(ctx: ModuleContext) -> List[Finding]:
    """Run the abstract interpreter over one parsed primitive module.

    Non-primitive modules (no Problem/Iteration classes) produce no
    findings — the deep interp tier is scoped to primitive hook bodies.
    """
    if not ctx.iteration_classes:
        return []
    slice_dtypes = _collect_slice_dtypes(ctx)
    declared = _collect_declared_escapes(ctx)
    module_functions = {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    findings: List[Finding] = []
    interp = _HookInterp(ctx, slice_dtypes, declared, module_functions,
                         findings)
    for cls in ctx.iteration_classes:
        for method in ctx.methods(cls):
            if method.name in _NON_HOT_METHODS:
                continue
            interp.run_hook(cls, method)
    # one finding per (rule, location): direct analysis + interprocedural
    # reaches can hit the same node twice
    seen: Set[Tuple] = set()
    unique: List[Finding] = []
    for f in findings:
        key = (f.rule_id, f.line, f.col, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    unique.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return unique
