"""Superstep interleaving model checker (REP116/REP117).

Compiles each primitive's hot hooks into per-GPU **effect summaries**
and exhaustively explores their interleavings across 2–3 virtual GPUs
(:mod:`repro.check.deep.schedules`), under both the strict barrier-merge
order and the relaxed model where a GPU consumes partial remote data
for superstep i+1 (ROADMAP item 5).

Effect extraction piggybacks on the REP110–112 abstract interpreter: a
:class:`_EffectInterp` subclass of :class:`interp._HookInterp` keeps two
side tables keyed by AST-node identity — the evaluated abstract value
and a **taint** ``(sources, transformed)`` — and hooks every write
channel the base interpreter already funnels through
``_check_array_write`` / ``_check_attr_store``.  Taint sources are:

* ``("slice", name)``  — content of a slice array
* ``("pay", kind, i)`` — content of message payload field *i*
* ``("iter",)``        — derived from ``ctx.iteration``
* ``("peer", name)``   — content of a peer GPU's slice array

``transformed`` distinguishes an identity *forward* of a source (which
an idempotent set fold absorbs — this is what proves CC safe) from a
value *computed* from it (which depends on the merge timing — this is
what refutes SSSP).  Subscript taint is the **base** array's taint only:
indices are structural, so ``comp[src]`` stays a pure forward of
``comp``.

Approximations (all sound for the declared-combiner contract, all
deterministic):

* every local write into a combined array is modeled as an application
  of the *declared* combiner op — guard idioms
  (``labels[fresh] = v`` after a freshness mask) are optimizations the
  combiner's own algebra must absorb, not separate semantics;
* destructive whole-array ``fill()`` is modeled as an epoch RESET,
  which only interacts with schedules when the array also receives
  remote contributions (PR's ``acc``) — a reset of purely-local state
  (DOBFS's pull bitmap) is schedule-invariant;
* reads of non-combined slice arrays are resolved through a
  cross-array taint closure (PR's acc → rank → share flow), computed
  order-insensitively so cross-superstep flows are covered.

Two rules:

* **REP116** (error): some strict-barrier interleaving changes the
  final state — a non-commutative effect pair escapes the pinned
  merge order (peer-slice or message-payload writes void the pin).
* **REP117** (warning): strict order is deterministic but the relaxed
  model diverges — the primitive must not run with
  ``Enactor(relaxed_barriers=True)``.

Both come with a minimal counterexample: a pair of replayable schedule
traces (see ``schedules.TRACE_VERSION``) renderable via
``obs/chrome_trace.py``.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..findings import Finding
from ..rules.base import ModuleContext
from .certify import (
    STATUS_NONDETERMINISTIC,
    CombinerCertificate,
    certify_combiner,
    declared_combiners,
)
from .interp import (
    _NON_HOT_METHODS,
    _HookInterp,
    _Special,
    _TupleVal,
    _collect_declared_escapes,
    _collect_slice_dtypes,
)
from .lattice import (
    ORIGIN_MSG,
    ORIGIN_PEER,
    ORIGIN_SLICE,
    AbstractValue,
)
from .schedules import (
    FOLD_EXCLUDED,
    FOLD_MULTISET,
    FOLD_SEQ,
    ArrayModel,
    Effect,
    ExploreResult,
    GpuProgram,
    build_counterexample,
    explore,
    fold_kind_for,
)

__all__ = [
    "DEEP_MC_RULES",
    "ScheduleCertificate",
    "modelcheck_module",
    "certify_schedule_for",
    "extract_program",
    "MC_GPUS",
    "MC_HORIZON",
]

DEEP_MC_RULES = {
    "REP116": (
        "non-commutative-effects",
        "under strict barriers every interleaving of superstep effects "
        "must reach the same final state; a divergence means an effect "
        "pair escapes the pinned merge order",
    ),
    "REP117": (
        "relaxed-barrier-unsafe",
        "a primitive whose schedule exploration diverges when a GPU "
        "consumes partial remote data for superstep i+1 must not run "
        "with Enactor(relaxed_barriers=True)",
    ),
}

#: virtual GPU counts and superstep horizon the checker explores
MC_GPUS: Tuple[int, ...] = (2, 3)
MC_HORIZON = 2

#: certificate statuses
MC_CERTIFIED = "certified"
MC_REFUTED = "refuted"
MC_INCONCLUSIVE = "inconclusive"

_EMPTY_TAINT = (frozenset(), False)
_ITER_SRC = ("iter",)

#: calls whose result is (element-wise) the same data as their array
#: argument — taint flows through untransformed
_TAINT_PASSTHROUGH = frozenset({
    "asarray", "ascontiguousarray", "array", "copy", "astype", "repeat",
    "concatenate", "ravel", "reshape", "flatten", "unique",
})


@dataclass(frozen=True)
class _RawEffect:
    """A write effect with unresolved taint (resolved after the
    cross-array closure is known)."""

    kind: str  # apply | reset | peer | msgwrite
    array: str
    content: FrozenSet[tuple]
    transformed: bool
    hook: str
    line: int
    col: int


class _EffectInterp(_HookInterp):
    """The REP110–112 interpreter plus taint tracking and effect capture.

    All extra state lives in side tables keyed by ``id(node)`` — the
    base interpreter evaluates children before parents return, so
    post-order taint rules always find their operands recorded.  The
    base class's own findings go to a throwaway list: the ``--deep``
    tier owns REP110–112, this pass only wants the writes.
    """

    def __init__(self, mod, slice_dtypes, declared_escapes,
                 module_functions, combined: Set[str]):
        super().__init__(mod, slice_dtypes, declared_escapes,
                         module_functions, findings=[])
        self.combined = combined
        self._nv: Dict[int, object] = {}
        self._nt: Dict[int, tuple] = {}
        self._vt_stack: List[Dict[str, tuple]] = [{}]
        self._pending: Optional[tuple] = None  # (taint, site) for stores
        self.raw_effects: List[_RawEffect] = []
        #: non-combined slice array -> union of taints ever stored into it
        self.array_taint: Dict[str, Set[tuple]] = {}
        #: (qualified name, declared) per self/problem attr store
        self.attr_writes: List[Tuple[str, bool]] = []

    def run_hook(self, cls, method):
        # variable taints are hook-local; never leak across hooks
        self._vt_stack = [{}]
        self._pending = None
        super().run_hook(cls, method)

    # -- taint machinery ------------------------------------------------

    def _vt(self) -> Dict[str, tuple]:
        return self._vt_stack[-1]

    def _t(self, node: Optional[ast.AST]) -> tuple:
        if node is None:
            return _EMPTY_TAINT
        return self._nt.get(id(node), _EMPTY_TAINT)

    def _union_children(self, node: ast.AST, transformed: bool) -> tuple:
        content: FrozenSet[tuple] = frozenset()
        tr = transformed
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                c, t = self._t(sub)
                content = content | c
                tr = tr or t
        return (content, tr)

    def eval(self, node, env):
        # associate-array hooks return lists of slice arrays; the base
        # interpreter flattens lists to TOP, but payload resolution
        # needs the element values — treat List like Tuple here
        if isinstance(node, ast.List):
            val = _TupleVal([self.eval(e, env) for e in node.elts])
        else:
            val = super().eval(node, env)
        self._nv[id(node)] = val
        self._nt[id(node)] = self._taint_of(node, val)
        return val

    def _taint_of(self, node: ast.AST, val) -> tuple:
        if isinstance(node, ast.Name):
            return self._vt().get(node.id, _EMPTY_TAINT)
        if isinstance(node, ast.Constant):
            return _EMPTY_TAINT
        if isinstance(node, ast.Attribute):
            basev = self._nv.get(id(node.value))
            if (isinstance(basev, _Special) and basev.kind == "ctx"
                    and node.attr == "iteration"):
                return (frozenset([_ITER_SRC]), False)
            return self._t(node.value)
        if isinstance(node, ast.Subscript):
            basev = self._nv.get(id(node.value))
            if isinstance(basev, _Special):
                if (basev.kind == "slice"
                        and isinstance(node.slice, ast.Constant)):
                    return (frozenset([("slice", str(node.slice.value))]),
                            False)
                if basev.kind in ("msg_va", "msg_la"):
                    payk = "v" if basev.kind == "msg_va" else "l"
                    idx = (node.slice.value
                           if isinstance(node.slice, ast.Constant)
                           and isinstance(node.slice.value, int) else 0)
                    return (frozenset([("pay", payk, int(idx))]), False)
                if (basev.kind == "peer_slice"
                        and isinstance(node.slice, ast.Constant)):
                    return (frozenset([("peer", str(node.slice.value))]),
                            False)
                return _EMPTY_TAINT
            # content taint is the BASE's taint only: indices are
            # structural (which elements, not what values)
            return self._t(node.value)
        if isinstance(node, ast.BinOp):
            lc, _lt = self._t(node.left)
            rc, _rt = self._t(node.right)
            return (lc | rc, True)
        if isinstance(node, (ast.BoolOp, ast.Compare, ast.UnaryOp,
                             ast.IfExp)):
            return self._union_children(node, transformed=True)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        # Tuple/List/Set/Starred/comprehensions/...: pass children through
        return self._union_children(node, transformed=False)

    def _call_taint(self, node: ast.Call) -> tuple:
        content: FrozenSet[tuple] = frozenset()
        tr = False
        for a in node.args:
            c, t = self._t(a)
            content, tr = content | c, tr or t
        for kw in node.keywords:
            if kw.arg == "out":
                continue
            c, t = self._t(kw.value)
            content, tr = content | c, tr or t
        func = node.func
        fname = ""
        if isinstance(func, ast.Attribute):
            fname = func.attr
            ownerv = self._nv.get(id(func.value))
            owner_is_np = (isinstance(func.value, ast.Name)
                           and func.value.id in ("np", "numpy"))
            if not owner_is_np and not isinstance(ownerv, _Special):
                c, t = self._t(func.value)
                content, tr = content | c, tr or t
        elif isinstance(func, ast.Name):
            fname = func.id
        if fname not in _TAINT_PASSTHROUGH:
            tr = True
        return (content, tr)

    # -- assignment / write interception --------------------------------

    def _site_taint(self, site: ast.AST) -> tuple:
        if isinstance(site, ast.Assign):
            return self._t(site.value)
        if isinstance(site, ast.AnnAssign) and site.value is not None:
            return self._t(site.value)
        if isinstance(site, ast.AugAssign):
            vc, _vt = self._t(site.value)
            tc, _tt = self._t(site.target)
            return (vc | tc, True)
        return _EMPTY_TAINT

    def _assign_target(self, target, value, env, site):
        taint = self._site_taint(site)
        if isinstance(target, ast.Name):
            self._vt()[target.id] = taint
            return super()._assign_target(target, value, env, site)
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            prev = self._pending
            self._pending = (taint, site)
            try:
                return super()._assign_target(target, value, env, site)
            finally:
                self._pending = prev
        # tuple/list unpack: base recurses back into _assign_target per
        # element with the same site, hitting the branches above
        return super()._assign_target(target, value, env, site)

    def _eval_helper_call(self, name, node, args):
        fn = self.module_functions[name]
        frame: Dict[str, tuple] = {}
        for p, a in zip([p.arg for p in fn.args.args], node.args):
            frame[p] = self._t(a)
        self._vt_stack.append(frame)
        try:
            return super()._eval_helper_call(name, node, args)
        finally:
            self._vt_stack.pop()

    def _write_taint(self, site: ast.AST, is_fill: bool) -> tuple:
        if self._pending is not None and self._pending[1] is site:
            return self._pending[0]
        if isinstance(site, ast.Call):
            f = site.func
            if isinstance(f, ast.Attribute):
                if f.attr == "at" and len(site.args) > 2:
                    return self._t(site.args[2])
                if f.attr == "fill" and site.args:
                    return self._t(site.args[0])
                if f.attr == "put" and len(site.args) > 1:
                    return self._t(site.args[1])
                if f.attr == "copyto" and len(site.args) > 1:
                    return self._t(site.args[1])
            # elementwise ufunc with out=: value computed from the args
            content: FrozenSet[tuple] = frozenset()
            for a in site.args:
                content = content | self._t(a)[0]
            return (content, True)
        if isinstance(site, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._site_taint(site)
        return _EMPTY_TAINT

    def _check_array_write(self, target_node, target, value, site,
                           is_fill=False):
        if isinstance(target, AbstractValue) and target.is_array:
            name = target.base
            taint = self._write_taint(site, is_fill)
            line = getattr(site, "lineno", 0)
            col = getattr(site, "col_offset", 0)
            if target.origin == ORIGIN_SLICE and name:
                if name in self.combined:
                    self.raw_effects.append(_RawEffect(
                        kind="reset" if is_fill else "apply",
                        array=name, content=taint[0],
                        transformed=taint[1], hook=self.hook_name,
                        line=line, col=col))
                else:
                    self.array_taint.setdefault(name, set()).update(
                        taint[0])
            elif target.origin == ORIGIN_PEER:
                self.raw_effects.append(_RawEffect(
                    kind="peer", array=name or "?", content=taint[0],
                    transformed=taint[1], hook=self.hook_name,
                    line=line, col=col))
            elif target.origin == ORIGIN_MSG:
                self.raw_effects.append(_RawEffect(
                    kind="msgwrite", array=name or "?", content=taint[0],
                    transformed=taint[1], hook=self.hook_name,
                    line=line, col=col))
        return super()._check_array_write(target_node, target, value, site,
                                          is_fill=is_fill)

    def _check_attr_store(self, attr_node, env, site):
        handled = super()._check_attr_store(attr_node, env, site)
        basev = self._nv.get(id(attr_node.value))
        if isinstance(basev, _Special) and basev.kind in ("self", "problem"):
            owner = "self" if basev.kind == "self" else "problem"
            self.attr_writes.append((
                "%s.%s" % (owner, attr_node.attr),
                attr_node.attr in self.declared_escapes))
        return handled


# ---------------------------------------------------------------------------
# raw effects -> GpuProgram
# ---------------------------------------------------------------------------


def _taint_closure(array_taint: Dict[str, Set[tuple]],
                   combined: Set[str]) -> Dict[str, Set[tuple]]:
    """Fixpoint of non-combined-array taint expansion (order-insensitive,
    so cross-superstep flows like PR's acc -> rank -> share are found
    regardless of statement order)."""
    at = {k: set(v) for k, v in array_taint.items()}
    changed = True
    while changed:
        changed = False
        for name, srcs in at.items():
            extra: Set[tuple] = set()
            for s in list(srcs):
                if s[0] == "slice" and s[1] not in combined and s[1] in at \
                        and s[1] != name:
                    extra |= at[s[1]]
            if not extra <= srcs:
                srcs |= extra
                changed = True
    return at


def _resolve_content(content: FrozenSet[tuple],
                     closure: Dict[str, Set[tuple]],
                     combined: Set[str]) -> FrozenSet[tuple]:
    out: Set[tuple] = set()
    stack = list(content)
    seen: Set[tuple] = set()
    while stack:
        s = stack.pop()
        if s in seen:
            continue
        seen.add(s)
        if s[0] == "slice" and s[1] not in combined:
            stack.extend(closure.get(s[1], ()))
        else:
            out.add(s)
    return frozenset(out)


@dataclass
class EffectSummary:
    """The compiled per-GPU program plus provenance for the certificate."""

    cls_name: str
    program: GpuProgram
    arrays: List[ArrayModel]
    certificates: Dict[str, CombinerCertificate]
    excluded: Tuple[str, ...]
    attr_writes: Tuple[Tuple[str, bool], ...]


def _payload_map(interp: _EffectInterp, ctx: ModuleContext,
                 cls: ast.ClassDef) -> Dict[Tuple[str, int], Set[str]]:
    """Which slice arrays each message payload slot can carry.

    Conditional returns union (BC ships sigma or delta in the value
    slot depending on the phase)."""
    out: Dict[Tuple[str, int], Set[str]] = {}
    for hook, payk in (("vertex_associate_arrays", "v"),
                       ("value_associate_arrays", "l")):
        method = ctx.find_method(cls, hook)
        if method is None:
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            v = interp._nv.get(id(node.value))
            items = (v.items if isinstance(v, _TupleVal)
                     else [v] if isinstance(v, AbstractValue) else [])
            for i, item in enumerate(items):
                if (isinstance(item, AbstractValue)
                        and item.origin == ORIGIN_SLICE and item.base):
                    out.setdefault((payk, i), set()).add(item.base)
    return out


def _value_spec(raw: _RawEffect, resolved: FrozenSet[tuple],
                paymap: Dict[Tuple[str, int], Set[str]],
                modeled: Set[str]) -> tuple:
    reads = {s[1] for s in resolved if s[0] == "slice" and s[1] in modeled}
    reads |= {s[1] for s in resolved if s[0] == "peer" and s[1] in modeled}
    pay_slots = [(s[1], s[2]) for s in resolved if s[0] == "pay"]
    pay_names: Set[str] = set()
    for slot in pay_slots:
        pay_names |= paymap.get(slot, set()) & modeled
    has_iter = any(s[0] == "iter" for s in resolved)
    site = "%s:%d:%d" % (raw.hook, raw.line, raw.col)
    if not reads and not pay_names:
        if has_iter:
            return ("iter",)
        return ("const", site)
    if not raw.transformed:
        if pay_names and not reads and len(pay_slots) == 1:
            return ("pay", frozenset(pay_names))
        if reads and not pay_names and len(reads) == 1:
            return ("fwd", next(iter(reads)))
    return ("expr", site, frozenset(reads | pay_names))


def extract_program(ctx: ModuleContext, cls: ast.ClassDef,
                    certificates: Dict[str, CombinerCertificate],
                    ) -> EffectSummary:
    """Compile one iteration class's hot hooks into a GpuProgram."""
    combined = set(certificates)
    interp = _EffectInterp(
        ctx,
        _collect_slice_dtypes(ctx),
        _collect_declared_escapes(ctx),
        {node.name: node for node in ctx.tree.body
         if isinstance(node, ast.FunctionDef)},
        combined,
    )
    methods = [m for m in ctx.methods(cls)
               if m.name not in _NON_HOT_METHODS]
    # full_queue_core's effects lead the compute phase; helper-method
    # effects follow in source order (BC's per-phase helpers are all
    # modeled — a sound union of the phase machine's behaviors)
    methods.sort(key=lambda mth: (mth.name != "full_queue_core",
                                  mth.lineno))
    for method in methods:
        interp.run_hook(cls, method)

    closure = _taint_closure(interp.array_taint, combined)
    arrays: List[ArrayModel] = []
    excluded: List[str] = []
    for name in sorted(certificates):
        cert = certificates[name]
        fold = fold_kind_for(
            cert.idempotent, cert.commutative,
            excluded=cert.status == STATUS_NONDETERMINISTIC)
        arrays.append(ArrayModel(name=name, op=cert.op, fold=fold))
        if fold == FOLD_EXCLUDED:
            excluded.append(name)
    modeled = {a.name for a in arrays if a.fold != FOLD_EXCLUDED}

    paymap = _payload_map(interp, ctx, cls)
    core: List[Effect] = []
    expand: List[Effect] = []
    for raw in interp.raw_effects:
        if raw.kind in ("apply", "reset") and raw.array not in modeled:
            continue  # witness-excluded target
        resolved = _resolve_content(raw.content, closure, combined)
        spec = (("const", "%s:%d" % (raw.hook, raw.line))
                if raw.kind == "reset"
                else _value_spec(raw, resolved, paymap, modeled))
        eff = Effect(kind=raw.kind, array=raw.array, value=spec,
                     hook=raw.hook, line=raw.line)
        if raw.hook == "expand_incoming":
            expand.append(eff)
        elif raw.hook in ("vertex_associate_arrays",
                          "value_associate_arrays"):
            continue  # associate hooks only *read*; nothing to model
        else:
            core.append(eff)
    payload_arrays = frozenset(
        name for names in paymap.values() for name in names) & frozenset(
        modeled)
    program = GpuProgram(core=tuple(core), expand=tuple(expand),
                         payload_arrays=frozenset(payload_arrays))
    return EffectSummary(
        cls_name=cls.name,
        program=program,
        arrays=arrays,
        certificates=certificates,
        excluded=tuple(sorted(excluded)),
        attr_writes=tuple(sorted(set(interp.attr_writes))),
    )


# ---------------------------------------------------------------------------
# ScheduleCertificate
# ---------------------------------------------------------------------------


@dataclass
class ScheduleCertificate:
    """Machine-checkable record of one primitive's schedule exploration.

    The second certification tier for ``Enactor(relaxed_barriers=True)``:
    tier 1 (:class:`CombinerCertificate`) proves each combiner's algebra
    order-independent; this tier proves the *composition* of the
    primitive's effects reaches a unique final state under every
    schedule the relaxed model admits."""

    primitive: str  # iteration class name
    path: str
    status: str  # certified | refuted | inconclusive
    strict_deterministic: bool
    relaxed_safe: bool
    gpus: Tuple[int, ...]
    horizon: int
    #: array -> {"op": ..., "fold": ...}
    arrays: Dict[str, dict] = field(default_factory=dict)
    excluded: Tuple[str, ...] = ()
    #: model -> {"states", "schedules", "pruned", "exhausted",
    #: "final_states"} summed over the explored GPU counts
    explored: Dict[str, dict] = field(default_factory=dict)
    independence: Tuple[str, ...] = ()
    reasons: Tuple[str, ...] = ()
    counterexample: Optional[dict] = None
    attr_writes: Tuple[Tuple[str, bool], ...] = ()
    version: int = 1

    @property
    def certified_relaxed_safe(self) -> bool:
        """Whether this certificate licenses relaxed-barrier execution:
        the exploration must have been exhaustive AND divergence-free
        under both models."""
        return (self.status == MC_CERTIFIED
                and self.strict_deterministic
                and self.relaxed_safe)

    def to_dict(self) -> dict:
        return {
            "primitive": self.primitive,
            "path": self.path,
            "status": self.status,
            "strict_deterministic": self.strict_deterministic,
            "relaxed_safe": self.relaxed_safe,
            "certified_relaxed_safe": self.certified_relaxed_safe,
            "gpus": list(self.gpus),
            "horizon": self.horizon,
            "arrays": {k: dict(v) for k, v in sorted(self.arrays.items())},
            "excluded": list(self.excluded),
            "explored": {k: dict(v) for k, v in sorted(
                self.explored.items())},
            "independence": list(self.independence),
            "reasons": list(self.reasons),
            "counterexample": self.counterexample,
            "attr_writes": [list(a) for a in self.attr_writes],
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScheduleCertificate":
        return cls(
            primitive=d["primitive"],
            path=d.get("path", ""),
            status=d["status"],
            strict_deterministic=bool(d["strict_deterministic"]),
            relaxed_safe=bool(d["relaxed_safe"]),
            gpus=tuple(d.get("gpus", MC_GPUS)),
            horizon=int(d.get("horizon", MC_HORIZON)),
            arrays={k: dict(v) for k, v in d.get("arrays", {}).items()},
            excluded=tuple(d.get("excluded", ())),
            explored={k: dict(v) for k, v in d.get("explored", {}).items()},
            independence=tuple(d.get("independence", ())),
            reasons=tuple(d.get("reasons", ())),
            counterexample=d.get("counterexample"),
            attr_writes=tuple(tuple(a) for a in d.get("attr_writes", ())),
            version=int(d.get("version", 1)),
        )

    def describe(self) -> str:
        verdict = ("relaxed-safe" if self.certified_relaxed_safe else
                   "strict-only" if self.strict_deterministic else
                   "non-deterministic")
        folds = ", ".join("%s:%s/%s" % (k, v["op"], v["fold"])
                          for k, v in sorted(self.arrays.items()))
        return "%s: %s [%s] (%s)" % (
            self.primitive, verdict, self.status, folds or "no arrays")


# ---------------------------------------------------------------------------
# module entry point
# ---------------------------------------------------------------------------


def _problem_certs_for(iter_cls_name: str,
                       per_cls: Dict[str, Dict[str, CombinerCertificate]],
                       ) -> Dict[str, CombinerCertificate]:
    """Pair an iteration class with its problem class's combiners.

    Convention: ``FooIteration`` pairs with ``FooProblem``; a module
    with exactly one problem class pairs with everything."""
    if len(per_cls) == 1:
        return dict(next(iter(per_cls.values())))
    stem = iter_cls_name
    if stem.endswith("Iteration"):
        stem = stem[:-len("Iteration")]
    for pname, certs in sorted(per_cls.items()):
        pstem = pname[:-len("Problem")] if pname.endswith("Problem") \
            else pname
        if pstem == stem:
            return dict(certs)
    merged: Dict[str, CombinerCertificate] = {}
    for _pname, certs in sorted(per_cls.items()):
        merged.update(certs)
    return merged


def _unsafe_reasons(program: GpuProgram, arrays: List[ArrayModel]) -> list:
    """Deterministic explanations of *why* the relaxed model can
    diverge, derived from the same static facts that drive the POR."""
    kinds = {a.name: a.fold for a in arrays if a.fold != FOLD_EXCLUDED}
    ops = {a.name: a.op for a in arrays}
    remote_in = {e.array for e in program.expand
                 if e.kind in ("apply", "reset") and e.array in kinds}
    reasons: List[str] = []
    for a in sorted(remote_in):
        if kinds[a] == FOLD_MULTISET:
            reasons.append(
                "'%s': non-idempotent '%s' merge double-applies a "
                "re-delivered straggler update" % (a, ops[a]))
        elif kinds[a] == FOLD_SEQ:
            reasons.append(
                "'%s': non-commutative '%s' merge is order-sensitive"
                % (a, ops[a]))
    for eff in program.core:
        if eff.kind == "reset" and eff.array in remote_in:
            reasons.append(
                "'%s' is reset mid-superstep (%s:%d) while straggler "
                "merges may still land in the old epoch"
                % (eff.array, eff.hook, eff.line))
        reads: FrozenSet[str] = frozenset()
        if eff.value[0] == "fwd":
            reads = frozenset([eff.value[1]]) - {eff.array}
        elif eff.value[0] == "expr":
            reads = eff.value[2]
        hit = reads & remote_in
        if hit:
            reasons.append(
                "'%s' update (%s:%d) is computed from {%s}, a snapshot "
                "a late merge changes" % (
                    eff.array, eff.hook, eff.line, ", ".join(sorted(hit))))
    return reasons


def _sum_results(results: List[ExploreResult]) -> dict:
    return {
        "states": sum(r.states for r in results),
        "schedules": sum(r.schedules for r in results),
        "pruned": sum(r.pruned for r in results),
        "exhausted": all(r.exhausted for r in results),
        "final_states": max((r.num_final_states for r in results),
                            default=0),
    }


def modelcheck_module(
    ctx: ModuleContext,
    gpus: Tuple[int, ...] = MC_GPUS,
    horizon: int = MC_HORIZON,
) -> Tuple[List[Finding], List[ScheduleCertificate]]:
    """Model-check every iteration class in one parsed module."""
    findings: List[Finding] = []
    certificates: List[ScheduleCertificate] = []
    if not ctx.iteration_classes:
        return findings, certificates
    per_cls: Dict[str, Dict[str, CombinerCertificate]] = {}
    for pcls_name, combiners in declared_combiners(ctx).items():
        per_cls[pcls_name] = {
            array: certify_combiner(array, comb)
            for array, comb in combiners.items()
        }
    for icls in ctx.iteration_classes:
        hooks = {m.name for m in ctx.methods(icls)}
        if "full_queue_core" not in hooks and "expand_incoming" not in hooks:
            continue
        certs = _problem_certs_for(icls.name, per_cls)
        summary = extract_program(ctx, icls, certs)
        program, arrays = summary.program, summary.arrays

        strict = [explore(program, arrays, num_gpus=g, horizon=horizon,
                          relaxed=False) for g in gpus]
        relaxed = [explore(program, arrays, num_gpus=g, horizon=horizon,
                           relaxed=True) for g in gpus]
        strict_det = all(r.deterministic for r in strict)
        relaxed_safe = all(r.deterministic for r in relaxed)
        diverged = (any(r.divergent_choices is not None for r in strict)
                    or any(r.divergent_choices is not None for r in relaxed))
        exhausted = (all(r.exhausted for r in strict)
                     and all(r.exhausted for r in relaxed))
        status = (MC_REFUTED if diverged
                  else MC_CERTIFIED if exhausted
                  else MC_INCONCLUSIVE)

        bad = next((r for r in strict if r.divergent_choices is not None),
                   None) or next(
            (r for r in relaxed if r.divergent_choices is not None), None)
        counterexample = (build_counterexample(
            program, arrays, bad, primitive=icls.name)
            if bad is not None else None)
        reasons = (_unsafe_reasons(program, arrays)
                   if not (strict_det and relaxed_safe) else [])
        independence: List[str] = []
        for r in relaxed + strict:
            for note in r.independence:
                if note not in independence:
                    independence.append(note)

        cert = ScheduleCertificate(
            primitive=icls.name,
            path=ctx.path,
            status=status,
            strict_deterministic=strict_det,
            relaxed_safe=relaxed_safe,
            gpus=tuple(gpus),
            horizon=horizon,
            arrays={a.name: {"op": a.op, "fold": a.fold} for a in arrays},
            excluded=summary.excluded,
            explored={"strict": _sum_results(strict),
                      "relaxed": _sum_results(relaxed)},
            independence=tuple(independence),
            reasons=tuple(reasons),
            counterexample=counterexample,
            attr_writes=summary.attr_writes,
        )
        certificates.append(cert)

        arrays_txt = ",".join(sorted(
            a.name for a in arrays if a.fold != FOLD_EXCLUDED))
        if not strict_det:
            culprits = [e for e in (program.core + program.expand)
                        if e.kind in ("peer", "msgwrite")]
            line = culprits[0].line if culprits else icls.lineno
            detail = "; ".join(e.describe() for e in culprits[:3]) or \
                "see counterexample schedule"
            findings.append(Finding(
                rule_id="REP116",
                rule=DEEP_MC_RULES["REP116"][0],
                path=ctx.path,
                line=line,
                col=1,
                message=(
                    "strict-barrier interleavings of %s's superstep "
                    "effects reach different final states: %s — the "
                    "pinned barrier merge order does not cover these "
                    "writes; minimal counterexample schedule attached "
                    "to the ScheduleCertificate" % (icls.name, detail)),
                extra={"cls": icls.name, "arrays": arrays_txt,
                       "mc_states": str(cert.explored["strict"]["states"])},
            ))
        elif not relaxed_safe:
            first_line = min(
                (e.line for e in program.expand
                 if e.kind in ("apply", "reset")), default=icls.lineno)
            findings.append(Finding(
                rule_id="REP117",
                rule=DEEP_MC_RULES["REP117"][0],
                path=ctx.path,
                line=first_line,
                col=1,
                severity="warning",
                message=(
                    "%s is relaxed-barrier-unsafe: consuming partial "
                    "remote data for superstep i+1 diverges (%s); "
                    "counterexample schedule attached to the "
                    "ScheduleCertificate" % (
                        icls.name,
                        "; ".join(reasons[:3]) or "schedule divergence")),
                extra={"cls": icls.name, "arrays": arrays_txt,
                       "mc_states": str(
                           cert.explored["relaxed"]["states"])},
            ))
    certificates.sort(key=lambda c: c.primitive)
    return findings, certificates


# ---------------------------------------------------------------------------
# runtime gate (tier 2 of Enactor(relaxed_barriers=True))
# ---------------------------------------------------------------------------

_RUNTIME_MEMO: Dict[Tuple[str, int], List[ScheduleCertificate]] = {}


def certify_schedule_for(iteration_cls) -> Optional[ScheduleCertificate]:
    """Statically model-check the module defining ``iteration_cls`` and
    return its certificate (memoized per (file, mtime))."""
    module = sys.modules.get(getattr(iteration_cls, "__module__", ""))
    path = getattr(module, "__file__", None)
    if not path or not os.path.exists(path):
        return None
    key = (path, os.stat(path).st_mtime_ns)
    certs = _RUNTIME_MEMO.get(key)
    if certs is None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            mctx = ModuleContext.parse(path, source)
        except SyntaxError:
            return None
        _findings, certs = modelcheck_module(mctx)
        _RUNTIME_MEMO[key] = certs
    for cert in certs:
        if cert.primitive == iteration_cls.__name__:
            return cert
    return None
