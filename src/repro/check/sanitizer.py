"""Dynamic BSP race sanitizer: shadow-memory checking of the framework
contract.

The paper's correctness argument (Section III-B) is that an unmodified
single-GPU primitive stays correct on multiple GPUs because *all*
inter-GPU data flow goes through split/package/push messages combined at
the superstep boundary, and because concurrent updates of replicated
vertices merge through programmer-declared combiners.  The sanitizer
verifies both halves at runtime:

* every per-GPU slice array is wrapped in a :class:`ShadowArray` that
  attributes reads and writes to the *currently executing* virtual GPU
  (the enactor brackets each GPU's turn with
  :meth:`BspSanitizer.begin_gpu`/:meth:`~BspSanitizer.end_gpu`);
* an access to an array owned by a *different* GPU's slice is flagged
  immediately — that is peer state read (``SAN201``) or mutated
  (``SAN202``) mid-superstep, data that did not arrive through the last
  barrier;
* writes to arrays whose declared combiner is commutative or idempotent
  are provably barrier-mergeable and skipped; all other writes are
  logged, and at each barrier (:meth:`BspSanitizer.on_barrier`) two GPUs
  having written replicated copies of the same *global* vertex raises a
  write-write hazard (``SAN203``).

Opt-in via ``Enactor(..., sanitize=True)`` or ``repro run --sanitize``;
benchmarks stay unperturbed because unwrapped runs share no code with
the shadow path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = ["Hazard", "ShadowArray", "BspSanitizer"]

_SAMPLE = 8  # vertices listed per hazard report


@dataclass
class Hazard:
    """One detected violation of the BSP framework contract."""

    hazard_id: str  # SAN201 / SAN202 / SAN203
    name: str
    array: str
    superstep: int
    gpus: Tuple[int, ...]
    vertices: Tuple[int, ...]  # sample of affected vertex IDs
    message: str
    extra: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "hazard_id": self.hazard_id,
            "name": self.name,
            "array": self.array,
            "superstep": self.superstep,
            "gpus": list(self.gpus),
            "vertices": [int(v) for v in self.vertices],
            "message": self.message,
            **({"extra": dict(self.extra)} if self.extra else {}),
        }

    def render(self) -> str:
        return (
            f"superstep {self.superstep}: {self.hazard_id} ({self.name}) "
            f"on {self.array!r}: {self.message}"
        )


class ShadowArray(np.ndarray):
    """A slice array that reports its accesses to the sanitizer.

    Derived arrays (views, copies, fancy-indexing results) drop the
    sanitizer link in ``__array_finalize__`` so only accesses to the
    registered array itself are attributed — temporaries never produce
    findings of their own.
    """

    _san: Optional["BspSanitizer"]
    _owner: int
    _name: str

    @classmethod
    def wrap(
        cls, arr: np.ndarray, san: "BspSanitizer", owner: int, name: str
    ) -> "ShadowArray":
        obj = arr.view(cls)
        obj._san = san
        obj._owner = owner
        obj._name = name
        return obj

    def __array_finalize__(self, obj) -> None:
        self._san = None
        self._owner = getattr(obj, "_owner", -1)
        self._name = getattr(obj, "_name", "")

    # -- read/write attribution -------------------------------------------
    def __getitem__(self, key):
        san = self._san
        if san is not None and san._gpu is not None:
            san._on_read(self, key)
        return super().__getitem__(key)

    def __setitem__(self, key, value) -> None:
        san = self._san
        if san is not None and san._gpu is not None:
            san._on_write(self, key)
        super().__setitem__(key, value)

    def fill(self, value) -> None:
        san = self._san
        if san is not None and san._gpu is not None:
            san._on_write(self, slice(None))
        self.view(np.ndarray).fill(value)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        san = self._san
        if method == "at" and inputs and inputs[0] is self:
            # np.add.at / np.minimum.at — the simulated atomic update
            if san is not None and san._gpu is not None:
                san._on_write(self, inputs[1])
            rest = [
                x.view(np.ndarray) if isinstance(x, ShadowArray) else x
                for x in inputs[1:]
            ]
            ufunc.at(self.view(np.ndarray), *rest)
            return None
        for x in inputs:
            xs = getattr(x, "_san", None)
            if xs is not None and xs._gpu is not None:
                xs._on_read(x, slice(None))
        cast = [
            x.view(np.ndarray) if isinstance(x, ShadowArray) else x
            for x in inputs
        ]
        out = kwargs.get("out")
        if out is not None:
            for x in out:
                xs = getattr(x, "_san", None)
                if xs is not None and xs._gpu is not None:
                    xs._on_write(x, slice(None))
            kwargs["out"] = tuple(
                x.view(np.ndarray) if isinstance(x, ShadowArray) else x
                for x in out
            )
        return getattr(ufunc, method)(*cast, **kwargs)


def _positions(key, length: int) -> np.ndarray:
    """Resolve any 1-D index expression into concrete positions."""
    if isinstance(key, (int, np.integer)):
        return np.asarray([int(key) % length], dtype=np.int64)
    try:
        return np.arange(length, dtype=np.int64)[key]
    except (IndexError, TypeError, ValueError):
        return np.arange(length, dtype=np.int64)  # conservative: whole array


@dataclass
class _GpuStage:
    """One GPU's staged sanitizer state for the current superstep.

    Workers of the ``threads`` execution backend run concurrently, so
    mid-superstep findings cannot append to shared structures without
    perturbing the serial hazard order.  Each GPU turn accumulates into
    its own stage; :meth:`BspSanitizer.on_barrier` merges the stages in
    GPU-index order, reproducing exactly what the serial loop's
    interleaved appends would have produced.
    """

    hazards: List[Hazard] = field(default_factory=list)
    #: array name -> this GPU's written local-index chunks
    pending: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    #: (hazard_id, gpu, owner, name, superstep) dedupe for this turn
    seen: Set[tuple] = field(default_factory=set)


class BspSanitizer:
    """Records per-(GPU, superstep) accesses and checks the contract.

    Construction wraps every array of every :class:`DataSlice` in the
    problem; the enactor then brackets execution::

        san.start_run()
        for superstep:
            for i in gpus:  # possibly on worker threads
                san.begin_gpu(i, superstep)
                ...hooks run...
                san.end_gpu()
            san.on_barrier(superstep)

    The current GPU attribution is **thread-local**: under the enactor's
    ``threads`` backend each worker calls ``begin_gpu`` on its own
    thread, so concurrent turns attribute accesses to the right virtual
    GPU.  ``hazards`` accumulates per :meth:`start_run`; :meth:`report`
    returns them as dicts for metrics/CLI consumption.
    """

    def __init__(self, problem) -> None:
        self.problem = problem
        self.hazards: List[Hazard] = []
        self._tls = threading.local()
        #: per-GPU stages of the current superstep, merged at the barrier
        self._stages: Dict[int, _GpuStage] = {}
        self._safe: Dict[str, bool] = {}
        for name, comb in getattr(problem, "combiners", {}).items():
            self._safe[name] = bool(getattr(comb, "order_independent", False))
        for gpu, ds in enumerate(problem.data_slices):
            for name, arr in list(ds.arrays.items()):
                ds.arrays[name] = ShadowArray.wrap(arr, self, gpu, name)
        problem._sanitizer = self  # reachable from run_* convenience returns

    @property
    def _gpu(self) -> Optional[int]:
        """The virtual GPU executing on *this* thread (None outside turns)."""
        return getattr(self._tls, "gpu", None)

    @property
    def _superstep(self) -> int:
        return getattr(self._tls, "superstep", -1)

    @property
    def _stage(self) -> Optional[_GpuStage]:
        return getattr(self._tls, "stage", None)

    # -- enactor protocol ---------------------------------------------------
    def start_run(self) -> None:
        self.hazards.clear()
        self._stages.clear()
        self._tls.gpu = None
        self._tls.stage = None
        self._tls.superstep = -1

    def begin_gpu(self, gpu: int, superstep: int) -> None:
        stage = _GpuStage()
        self._stages[gpu] = stage
        self._tls.gpu = gpu
        self._tls.stage = stage
        self._tls.superstep = superstep

    def end_gpu(self) -> None:
        self._tls.gpu = None
        self._tls.stage = None

    def take_stage(self, gpu: int) -> Optional[_GpuStage]:
        """Pop one GPU's stage (processes-backend worker side: the stage
        ships to the parent in the sidecar; it is a plain picklable
        dataclass)."""
        return self._stages.pop(gpu, None)

    def adopt_stage(self, gpu: int, stage: Optional[_GpuStage]) -> None:
        """Install a worker-produced stage so :meth:`on_barrier` merges
        it exactly like a locally produced one."""
        if stage is not None:
            self._stages[gpu] = stage

    def on_barrier(self, superstep: int) -> None:
        """Merge per-GPU stages (in GPU order, reproducing the serial
        append order) and check logged writes for replicated WW races."""
        pending: Dict[str, Dict[int, List[np.ndarray]]] = {}
        for gpu in sorted(self._stages):
            stage = self._stages[gpu]
            self.hazards.extend(stage.hazards)
            for name, chunks in stage.pending.items():
                pending.setdefault(name, {})[gpu] = chunks
        self._stages.clear()
        for name, per_gpu in pending.items():
            writers = {g: idx for g, idx in per_gpu.items() if idx}
            if len(writers) < 2:
                continue
            gpus_arr, globs = [], []
            for g, chunks in writers.items():
                local = np.unique(np.concatenate(chunks))
                l2g = self.problem.subgraphs[g].local_to_global
                local = local[local < l2g.size]
                globs.append(l2g[local])
                gpus_arr.append(np.full(local.size, g, dtype=np.int64))
            gl = np.concatenate(globs)
            gp = np.concatenate(gpus_arr)
            order = np.argsort(gl, kind="stable")
            gl, gp = gl[order], gp[order]
            uniq, start = np.unique(gl, return_index=True)
            counts = np.diff(np.append(start, gl.size))
            conflicted = uniq[counts > 1]
            if conflicted.size == 0:
                continue
            comb = getattr(self.problem, "combiners", {}).get(name)
            desc = comb.describe() if comb is not None else "none declared"
            self.hazards.append(
                Hazard(
                    hazard_id="SAN203",
                    name="unsafe-concurrent-write",
                    array=name,
                    superstep=superstep,
                    gpus=tuple(sorted(writers)),
                    vertices=tuple(
                        int(v) for v in conflicted[:_SAMPLE]
                    ),
                    message=(
                        f"{conflicted.size} replicated vertex(es) written "
                        f"by multiple GPUs in one superstep but the "
                        f"combiner is {desc}; declare a commutative/"
                        "idempotent combiner in ProblemBase.combiners or "
                        "serialize the updates through messages"
                    ),
                    extra={"combiner": desc},
                )
            )

    def report(self) -> List[dict]:
        return [h.to_dict() for h in self.hazards]

    def render(self) -> str:
        if not self.hazards:
            return "sanitizer: no hazards detected"
        lines = [h.render() for h in self.hazards]
        lines.append(f"sanitizer: {len(self.hazards)} hazard(s)")
        return "\n".join(lines)

    # -- ShadowArray callbacks ---------------------------------------------
    def _on_read(self, arr: "ShadowArray", key) -> None:
        gpu = self._gpu
        if gpu == arr._owner:
            return
        stage = self._stage
        if stage is None:
            return
        dedupe = ("SAN201", gpu, arr._owner, arr._name, self._superstep)
        if dedupe in stage.seen:
            return
        stage.seen.add(dedupe)
        pos = _positions(key, arr.shape[0]) if arr.ndim == 1 else \
            np.empty(0, dtype=np.int64)
        stage.hazards.append(
            Hazard(
                hazard_id="SAN201",
                name="remote-read",
                array=arr._name,
                superstep=self._superstep,
                gpus=(gpu, arr._owner),
                vertices=tuple(int(v) for v in pos[:_SAMPLE]),
                message=(
                    f"GPU {gpu} read GPU {arr._owner}'s {arr._name!r} "
                    "mid-superstep — remote-owned data that did not "
                    "arrive through the last barrier; receive it via "
                    "expand_incoming instead"
                ),
            )
        )

    def _on_write(self, arr: "ShadowArray", key) -> None:
        gpu = self._gpu
        stage = self._stage
        if stage is None:
            return
        if gpu != arr._owner:
            dedupe = ("SAN202", gpu, arr._owner, arr._name, self._superstep)
            if dedupe in stage.seen:
                return
            stage.seen.add(dedupe)
            pos = _positions(key, arr.shape[0]) if arr.ndim == 1 else \
                np.empty(0, dtype=np.int64)
            stage.hazards.append(
                Hazard(
                    hazard_id="SAN202",
                    name="remote-write",
                    array=arr._name,
                    superstep=self._superstep,
                    gpus=(gpu, arr._owner),
                    vertices=tuple(int(v) for v in pos[:_SAMPLE]),
                    message=(
                        f"GPU {gpu} wrote GPU {arr._owner}'s "
                        f"{arr._name!r} directly; inter-GPU updates must "
                        "travel as packaged messages (comm.py)"
                    ),
                )
            )
            return
        if self._safe.get(arr._name, False):
            return  # declared combiner is order-independent: mergeable
        if arr.ndim != 1:
            return
        stage.pending.setdefault(arr._name, []).append(
            _positions(key, arr.shape[0])
        )
