"""repro — reproduction of "Multi-GPU Graph Analytics" (Pan et al., IPDPS 2017).

A Gunrock-style programmable multi-GPU graph analytics framework running
on a simulated multi-GPU node: correctness-bearing computation executes in
NumPy over genuinely partitioned subgraphs with explicit inter-GPU
messages; performance comes from a calibrated virtual-time cost model
(BSP: W + H*g + S*l).  See DESIGN.md for the substitution rationale and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import datasets, k40_node, run_bfs
    graph = datasets.load("soc-orkut")
    machine = k40_node(num_gpus=4)
    labels, metrics, _ = run_bfs(graph, machine, src=0)
    print(metrics.summary(), metrics.gteps(graph.num_edges))
"""

from . import graph, partition, primitives, sim
from .errors import (
    CommunicationError,
    ConvergenceError,
    DeviceMemoryError,
    GraphFormatError,
    PartitionError,
    ReproError,
    SimulationError,
)
from .graph import CooGraph, CsrGraph, build_csr, from_edges
from .graph import datasets
from .partition import (
    BiasedRandomPartitioner,
    MetisLikePartitioner,
    RandomPartitioner,
    make_partitioner,
)
from .primitives import (
    run_bc,
    run_bfs,
    run_cc,
    run_dobfs,
    run_pagerank,
    run_sssp,
)
from .sim import K40, K80_HALF, P100, Machine, k40_node, k80_node, p100_node
from .types import ID32, ID32_V64E, ID64, IdConfig

__version__ = "1.0.0"

__all__ = [
    "graph",
    "partition",
    "primitives",
    "sim",
    "datasets",
    "CooGraph",
    "CsrGraph",
    "build_csr",
    "from_edges",
    "RandomPartitioner",
    "BiasedRandomPartitioner",
    "MetisLikePartitioner",
    "make_partitioner",
    "Machine",
    "k40_node",
    "k80_node",
    "p100_node",
    "K40",
    "K80_HALF",
    "P100",
    "run_bfs",
    "run_dobfs",
    "run_sssp",
    "run_cc",
    "run_bc",
    "run_pagerank",
    "IdConfig",
    "ID32",
    "ID64",
    "ID32_V64E",
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "DeviceMemoryError",
    "SimulationError",
    "ConvergenceError",
    "CommunicationError",
]
