"""Self-contained result validators (Graph500-style).

The paper states "computations are verified for correctness"
(Section VII-A).  These validators check a primitive's *output* against
the input graph using only local consistency properties — O(|E|)
vectorized passes, no reference run needed — so users can verify results
on graphs too big to solve twice:

* BFS: the source has level 0; every edge spans at most one level; every
  reached non-source vertex has a parent-level neighbor; unreached
  vertices have no reached neighbors.
* SSSP: distances are a relaxed fixpoint (no edge can improve them) and
  every reached vertex is supported by a tight incoming edge.
* CC: both endpoints of every edge share a component; each component's
  ID is the minimum vertex ID in it.
* PR: ranks satisfy the PageRank fixpoint equation within tolerance.

Each validator returns a list of human-readable violation strings
(empty = valid); ``assert_valid`` raises on violations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.csr import CsrGraph

__all__ = [
    "validate_bfs",
    "validate_sssp",
    "validate_cc",
    "validate_pagerank",
    "assert_valid",
]


def _edge_endpoints(graph: CsrGraph):
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.row_offsets).astype(np.int64),
    )
    return src, graph.col_indices.astype(np.int64)


def validate_bfs(graph: CsrGraph, source: int, levels: np.ndarray) -> List[str]:
    """Check a BFS level array for internal consistency."""
    problems: List[str] = []
    levels = np.asarray(levels)
    if levels.shape != (graph.num_vertices,):
        return [f"levels has shape {levels.shape}, expected ({graph.num_vertices},)"]
    if levels[source] != 0:
        problems.append(f"source {source} has level {levels[source]}, not 0")
    if np.any((levels < -1)):
        problems.append("levels below -1 present")
    src, dst = _edge_endpoints(graph)
    both = (levels[src] >= 0) & (levels[dst] >= 0)
    gap = np.abs(levels[src[both]] - levels[dst[both]])
    if gap.size and gap.max() > 1:
        k = int(np.argmax(gap))
        problems.append(
            f"edge ({src[both][k]},{dst[both][k]}) spans {gap.max()} levels"
        )
    # reached/unreached may not touch: an unreached vertex adjacent to a
    # reached one would have been discovered
    frontier_leak = (levels[src] >= 0) & (levels[dst] == -1)
    if np.any(frontier_leak):
        k = int(np.argmax(frontier_leak))
        problems.append(
            f"unreached vertex {dst[k]} adjacent to reached {src[k]}"
        )
    # every reached non-source vertex has a neighbor one level up
    reached = np.flatnonzero(levels > 0)
    if reached.size:
        has_parent = np.zeros(graph.num_vertices, dtype=bool)
        parent_edge = (
            (levels[src] >= 0) & (levels[dst] == levels[src] + 1)
        )
        has_parent[dst[parent_edge]] = True
        orphans = reached[~has_parent[reached]]
        if orphans.size:
            problems.append(
                f"{orphans.size} reached vertices lack a parent-level "
                f"neighbor (first: {orphans[0]})"
            )
    return problems


def validate_sssp(
    graph: CsrGraph, source: int, dist: np.ndarray, atol: float = 1e-9
) -> List[str]:
    """Check an SSSP distance array for the relaxed-fixpoint property."""
    if graph.values is None:
        return ["graph has no edge values"]
    problems: List[str] = []
    dist = np.asarray(dist, dtype=np.float64)
    if dist[source] != 0:
        problems.append(f"source distance is {dist[source]}, not 0")
    if np.any(dist < 0):
        problems.append("negative distances present")
    src, dst = _edge_endpoints(graph)
    w = graph.values.astype(np.float64)
    finite = np.isfinite(dist[src])
    slack = dist[dst[finite]] - (dist[src[finite]] + w[finite])
    if slack.size and slack.max() > atol:
        k = int(np.argmax(slack))
        problems.append(
            f"edge ({src[finite][k]},{dst[finite][k]}) can relax by "
            f"{slack.max():.3g}"
        )
    # tightness: every finite non-source distance is achieved by an edge
    reached = np.isfinite(dist)
    reached[source] = False
    if np.any(reached):
        supported = np.zeros(graph.num_vertices, dtype=bool)
        tight = (
            np.abs(dist[dst[finite]] - (dist[src[finite]] + w[finite]))
            <= atol
        )
        # map back to full edge indexing
        idx = np.flatnonzero(finite)[tight]
        supported[dst[idx]] = True
        unsupported = np.flatnonzero(reached & ~supported)
        if unsupported.size:
            problems.append(
                f"{unsupported.size} distances not supported by any tight "
                f"edge (first: {unsupported[0]})"
            )
    # unreached vertices must not be adjacent to reached ones
    leak = np.isfinite(dist[src]) & ~np.isfinite(dist[dst])
    if np.any(leak):
        problems.append("unreached vertex adjacent to reached one")
    return problems


def validate_cc(graph: CsrGraph, comp: np.ndarray) -> List[str]:
    """Check a component array: edge consistency and min-ID convention."""
    problems: List[str] = []
    comp = np.asarray(comp)
    src, dst = _edge_endpoints(graph)
    if np.any(comp[src] != comp[dst]):
        k = int(np.argmax(comp[src] != comp[dst]))
        problems.append(
            f"edge ({src[k]},{dst[k]}) spans components "
            f"{comp[src[k]]} and {comp[dst[k]]}"
        )
    ids = np.unique(comp)
    # each component ID must be a member of its own component, and be the
    # minimum member (the library's convention)
    for cid in ids:
        members = np.flatnonzero(comp == cid)
        if cid not in members:
            problems.append(f"component id {cid} is not one of its members")
        elif members.min() != cid:
            problems.append(
                f"component {cid} contains smaller vertex {members.min()}"
            )
    return problems


def validate_pagerank(
    graph: CsrGraph,
    ranks: np.ndarray,
    damping: float = 0.85,
    rtol: float = 1e-3,
) -> List[str]:
    """Check that ranks satisfy the PR fixpoint equation within rtol."""
    problems: List[str] = []
    ranks = np.asarray(ranks, dtype=np.float64)
    if np.any(ranks < (1.0 - damping) - 1e-9):
        problems.append("rank below the (1-d) floor present")
    deg = graph.out_degree().astype(np.float64)
    src, dst = _edge_endpoints(graph)
    push = np.zeros(graph.num_vertices)
    nz = deg > 0
    push[nz] = damping * ranks[nz] / deg[nz]
    expected = np.full(graph.num_vertices, 1.0 - damping)
    np.add.at(expected, dst, push[src])
    resid = np.abs(expected - ranks) / np.maximum(ranks, 1e-12)
    if resid.size and resid.max() > rtol:
        k = int(np.argmax(resid))
        problems.append(
            f"vertex {k} violates the PR fixpoint by {resid.max():.3g} "
            f"(got {ranks[k]:.6g}, expected {expected[k]:.6g})"
        )
    return problems


def assert_valid(problems: List[str]) -> None:
    """Raise ``AssertionError`` listing any violations."""
    if problems:
        raise AssertionError(
            "result validation failed:\n  " + "\n  ".join(problems)
        )
