"""Analysis: GTEPS accounting, BSP decomposition, scaling drivers."""

from .bsp import BspTerms, Table1Row, decompose, table1_check
from .gteps import traversal_gteps, traversed_edges
from .reporting import fmt, render_series, render_table
from .timeline import busy_fraction, enable_timeline, render_timeline
from .validate import (
    assert_valid,
    validate_bfs,
    validate_cc,
    validate_pagerank,
    validate_sssp,
)
from .scaling import (
    ScalingPoint,
    geomean_speedups,
    run_speedup_sweep,
    strong_scaling,
    weak_edge_scaling,
    weak_vertex_scaling,
)

__all__ = [
    "BspTerms",
    "decompose",
    "Table1Row",
    "table1_check",
    "traversal_gteps",
    "traversed_edges",
    "render_table",
    "render_series",
    "fmt",
    "ScalingPoint",
    "run_speedup_sweep",
    "geomean_speedups",
    "strong_scaling",
    "weak_edge_scaling",
    "weak_vertex_scaling",
    "validate_bfs",
    "validate_sssp",
    "validate_cc",
    "validate_pagerank",
    "assert_valid",
    "enable_timeline",
    "render_timeline",
    "busy_fraction",
]
