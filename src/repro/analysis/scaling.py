"""Scaling experiment drivers: Fig. 4, Fig. 5, Fig. 6 workloads.

* **Speedup sweeps** (Fig. 4/6): run a primitive on a dataset suite at
  1..6 GPUs and report per-GPU-count geometric-mean speedup over 1 GPU.
* **Strong scaling** (Fig. 5): fixed rmat graph, growing GPU count.
* **Weak-edge scaling**: vertices fixed, edge factor proportional to GPU
  count (paper: 2^19 vertices, edge factor 256*|GPUs|).
* **Weak-vertex scaling**: vertices proportional to GPU count, fixed edge
  factor (paper: 2^19*|GPUs| vertices, edge factor 256).

Workload sizes are the paper's divided by the dataset down-scale
(DESIGN.md); the simulator's matching ``scale`` keeps the regimes
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph import datasets
from ..graph.build import add_random_weights
from ..graph.csr import CsrGraph
from ..graph.generators.rmat import generate_rmat
from ..sim.device import DeviceSpec, K40
from ..sim.machine import Machine
from .gteps import traversal_gteps

__all__ = [
    "ScalingPoint",
    "run_speedup_sweep",
    "geomean_speedups",
    "strong_scaling",
    "weak_edge_scaling",
    "weak_vertex_scaling",
]


@dataclass
class ScalingPoint:
    """One (primitive, dataset, #GPUs) measurement."""

    primitive: str
    dataset: str
    num_gpus: int
    elapsed: float
    gteps: float = 0.0
    supersteps: int = 0


def _run_one(
    primitive: str,
    graph: CsrGraph,
    num_gpus: int,
    spec: DeviceSpec,
    dataset: str = "",
    src: int = 0,
    scale: Optional[float] = None,
) -> ScalingPoint:
    from ..primitives import RUNNERS
    from ..sim.machine import DEFAULT_SCALE

    machine = Machine(num_gpus, spec=spec, scale=scale or DEFAULT_SCALE)
    runner = RUNNERS[primitive]
    if primitive in ("bfs", "dobfs", "sssp", "bc"):
        result, metrics, _ = runner(graph, machine, src=src)
    else:
        result, metrics, _ = runner(graph, machine)
    g = 0.0
    if primitive in ("bfs", "dobfs"):
        g = traversal_gteps(graph, result, metrics)
    elif metrics.elapsed > 0:
        # iterative primitives touch ~|E| edges per superstep; TEPS counts
        # total edge visits over the run (the paper's PR series convention)
        g = (
            graph.num_edges
            * metrics.supersteps
            * metrics.scale
            / metrics.elapsed
            / 1e9
        )
    return ScalingPoint(
        primitive=primitive,
        dataset=dataset,
        num_gpus=num_gpus,
        elapsed=metrics.elapsed,
        gteps=g,
        supersteps=metrics.supersteps,
    )


def run_speedup_sweep(
    primitive: str,
    dataset_names: Sequence[str],
    gpu_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    spec: DeviceSpec = K40,
    src: int = 0,
    weight_seed: int = 2,
) -> List[ScalingPoint]:
    """Run a primitive over datasets x GPU counts (the Fig. 4 grid)."""
    points: List[ScalingPoint] = []
    for name in dataset_names:
        g = datasets.load(name)
        if primitive == "sssp":
            g = add_random_weights(g, 1, 64, seed=weight_seed)
        scale = datasets.machine_scale(name)
        for n in gpu_counts:
            points.append(
                _run_one(
                    primitive, g, n, spec, dataset=name, src=src, scale=scale
                )
            )
    return points


def geomean_speedups(points: Sequence[ScalingPoint]) -> Dict[int, float]:
    """Per-GPU-count geometric mean of speedup over 1 GPU (Fig. 4)."""
    base: Dict[str, float] = {}
    for p in points:
        if p.num_gpus == 1:
            base[p.dataset] = p.elapsed
    by_n: Dict[int, List[float]] = {}
    for p in points:
        if p.dataset not in base or p.elapsed <= 0:
            continue
        by_n.setdefault(p.num_gpus, []).append(base[p.dataset] / p.elapsed)
    return {
        n: float(np.exp(np.mean(np.log(v)))) for n, v in sorted(by_n.items())
    }


# ---------------------------------------------------------------------------
# Fig. 5 workloads.  Paper sizes divided by the 2^10 down-scale:
# strong = rmat(2^24, 32)/2^10 ~ rmat scale 15, EF 16;
# weak-edge = rmat(2^19, 256n)/2^10 ~ scale 11, EF 32n;
# weak-vertex = rmat(2^19 * n, 256)/2^10 ~ scale 11+log2(n), EF 32.
# ---------------------------------------------------------------------------


def strong_scaling(
    primitive: str,
    gpu_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    spec: DeviceSpec = K40,
    scale: int = 15,
    edge_factor: int = 32,
    seed: int = 1,
    machine_scale: float = 512.0,
) -> List[ScalingPoint]:
    """Fixed rmat graph, growing GPU count (paper: rmat 2^24, EF 32)."""
    g = generate_rmat(scale, edge_factor, seed=seed)
    return [
        _run_one(
            primitive, g, n, spec,
            dataset=f"rmat_n{scale}_{edge_factor}", scale=machine_scale,
        )
        for n in gpu_counts
    ]


def weak_edge_scaling(
    primitive: str,
    gpu_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    spec: DeviceSpec = K40,
    scale: int = 13,
    edge_factor_per_gpu: int = 32,
    seed: int = 1,
    machine_scale: float = 64.0,
) -> List[ScalingPoint]:
    """Vertices fixed, |E| proportional to GPU count
    (paper: rmat 2^19 vertices, edge factor 256 * |GPUs|)."""
    points = []
    for n in gpu_counts:
        g = generate_rmat(scale, edge_factor_per_gpu * n, seed=seed)
        points.append(
            _run_one(
                primitive, g, n, spec,
                dataset=f"weak-edge x{n}", scale=machine_scale,
            )
        )
    return points


def weak_vertex_scaling(
    primitive: str,
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    spec: DeviceSpec = K40,
    base_scale: int = 13,
    edge_factor: int = 32,
    seed: int = 1,
    machine_scale: float = 64.0,
) -> List[ScalingPoint]:
    """|V| proportional to GPU count (power-of-two counts), fixed EF
    (paper: rmat 2^19 * |GPUs| vertices, edge factor 256)."""
    points = []
    for n in gpu_counts:
        log2n = int(round(np.log2(n)))
        if 2**log2n != n:
            raise ValueError("weak-vertex scaling needs power-of-2 GPU counts")
        g = generate_rmat(base_scale + log2n, edge_factor, seed=seed)
        points.append(
            _run_one(
                primitive, g, n, spec,
                dataset=f"weak-vertex x{n}", scale=machine_scale,
            )
        )
    return points
