"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the rows/series of the paper artifact it
regenerates; these helpers keep the output format consistent (and easy to
diff between runs).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_series", "fmt"]


def fmt(x, digits: int = 3) -> str:
    """Format a cell: floats get fixed digits, everything else str()."""
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if abs(x) >= 1e5 or (abs(x) < 1e-3 and x != 0):
            return f"{x:.{digits}e}"
        return f"{x:.{digits}f}"
    return str(x)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    digits: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    srows: List[List[str]] = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence, digits: int = 3
) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    pairs = ", ".join(f"{fmt(x, 0)}={fmt(y, digits)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
