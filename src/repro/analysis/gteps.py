"""Traversed-edges-per-second accounting.

The paper reports traversal performance in GTEPS (billions of traversed
edges per second), following the Graph500 convention: the edge count is
the number of undirected input edges in the traversed component (not the
algorithm's internal edge visits — DOBFS is *credited* with all edges even
though edge skipping visits fewer, which is precisely why its GTEPS can
exceed the memory-bandwidth bound of a plain BFS).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.metrics import RunMetrics

__all__ = ["traversed_edges", "traversal_gteps"]


def traversed_edges(graph: CsrGraph, labels: np.ndarray) -> int:
    """Edges in the component reached by a traversal (label >= 0).

    Counts directed CSR slots whose source was reached; for the paper's
    undirected graphs this equals twice the undirected edge count of the
    component, matching how GPU BFS papers count TEPS on symmetrized
    inputs.
    """
    reached = labels >= 0
    deg = graph.out_degree().astype(np.int64)
    return int(deg[reached].sum())


def traversal_gteps(
    graph: CsrGraph, labels: np.ndarray, metrics: RunMetrics
) -> float:
    """GTEPS of a traversal run (scaled edges / virtual seconds / 1e9)."""
    if metrics.elapsed <= 0:
        return 0.0
    edges = traversed_edges(graph, labels)
    return edges * metrics.scale / metrics.elapsed / 1e9
