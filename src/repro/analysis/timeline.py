"""Execution timeline rendering (virtual-time Gantt charts).

The virtual streams can record every operation they execute
(``Stream.record_history``); this module turns those records into an
ASCII timeline per GPU/stream, making the BSP structure — compute bursts,
communication overlap, barrier gaps — directly visible.  Used by the
scaling examples and handy when debugging a new primitive's cost model.

Usage::

    enable_timeline(machine)
    Enactor(problem, Iteration).enact(src=0)
    print(render_timeline(machine, width=100))
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.machine import Machine

__all__ = ["enable_timeline", "clear_timeline", "render_timeline", "busy_fraction"]


def enable_timeline(machine: Machine) -> None:
    """Turn on operation recording for every stream of the machine."""
    for gpu in machine.gpus:
        for stream in gpu.streams.values():
            stream.record_history = True
            stream.history.clear()


def clear_timeline(machine: Machine) -> None:
    """Drop recorded history without disabling recording."""
    for gpu in machine.gpus:
        for stream in gpu.streams.values():
            stream.history.clear()


def _horizon(machine: Machine) -> float:
    end = 0.0
    for gpu in machine.gpus:
        for stream in gpu.streams.values():
            for _s, e, _l in stream.history:
                end = max(end, e)
    return end


def busy_fraction(machine: Machine, stream_name: str = "compute") -> dict:
    """Per-GPU fraction of the run each stream spent busy.

    Low compute busy-fractions on multi-GPU runs are the visual signature
    of latency-bound workloads (the road-network story of Section V-B).
    """
    end = _horizon(machine)
    out = {}
    for gpu in machine.gpus:
        stream = gpu.streams.get(stream_name)
        if stream is None or end <= 0:
            out[gpu.device_id] = 0.0
            continue
        busy = sum(e - s for s, e, _ in stream.history)
        out[gpu.device_id] = busy / end
    return out


def render_timeline(
    machine: Machine,
    width: int = 100,
    start: float = 0.0,
    end: Optional[float] = None,
) -> str:
    """Render every stream's history as one text row per stream.

    Each column is a time bucket; a cell shows ``#`` when the stream was
    busy most of that bucket, ``+`` when partially busy, ``.`` when idle.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    end = end if end is not None else _horizon(machine)
    if end <= start:
        return "(empty timeline)"
    span = end - start
    dt = span / width
    lines: List[str] = [
        f"timeline: {start * 1e3:.3f} ms .. {end * 1e3:.3f} ms "
        f"({dt * 1e6:.1f} us/column)"
    ]
    for gpu in machine.gpus:
        for name, stream in sorted(gpu.streams.items()):
            buckets = [0.0] * width
            for s, e, _label in stream.history:
                s = max(s, start)
                e = min(e, end)
                if e <= s:
                    continue
                first = int((s - start) / dt)
                last = min(int((e - start) / dt), width - 1)
                for b in range(first, last + 1):
                    b_start = start + b * dt
                    b_end = b_start + dt
                    overlap = min(e, b_end) - max(s, b_start)
                    buckets[b] += max(0.0, overlap)
            row = "".join(
                "#" if frac >= 0.5 * dt else ("+" if frac > 0 else ".")
                for frac in buckets
            )
            lines.append(f"gpu{gpu.device_id}.{name:<8s} |{row}|")
    return "\n".join(lines)
