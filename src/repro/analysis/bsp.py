"""BSP cost-model analysis: Table I validation and W+Hg+Sl decomposition.

Table I of the paper gives asymptotic bounds for every primitive's local
computation W, communication computation C, communication volume H and
iteration count S.  :func:`table1_check` runs a primitive, reads the
measured counters out of :class:`~repro.sim.metrics.RunMetrics`, and
reports the measured-to-bound ratios — the reproduction's way of
*testing* the complexity table rather than quoting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..graph.csr import CsrGraph
from ..partition.base import PartitionResult
from ..partition.border import border_matrix
from ..sim.metrics import RunMetrics

__all__ = ["BspTerms", "decompose", "Table1Row", "table1_check"]


@dataclass(frozen=True)
class BspTerms:
    """Measured W / Hg / Sl decomposition of one run (seconds)."""

    compute: float  # W-side: sum over supersteps of the slowest GPU
    communicate: float  # Hg-side: same, for transfer time
    synchronize: float  # Sl-side: everything else (barriers, overheads)
    total: float

    def fractions(self) -> Dict[str, float]:
        t = max(self.total, 1e-30)
        return {
            "compute": self.compute / t,
            "communicate": self.communicate / t,
            "synchronize": self.synchronize / t,
        }


def decompose(metrics: RunMetrics) -> BspTerms:
    """Split a run's elapsed time into BSP terms.

    Per superstep the critical path is the slowest GPU; compute and
    communication are measured there, and the remainder of the superstep
    duration (barrier latency, launch overhead skew) is synchronization.
    """
    compute = comm = sync = 0.0
    for rec in metrics.iterations:
        c = max(rec.compute_time.values(), default=0.0)
        m = max(rec.comm_time.values(), default=0.0)
        compute += c
        comm += m
        sync += max(0.0, rec.duration - c - m)
    return BspTerms(compute, comm, sync, metrics.elapsed)


@dataclass(frozen=True)
class Table1Row:
    """Measured counters vs the paper's bound for one primitive."""

    primitive: str
    measured_W: int  # total edges visited
    bound_W: float
    measured_H: int  # total items sent
    bound_H: float
    measured_C: int  # total comm-computation items
    bound_C: float
    supersteps: int

    @property
    def w_ratio(self) -> float:
        return self.measured_W / max(self.bound_W, 1.0)

    @property
    def h_ratio(self) -> float:
        return self.measured_H / max(self.bound_H, 1.0)

    @property
    def c_ratio(self) -> float:
        return self.measured_C / max(self.bound_C, 1.0)


def _partition_quantities(graph: CsrGraph, part: PartitionResult):
    n = part.num_gpus
    borders = border_matrix(graph, part)
    b_in = borders.sum(axis=0)  # vertices each GPU *receives* updates for
    b_out = borders.sum(axis=1)
    counts = part.counts()
    return {
        "V": graph.num_vertices,
        "E": graph.num_edges,
        "n": n,
        "max_Li": int(counts.max()),
        "sum_B": int(borders.sum()),
        "max_Bi": int(max(b_out.max(), b_in.max())) if n > 1 else 0,
    }


def table1_check(
    primitive: str,
    graph: CsrGraph,
    part: PartitionResult,
    metrics: RunMetrics,
) -> Table1Row:
    """Compare a run's measured W/H/C against the Table I bound.

    Bounds are summed over supersteps and GPUs so ratios should be O(1):
    well below ~2 means the bound holds with room; far above means the
    implementation does asymptotically more work than the paper's.
    """
    q = _partition_quantities(graph, part)
    S = metrics.supersteps
    n, V, E = q["n"], q["V"], q["E"]
    sum_B = q["sum_B"]
    if primitive in ("bfs",):
        bound_W, bound_H, bound_C = E, sum_B, S * V
    elif primitive == "dobfs":
        bound_W, bound_H, bound_C = E, S * (n - 1) * V, S * (n - 1) * V
    elif primitive == "sssp":
        # b: re-relaxation factor, measured as W / E
        b = max(1.0, metrics.total_edges_visited / max(E, 1))
        bound_W, bound_H, bound_C = b * E, 2 * b * sum_B, b * S * V
    elif primitive == "bc":
        bound_W = 2 * E + V  # forward + backward edges (+ sync pass)
        bound_H = 5 * sum_B + 2 * (n - 1) * V
        bound_C = 2 * S * V + (n - 1) * V
    elif primitive == "cc":
        bound_W = int(np.ceil(np.log2(max(S, 2)) + 1)) * E * 4
        bound_H = S * 2 * V * max(n - 1, 1)
        bound_C = S * V * max(n - 1, 1)
    elif primitive == "pr":
        bound_W, bound_H, bound_C = S * E, S * sum_B, S * sum_B
    else:
        raise ValueError(f"unknown primitive {primitive!r}")
    return Table1Row(
        primitive=primitive,
        measured_W=metrics.total_edges_visited,
        bound_W=float(bound_W),
        measured_H=metrics.total_items_sent,
        bound_H=float(bound_H),
        measured_C=metrics.total_comm_compute,
        bound_C=float(bound_C),
        supersteps=S,
    )
