"""Span-based tracer for the virtual multi-GPU machine.

Records what the virtual machine *did* on two clocks at once:

* the **virtual clock** — the simulated timeline the cost model charges
  (``Stream.launch`` timestamps), which is what every performance claim
  in the repro is made on; and
* the **wall clock** — real ``time.perf_counter`` time, which is what
  the ``threads`` backend actually overlaps.

Spans live on one track per virtual GPU plus a shared communication
track (:data:`COMM_TRACK`).  The tracer is a pure observer: it never
launches work, never advances a stream, and never touches result
arrays, so a traced run is bit-identical to an untraced one.

Concurrency discipline (mirrors ``check.sanitizer.BspSanitizer``): each
worker thread brackets its superstep with :meth:`Tracer.begin_gpu` /
:meth:`Tracer.end_gpu`; everything recorded inside the bracket goes to
that GPU's private staging list and is merged into the global record in
GPU-index order at :meth:`Tracer.on_barrier`.  That makes the span and
event streams deterministic and backend-invariant even though worker
threads record concurrently.  A rolled-back superstep's staging is
discarded with :meth:`Tracer.drop_staged` — exactly like the enactor
drops the aborted superstep's ``GpuStepEffects`` — so event counts stay
consistent with ``RunMetrics`` recovery counters.

Disabled-cost discipline (mirrors ``sim/faults.py``): every hook site in
the framework holds a plain attribute that is ``None`` by default and
guards the call with a single ``if tracer is None`` check.  Lint rule
REP109 (``repro check``) enforces the guard statically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["COMM_TRACK", "SUPERVISOR_TRACK", "Span", "Tracer"]

#: track index of the shared communication row (real GPUs are 0..n-1)
COMM_TRACK = -1

#: track index of the worker-supervision row (processes backend,
#: ``Enactor(supervise=True)``): respawn/lost/stale-heartbeat activity
SUPERVISOR_TRACK = -2


@dataclass
class Span:
    """One timed interval on one track of the trace."""

    name: str
    #: "op" (operator launch), "superstep", or "comm" (inter-GPU send)
    cat: str
    #: GPU index, or :data:`COMM_TRACK` for the communication row
    track: int
    iteration: int
    #: virtual-clock start/duration in (virtual) seconds
    vt_start: float
    vt_dur: float
    #: wall-clock start/duration in seconds since the tracer was created;
    #: zero for spans that only exist on the virtual timeline
    wall_start: float = 0.0
    wall_dur: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> Tuple:
        """Identity on the virtual timeline only — wall clock excluded,
        so backend-invariance tests can compare serial vs threads."""
        return (
            self.cat,
            self.name,
            self.track,
            self.iteration,
            round(self.vt_start, 12),
            round(self.vt_dur, 12),
        )

    def to_record(self) -> dict:
        """Event-bus (JSONL) representation."""
        rec: Dict[str, Any] = {
            "type": "span",
            "cat": self.cat,
            "name": self.name,
            "gpu": self.track,
            "iteration": self.iteration,
            "vt": self.vt_start,
            "dur": self.vt_dur,
        }
        if self.wall_dur:
            rec["wall"] = self.wall_start
            rec["wall_dur"] = self.wall_dur
        if self.args:
            rec["args"] = dict(self.args)
        return rec


class Tracer:
    """Collects :class:`Span` objects and structured events.

    Attach to a run by passing ``tracer=`` to the enactor (or the
    ``run_*`` convenience runners); attach a
    :class:`repro.obs.events.EventBus` to stream records out as JSONL.
    """

    def __init__(self, bus=None):
        self.bus = bus
        self.spans: List[Span] = []
        self.events: List[dict] = []
        #: wall-clock per-operator aggregate: name -> [calls, seconds]
        self.op_wall: Dict[str, List[float]] = {}
        self.primitive = ""
        self.backend = ""
        self.num_gpus = 0
        self._staging: Dict[int, List[tuple]] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._wall0 = time.perf_counter()

    # -- clocks ---------------------------------------------------------------
    def wall(self) -> float:
        """Seconds of wall-clock time since the tracer was created."""
        return time.perf_counter() - self._wall0

    # -- run / superstep brackets --------------------------------------------
    def begin_run(self, primitive: str, num_gpus: int, backend: str = "") -> None:
        self.primitive = str(primitive)
        self.num_gpus = int(num_gpus)
        self.backend = str(backend)
        self.instant(
            "run.begin",
            vt=0.0,
            primitive=self.primitive,
            num_gpus=self.num_gpus,
            backend=self.backend,
        )

    def end_run(self, **fields) -> None:
        self.instant("run.end", **fields)

    def begin_gpu(self, gpu: int, iteration: int) -> None:
        """Enter one GPU's superstep on the calling (worker) thread."""
        with self._lock:
            staged = self._staging.setdefault(int(gpu), [])
        self._tls.current = staged
        self._tls.gpu = int(gpu)
        self._tls.iteration = int(iteration)

    def end_gpu(self) -> None:
        """Leave the superstep bracket on the calling thread."""
        self._tls.current = None

    # -- recording ------------------------------------------------------------
    def span(
        self,
        cat: str,
        name: str,
        vt_start: float,
        vt_dur: float,
        track: Optional[int] = None,
        iteration: Optional[int] = None,
        wall_start: float = 0.0,
        wall_dur: float = 0.0,
        **args,
    ) -> Span:
        """Record a span; staged when inside a GPU bracket."""
        if track is None:
            track = getattr(self._tls, "gpu", 0)
        if iteration is None:
            iteration = getattr(self._tls, "iteration", -1)
        s = Span(
            name=name,
            cat=cat,
            track=int(track),
            iteration=int(iteration),
            vt_start=float(vt_start),
            vt_dur=float(vt_dur),
            wall_start=float(wall_start),
            wall_dur=float(wall_dur),
            args=args,
        )
        staged = getattr(self._tls, "current", None)
        if staged is not None:
            staged.append(("span", s))
        else:
            self._commit_span(s)
        return s

    def op_span(self, gpu: int, stats, vt_start: float, vt_dur: float) -> Span:
        """Record one operator launch from its ``OpStats``."""
        return self.span(
            "op",
            stats.name,
            vt_start,
            vt_dur,
            track=gpu,
            edges=int(stats.edges_visited),
            items_in=int(stats.input_size),
            items_out=int(stats.output_size),
        )

    def instant(self, type_: str, vt: Optional[float] = None, **fields) -> dict:
        """Record a structured point event (no duration)."""
        rec: Dict[str, Any] = {"type": str(type_)}
        if vt is not None:
            rec["vt"] = float(vt)
        rec.update(fields)
        staged = getattr(self._tls, "current", None)
        if staged is not None:
            staged.append(("event", rec))
        else:
            self._commit_event(rec)
        return rec

    def op_wall_sample(self, name: str, seconds: float) -> None:
        """Add one wall-clock sample to the per-operator aggregate."""
        staged = getattr(self._tls, "current", None)
        if staged is not None:
            staged.append(("wall", name, float(seconds)))
        else:
            self._merge_wall(name, float(seconds))

    # -- barrier merge / rollback --------------------------------------------
    def on_barrier(self, iteration: int) -> None:
        """Merge all staged records in GPU-index order (deterministic)."""
        with self._lock:
            staged = sorted(self._staging.items())
            self._staging = {}
        for _gpu, entries in staged:
            for entry in entries:
                kind = entry[0]
                if kind == "span":
                    self._commit_span(entry[1])
                elif kind == "event":
                    self._commit_event(entry[1])
                else:
                    self._merge_wall(entry[1], entry[2])

    def take_staged(self, gpu: int) -> List[tuple]:
        """Pop one GPU's staged records (processes-backend worker side:
        the staged entries ship to the parent in the sidecar)."""
        with self._lock:
            return self._staging.pop(int(gpu), [])

    def adopt_staged(self, gpu: int, entries: List[tuple]) -> None:
        """Stage records produced by a worker process for this GPU, to be
        merged (or dropped, on rollback) exactly like locally staged
        ones."""
        with self._lock:
            self._staging.setdefault(int(gpu), []).extend(entries)

    def drop_staged(self) -> None:
        """Discard staged records of an aborted superstep (rollback)."""
        with self._lock:
            self._staging = {}
        # an aborted superstep never reaches end_gpu(); clear the calling
        # thread's bracket so recovery instants commit instead of landing
        # in an orphaned staging list
        self._tls.current = None

    def clear(self) -> None:
        """Forget everything recorded (bench repeats reuse one tracer)."""
        self.drop_staged()
        self.spans.clear()
        self.events.clear()
        self.op_wall.clear()

    # -- views ----------------------------------------------------------------
    def spans_of(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def events_of(self, type_: str) -> List[dict]:
        return [e for e in self.events if e.get("type") == type_]

    def count(self, type_: str) -> int:
        return len(self.events_of(type_))

    # -- internals ------------------------------------------------------------
    def _commit_span(self, s: Span) -> None:
        self.spans.append(s)
        if self.bus is not None:
            self.bus.emit(s.to_record())

    def _commit_event(self, rec: dict) -> None:
        self.events.append(rec)
        if self.bus is not None:
            self.bus.emit(rec)

    def _merge_wall(self, name: str, seconds: float) -> None:
        ent = self.op_wall.setdefault(name, [0, 0.0])
        ent[0] += 1
        ent[1] += seconds
