"""Observability for the virtual multi-GPU machine (docs/observability.md).

Five cooperating layers, all strictly *observers* — none of them may
touch the virtual clock, the streams, or any result array, so a traced
run is bit-identical to an untraced one:

* :mod:`repro.obs.tracer` — span-based tracing with one track per
  virtual GPU plus a communication track, on both the virtual clock and
  the wall clock.  Thread-safe under the ``threads`` backend via per-GPU
  staging merged in GPU-index order at barriers (the sanitizer's
  discipline), and zero-overhead when disabled via the ``tracer is
  None`` fast path everywhere (the ``sim/faults.py`` discipline,
  enforced statically by lint rule REP109).
* :mod:`repro.obs.events` — a structured event bus emitting JSONL
  records for superstep boundaries, operator calls, communication
  stages, DOBFS direction switches, checkpoint/recovery actions, and
  sanitizer hazards.
* :mod:`repro.obs.chrome_trace` / :mod:`repro.obs.profile` — exporters:
  Chrome ``trace_event`` JSON viewable in Perfetto, and a per-operator
  hot-spot table mapped onto the paper's W/H/C/S cost terms.
* :mod:`repro.obs.critical_path` — trace analytics: per-superstep
  critical paths on the virtual clock, barrier slack attributed into
  W/H/C/S per GPU, straggler/imbalance detection, and zero-comm /
  perfect-balance what-if estimates (``repro analyze``).
* :mod:`repro.obs.recorder` / :mod:`repro.obs.metrics_export` — the
  always-on tier: a bounded flight recorder that dumps a crash report
  when a run dies, and OpenMetrics text exposition of RunMetrics.
"""

from .chrome_trace import (
    export_chrome_trace,
    load_chrome_trace,
    summarize_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from .critical_path import TraceData, analyze_trace, render_analysis
from .events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    RECOVERY_EVENT_TYPES,
    SUPERVISION_EVENT_TYPES,
    EventBus,
    JsonlWriter,
    validate_event,
    validate_events_jsonl,
)
from .metrics_export import to_openmetrics, write_openmetrics
from .profile import profile_rows, render_profile, term_of_span
from .recorder import FlightRecorder
from .tracer import COMM_TRACK, SUPERVISOR_TRACK, Span, Tracer

__all__ = [
    "COMM_TRACK",
    "SUPERVISOR_TRACK",
    "Span",
    "Tracer",
    "EventBus",
    "JsonlWriter",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "RECOVERY_EVENT_TYPES",
    "SUPERVISION_EVENT_TYPES",
    "validate_event",
    "validate_events_jsonl",
    "to_chrome_trace",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "summarize_chrome_trace",
    "term_of_span",
    "profile_rows",
    "render_profile",
    "TraceData",
    "analyze_trace",
    "render_analysis",
    "FlightRecorder",
    "to_openmetrics",
    "write_openmetrics",
]
