"""Critical-path analysis of a traced run on the virtual clock.

The profiler (:mod:`repro.obs.profile`) answers "where did the cycles
go" in aggregate; this module answers "which cycles actually gated the
run".  A BSP superstep is a fork-join DAG: each GPU executes its span
chain serially on the virtual clock, the barrier joins them, and the
superstep ends when the *slowest* chain ends.  The critical path of the
run is therefore the concatenation of each superstep's longest chain
plus the barrier sync latency — everything else is slack, and every
second of slack is a second a faster schedule (ROADMAP item 5) could
recover.

For every superstep the analyzer reports the critical GPU, the length
of its chain, and each non-critical GPU's slack *attributed into the
paper's W/H/C/S buckets*: GPU ``g`` waits at the barrier because the
critical GPU spent more time than ``g`` did in some bucket, so the
slack is split proportionally to the critical GPU's per-bucket excess
over ``g``.  Summing buckets over supersteps reconciles with
:func:`repro.obs.profile.profile_rows` — same spans, same
``term_of_span`` mapping.

Two counterfactuals seed the overlap/async work:

* **zero-comm** — replay every superstep with the H bucket deleted
  (perfect comm/compute overlap); bounded above by the serial span sum,
  since one GPU's W+C+S chain can never exceed the sum of everything.
* **perfect-balance** — replay with each superstep's busy time spread
  evenly over its active GPUs (an ideal partitioner).

``analyze_trace`` accepts a live :class:`repro.obs.tracer.Tracer` or a
:class:`TraceData` reconstructed from an exported Chrome trace file, so
``repro analyze trace.json`` works offline on CI artifacts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..analysis.reporting import render_table
from .events import EVENT_SCHEMA_VERSION
from .profile import profile_rows, term_of_span
from .tracer import COMM_TRACK, SUPERVISOR_TRACK, Span

__all__ = ["TraceData", "analyze_trace", "render_analysis"]

_TERMS = ("W", "H", "C", "S")


class TraceData:
    """Offline stand-in for a :class:`~repro.obs.tracer.Tracer`.

    Duck-types the read side the profiler and analyzer consume
    (``spans``, ``events``, ``events_of``, ``op_wall``, ``primitive``,
    ``backend``, ``num_gpus``) without any recording machinery, so an
    exported Chrome trace can be analyzed long after the run died.
    """

    def __init__(self, spans=None, events=None, op_wall=None,
                 primitive: str = "", backend: str = "", num_gpus: int = 0):
        self.spans: List[Span] = list(spans or [])
        self.events: List[dict] = list(events or [])
        self.op_wall: Dict[str, list] = dict(op_wall or {})
        self.primitive = primitive
        self.backend = backend
        self.num_gpus = int(num_gpus)

    @classmethod
    def from_tracer(cls, tracer) -> "TraceData":
        """Zero-copy view of a live tracer's recorded data."""
        data = cls(
            primitive=tracer.primitive,
            backend=tracer.backend,
            num_gpus=tracer.num_gpus,
        )
        data.spans = tracer.spans
        data.events = tracer.events
        data.op_wall = tracer.op_wall
        return data

    @classmethod
    def from_chrome_trace(cls, trace: dict) -> "TraceData":
        """Rebuild spans/events from a Chrome-trace JSON object.

        Inverts :func:`repro.obs.chrome_trace.to_chrome_trace` for the
        virtual-clock process (pid 0): complete events become
        :class:`Span` objects (the ``comm``/``supervisor`` rows map
        back to their negative track indices via the thread-name
        metadata) and instants become event records.  Wall-clock data
        (pid 1, per-op wall aggregates) is not round-tripped — it does
        not participate in virtual-clock analysis.
        """
        other = trace.get("otherData", {}) if isinstance(trace, dict) else {}
        events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
        names: Dict[int, str] = {}
        for ev in events:
            if isinstance(ev, dict) and ev.get("ph") == "M" \
                    and ev.get("name") == "thread_name" \
                    and ev.get("pid") == 0:
                names[ev.get("tid")] = ev.get("args", {}).get("name", "")
        data = cls(
            primitive=other.get("primitive", ""),
            backend=other.get("backend", ""),
            num_gpus=int(other.get("num_gpus", 0) or 0),
        )
        for ev in events:
            if not isinstance(ev, dict) or ev.get("pid") != 0:
                continue
            ph = ev.get("ph")
            if ph == "X":
                label = names.get(ev.get("tid"), "")
                if label == "comm":
                    track = COMM_TRACK
                elif label == "supervisor":
                    track = SUPERVISOR_TRACK
                else:
                    track = int(ev.get("tid", 0))
                args = dict(ev.get("args") or {})
                iteration = args.pop("iteration", -1)
                data.spans.append(
                    Span(
                        name=str(ev.get("name", "")),
                        cat=str(ev.get("cat", "")),
                        track=track,
                        iteration=int(iteration),
                        vt_start=float(ev.get("ts", 0.0)) / 1e6,
                        vt_dur=float(ev.get("dur", 0.0)) / 1e6,
                        args=args,
                    )
                )
            elif ph == "i":
                rec = {
                    "type": str(ev.get("name", "")),
                    "vt": float(ev.get("ts", 0.0)) / 1e6,
                }
                rec.update(ev.get("args") or {})
                data.events.append(rec)
        return data

    # -- Tracer-compatible views ----------------------------------------------
    def spans_of(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def events_of(self, type_: str) -> List[dict]:
        return [e for e in self.events if e.get("type") == type_]

    def count(self, type_: str) -> int:
        return len(self.events_of(type_))


def _span_gpu(span) -> Optional[int]:
    """The GPU a span's virtual time is charged to, or None.

    Comm spans live on the shared comm row but are *launched* by their
    sending GPU's comm stream, so the H time belongs to the sender's
    chain.  Supervisor-row spans belong to no GPU chain.
    """
    if span.track == SUPERVISOR_TRACK:
        return None
    if span.track == COMM_TRACK:
        src = span.args.get("src")
        return int(src) if src is not None else None
    return int(span.track)


def _zero_buckets() -> Dict[str, float]:
    return {t: 0.0 for t in _TERMS}


def analyze_trace(source) -> dict:
    """Critical-path/slack/what-if report for a traced run.

    ``source`` is a live tracer or a :class:`TraceData`.  The returned
    dict doubles as a valid ``analysis.report`` event record (it has a
    ``"type"`` and validates under
    :func:`repro.obs.events.validate_event`), so it can ride the same
    JSONL pipeline as the raw events it was computed from.
    """
    data = source if isinstance(source, TraceData) \
        else TraceData.from_tracer(source)

    # Run-level W/H/C/S totals come from the profiler itself — same
    # rows, same summation order as render_profile's legend — so the
    # analyzer reconciles with ``repro run --profile`` exactly, not
    # merely within float tolerance.
    rows = profile_rows(data)
    terms = _zero_buckets()
    for r in rows:
        terms[r["term"]] += r["virtual_s"]
    busy_total = sum(r["virtual_s"] for r in rows)

    sync_total = 0.0
    sync_count = 0
    for e in data.events_of("barrier"):
        sync_total += float(e.get("sync", 0.0))
        sync_count += 1

    # -- group work spans by superstep ---------------------------------------
    by_iter: Dict[int, List[Span]] = {}
    unattributed = _zero_buckets()  # iteration < 0 or GPU-less spans
    elapsed = 0.0
    for s in data.spans:
        elapsed = max(elapsed, s.vt_start + s.vt_dur)
        if s.cat == "superstep":
            continue
        if s.iteration < 0 or _span_gpu(s) is None:
            unattributed[term_of_span(s)] += s.vt_dur
            continue
        by_iter.setdefault(s.iteration, []).append(s)
    for e in data.events:
        vt = e.get("vt")
        if isinstance(vt, (int, float)) and not isinstance(vt, bool):
            elapsed = max(elapsed, float(vt))

    supersteps: List[dict] = []
    stragglers: Dict[int, int] = {}
    slack_terms = _zero_buckets()
    slack_total = 0.0
    critical_sum = 0.0
    zero_comm_sum = 0.0
    balance_sum = 0.0
    imbalances: List[float] = []

    for iteration in sorted(by_iter):
        spans = by_iter[iteration]
        busy: Dict[int, Dict[str, float]] = {}
        ends: Dict[int, float] = {}
        t0 = min(s.vt_start for s in spans)
        for s in spans:
            g = _span_gpu(s)
            busy.setdefault(g, _zero_buckets())[term_of_span(s)] += s.vt_dur
            ends[g] = max(ends.get(g, 0.0), s.vt_start + s.vt_dur)
        gpus = sorted(busy)
        crit_end = max(ends.values())
        crit = min(g for g in gpus if ends[g] == crit_end)
        critical_s = crit_end - t0
        critical_sum += critical_s

        per_gpu: Dict[str, dict] = {}
        step_slack = _zero_buckets()
        busy_sums = {g: sum(busy[g].values()) for g in gpus}
        for g in gpus:
            slack = crit_end - ends[g]
            entry = {
                "busy_s": busy_sums[g],
                "end_s": ends[g],
                "slack_s": slack,
            }
            entry.update(busy[g])
            per_gpu[str(g)] = entry
            if g == crit or slack <= 0.0:
                continue
            # g waited because the critical GPU spent more time in some
            # buckets than g did; split g's wait over those excesses
            excess = {
                t: max(0.0, busy[crit][t] - busy[g][t]) for t in _TERMS
            }
            denom = sum(excess.values())
            if denom > 0.0:
                # fraction first: slack * excess underflows to garbage
                # when the excess is subnormal; excess/denom is in [0,1]
                for t in _TERMS:
                    step_slack[t] += slack * (excess[t] / denom)
            else:
                # no bucket excess (pure launch-offset skew): charge the
                # wait itself as synchronization cost
                step_slack["S"] += slack
        for t in _TERMS:
            slack_terms[t] += step_slack[t]
        step_slack_total = sum(
            per_gpu[str(g)]["slack_s"] for g in gpus if g != crit
        )
        slack_total += step_slack_total

        mean_busy = sum(busy_sums.values()) / len(gpus)
        max_busy = max(busy_sums.values())
        imbalance = max_busy / mean_busy if mean_busy > 0.0 else 1.0
        imbalances.append(imbalance)
        stragglers[crit] = stragglers.get(crit, 0) + 1

        zero_comm_sum += max(
            busy_sums[g] - busy[g]["H"] for g in gpus
        )
        balance_sum += mean_busy

        supersteps.append(
            {
                "iteration": iteration,
                "critical_gpu": crit,
                "critical_s": critical_s,
                "slack_s": step_slack_total,
                "slack": step_slack,
                "imbalance": imbalance,
                "gpus": per_gpu,
            }
        )

    unattributed_total = sum(unattributed.values())
    critical_path_s = critical_sum + sync_total + unattributed_total

    # -- counterfactuals ------------------------------------------------------
    # profile_rows' total already includes the synthetic barrier(sync)
    # row, so busy_total *is* "every span plus sync, run serially" — the
    # ceiling no schedule can exceed and the zero-comm bound.
    serial_span_sum = busy_total
    zero_comm_s = zero_comm_sum + sync_total + (
        unattributed_total - unattributed["H"]
    )
    perfect_balance_s = balance_sum + sync_total + unattributed_total
    elapsed = max(elapsed, critical_path_s)

    def _speedup(estimate: float) -> float:
        return elapsed / estimate if estimate > 0.0 else math.inf

    n_steps = len(supersteps)
    report = {
        "type": "analysis.report",
        "schema_version": EVENT_SCHEMA_VERSION,
        "primitive": data.primitive,
        "backend": data.backend,
        "num_gpus": data.num_gpus,
        "supersteps": n_steps,
        "elapsed_s": elapsed,
        "critical_path_s": critical_path_s,
        "busy_s": busy_total,
        "sync_s": sync_total,
        "barriers": sync_count,
        "terms": terms,
        "slack_s": slack_total,
        "slack": slack_terms,
        "unattributed_s": unattributed_total,
        "load_imbalance": (
            sum(imbalances) / len(imbalances) if imbalances else 1.0
        ),
        "stragglers": {str(g): c for g, c in sorted(stragglers.items())},
        "steps": supersteps,
        "what_if": {
            "serial_span_sum_s": serial_span_sum,
            "zero_comm_s": zero_comm_s,
            "zero_comm_speedup": _speedup(zero_comm_s),
            "perfect_balance_s": perfect_balance_s,
            "perfect_balance_speedup": _speedup(perfect_balance_s),
        },
    }
    return report


def render_analysis(report: dict, top: Optional[int] = None,
                    what_if: bool = False) -> str:
    """ASCII rendering of an :func:`analyze_trace` report.

    ``top`` keeps only the N supersteps with the longest critical
    paths (all, sorted by iteration, when None); ``what_if`` appends
    the counterfactual estimates.
    """
    steps = report.get("steps", [])
    if top is not None:
        steps = sorted(
            steps, key=lambda s: (-s["critical_s"], s["iteration"])
        )[: max(0, int(top))]
    title = "critical path per superstep"
    if report.get("primitive"):
        title = (
            f"{report['primitive']} critical path "
            f"({report.get('num_gpus', 0)} GPUs, "
            f"{report.get('backend') or 'serial'} backend)"
        )
    table = render_table(
        ["superstep", "critical GPU", "critical ms", "slack ms",
         "slack split (W/H/C/S)", "imbalance"],
        [
            [
                s["iteration"],
                s["critical_gpu"],
                s["critical_s"] * 1e3,
                s["slack_s"] * 1e3,
                "/".join(f"{s['slack'][t] * 1e3:.3f}" for t in _TERMS),
                f"{s['imbalance']:.2f}x",
            ]
            for s in steps
        ],
        title=title,
    )
    terms = report.get("terms", {})
    lines = [
        table,
        "BSP terms (W + H·g + C + S·l): "
        + "  ".join(
            f"{t}={terms.get(t, 0.0) * 1e3:.3f}ms" for t in _TERMS
        ),
        (
            f"critical path: {report['critical_path_s'] * 1e3:.3f}ms of "
            f"{report['elapsed_s'] * 1e3:.3f}ms elapsed; slack "
            f"{report['slack_s'] * 1e3:.3f}ms; mean load imbalance "
            f"{report['load_imbalance']:.2f}x"
        ),
        "stragglers (supersteps on the critical path): "
        + (
            "  ".join(
                f"GPU {g}×{c}" for g, c in report["stragglers"].items()
            )
            or "none"
        ),
    ]
    if what_if:
        wi = report.get("what_if", {})
        lines.append(
            "what-if: zero-comm "
            f"{wi.get('zero_comm_s', 0.0) * 1e3:.3f}ms "
            f"({wi.get('zero_comm_speedup', 0.0):.2f}x), "
            "perfect-balance "
            f"{wi.get('perfect_balance_s', 0.0) * 1e3:.3f}ms "
            f"({wi.get('perfect_balance_speedup', 0.0):.2f}x), "
            "serial span sum "
            f"{wi.get('serial_span_sum_s', 0.0) * 1e3:.3f}ms"
        )
    return "\n".join(lines)
