"""OpenMetrics/Prometheus text exposition of a run's metrics.

Turns a :class:`~repro.sim.metrics.RunMetrics` into the standard
`OpenMetrics text format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
so a scrape target (or a CI artifact diff) can watch the reproduction
like any other production service: run-level counters/gauges, the
recovery and supervision counters the chaos machinery maintains, and
per-superstep gauges labeled by ``iteration`` and ``gpu``.

Exposition is versioned in lock-step with the JSONL event schema
(:data:`repro.obs.events.EVENT_SCHEMA_VERSION`) via the
``repro_schema_info`` metric, so a dashboard can detect a stream whose
semantics changed.

The format rules that matter here: metric names are
``repro_<noun>_<unit>``, label values are escaped, every family gets
``# TYPE``/``# HELP`` headers, and the exposition ends with ``# EOF``.
"""

from __future__ import annotations

from typing import List

from .events import EVENT_SCHEMA_VERSION

__all__ = ["to_openmetrics", "write_openmetrics"]

#: RunMetrics.to_dict schema the per-iteration gauges mirror
_METRICS_SCHEMA_VERSION = 2


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(**kv) -> str:
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in kv.items() if v not in (None, "")
    )
    return "{" + inner + "}" if inner else ""


def _num(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_openmetrics(metrics) -> str:
    """Render one run's metrics as an OpenMetrics text exposition."""
    run = _labels(primitive=metrics.primitive, dataset=metrics.dataset,
                  gpus=metrics.num_gpus)
    lines: List[str] = []

    def family(name: str, mtype: str, help_: str) -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"# HELP {name} {help_}")

    def sample(name: str, labels: str, value) -> None:
        lines.append(f"{name}{labels} {_num(value)}")

    family("repro_schema_info", "gauge",
           "Schema versions of the event stream and metrics exposition.")
    sample(
        "repro_schema_info",
        _labels(event_schema=EVENT_SCHEMA_VERSION,
                metrics_schema=_METRICS_SCHEMA_VERSION),
        1,
    )

    family("repro_run_elapsed_virtual_seconds", "gauge",
           "Virtual-clock time the whole run took.")
    sample("repro_run_elapsed_virtual_seconds", run, metrics.elapsed)
    family("repro_run_supersteps", "gauge",
           "BSP supersteps executed to convergence.")
    sample("repro_run_supersteps", run, len(metrics.iterations))
    family("repro_run_edges_visited_total", "counter",
           "Edges visited across all GPUs and supersteps.")
    sample("repro_run_edges_visited_total", run,
           metrics.total_edges_visited)
    family("repro_run_items_sent_total", "counter",
           "Frontier items communicated between GPUs (the paper's H).")
    sample("repro_run_items_sent_total", run, metrics.total_items_sent)
    family("repro_run_load_imbalance_ratio", "gauge",
           "Mean max/mean per-GPU compute time over supersteps.")
    sample("repro_run_load_imbalance_ratio", run,
           metrics.load_imbalance())
    family("repro_run_reallocs_total", "counter",
           "Device buffer reallocations (just-enough growth).")
    sample("repro_run_reallocs_total", run, metrics.num_reallocs)

    family("repro_gpu_peak_memory_bytes", "gauge",
           "Peak device memory per GPU.")
    for g, peak in sorted(metrics.peak_memory.items()):
        sample("repro_gpu_peak_memory_bytes",
               _labels(primitive=metrics.primitive, gpus=metrics.num_gpus,
                       gpu=g), peak)

    family("repro_recovery_actions_total", "counter",
           "Recovery/supervision actions by kind (chaos machinery).")
    for kind, value in (
        ("comm_retries", metrics.comm_retries),
        ("oom_recoveries", metrics.oom_recoveries),
        ("checkpoints_taken", metrics.checkpoints_taken),
        ("rollbacks", metrics.rollbacks),
        ("worker_respawns", metrics.worker_respawns),
        ("supersteps_replayed", metrics.supersteps_replayed),
        ("hang_detections", metrics.hang_detections),
    ):
        sample("repro_recovery_actions_total",
               _labels(primitive=metrics.primitive,
                       gpus=metrics.num_gpus, kind=kind), value)
    family("repro_recovery_seconds", "gauge",
           "Virtual/wall seconds spent on recovery by kind.")
    for kind, value in (
        ("retry", metrics.retry_seconds),
        ("checkpoint", metrics.checkpoint_seconds),
        ("restore", metrics.restore_seconds),
        ("supervision_overhead", metrics.supervision_overhead_seconds),
    ):
        sample("repro_recovery_seconds",
               _labels(primitive=metrics.primitive,
                       gpus=metrics.num_gpus, kind=kind), value)

    family("repro_superstep_duration_virtual_seconds", "gauge",
           "Virtual-clock duration of each superstep.")
    family("repro_superstep_frontier_size", "gauge",
           "Total frontier items entering each superstep.")
    family("repro_superstep_gpu_compute_virtual_seconds", "gauge",
           "Per-GPU compute time within each superstep (the paper's W).")
    family("repro_superstep_gpu_comm_virtual_seconds", "gauge",
           "Per-GPU communication time within each superstep (H*g).")
    for rec in metrics.iterations:
        step = _labels(primitive=metrics.primitive,
                       gpus=metrics.num_gpus, iteration=rec.iteration)
        sample("repro_superstep_duration_virtual_seconds", step,
               rec.duration)
        sample("repro_superstep_frontier_size", step, rec.frontier_size)
        for g, t in sorted(rec.compute_time.items()):
            sample(
                "repro_superstep_gpu_compute_virtual_seconds",
                _labels(primitive=metrics.primitive,
                        gpus=metrics.num_gpus,
                        iteration=rec.iteration, gpu=g),
                t,
            )
        for g, t in sorted(rec.comm_time.items()):
            sample(
                "repro_superstep_gpu_comm_virtual_seconds",
                _labels(primitive=metrics.primitive,
                        gpus=metrics.num_gpus,
                        iteration=rec.iteration, gpu=g),
                t,
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(metrics, path) -> str:
    """Write the exposition to ``path``; returns the text."""
    text = to_openmetrics(metrics)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
