"""Always-on flight recorder: a bounded ring of recent activity.

The tracer records *everything* and therefore costs memory proportional
to run length, so production runs leave it off — and when one of those
runs dies, there is nothing to look at.  The flight recorder is the
other point on the trade-off curve: a fixed-size ``collections.deque``
ring of the most recent events plus a short window of per-superstep
summaries, cheap enough to leave attached to every run (the ``repro
bench`` gate holds it to ≤1.05× an unrecorded run).

Appends never grow memory past the configured capacity — the deque's
``maxlen`` drops the oldest entry in C — and every hook site follows
the tracer's disabled-cost discipline: a plain attribute that is
``None`` by default, guarded by a single ``if recorder is None`` check.

When something goes wrong — the supervisor escalates a worker failure,
a chaos cell fails, or a :class:`~repro.errors.ReproError` propagates
out of ``enact()`` — :meth:`FlightRecorder.dump` snapshots the ring
into a crash report: the last *k* superstep summaries, recent events,
per-GPU worker heartbeat ages, the :class:`~repro.sim.metrics.RunMetrics`
accumulated so far, and the fault plan's injection state.  The report
is a valid ``recorder.dump`` event record, written to ``path`` when one
is configured and always kept on :attr:`FlightRecorder.dumps`.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, List, Optional

from .events import EVENT_SCHEMA_VERSION

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of recent run activity with crash dumps.

    Parameters
    ----------
    capacity:
        Maximum retained event records; older entries are dropped.
    keep_supersteps:
        How many trailing per-superstep summaries a dump includes.
    path:
        Optional file the next crash report is written to (JSON).
    """

    def __init__(self, capacity: int = 4096, keep_supersteps: int = 8,
                 path=None):
        self.capacity = int(capacity)
        self.keep_supersteps = int(keep_supersteps)
        self.path = path
        self.ring: deque = deque(maxlen=self.capacity)
        self.supersteps: deque = deque(maxlen=self.keep_supersteps)
        self.recorded = 0
        self.dumps: List[dict] = []
        self.metrics = None
        self.primitive = ""
        self.backend = ""
        self.num_gpus = 0
        self._wall0 = time.perf_counter()

    # -- hooks (every caller guards with ``if recorder is None``) -------------
    def begin_run(self, primitive: str, num_gpus: int,
                  backend: str = "") -> None:
        self.primitive = str(primitive)
        self.backend = str(backend)
        self.num_gpus = int(num_gpus)

    def set_metrics(self, metrics) -> None:
        """Remember the live RunMetrics so dumps can snapshot it."""
        self.metrics = metrics

    def record(self, kind: str, vt: Optional[float] = None,
               **fields) -> None:
        """Append one event to the ring (drops the oldest at capacity)."""
        rec: Dict[str, Any] = {"type": str(kind)}
        if vt is not None:
            rec["vt"] = float(vt)
        rec.update(fields)
        self.ring.append(rec)
        self.recorded += 1

    def on_superstep(self, iteration: int, vt: float, rec) -> None:
        """Keep a compact summary of one finished superstep."""
        self.supersteps.append(
            {
                "iteration": int(iteration),
                "vt": float(vt),
                "duration": float(rec.duration),
                "frontier": int(rec.frontier_size),
                "direction": rec.direction,
                "edges": int(sum(rec.edges_visited.values())),
            }
        )
        self.record(
            "superstep.end", vt=vt, iteration=int(iteration),
            frontier=int(rec.frontier_size),
        )

    # -- crash reports --------------------------------------------------------
    def dump(self, reason: str, error: Optional[BaseException] = None,
             heartbeats: Optional[dict] = None, faults=None,
             **extra) -> dict:
        """Snapshot the ring into a crash report and return it.

        The report is shaped as a ``recorder.dump`` event record so it
        validates against the JSONL event schema.  ``heartbeats`` maps
        worker slot -> seconds since the last heartbeat; ``faults`` is
        the machine's :class:`~repro.sim.faults.FaultInjector` (its
        injected counters and plan size are recorded, never the object).
        """
        report: Dict[str, Any] = {
            "type": "recorder.dump",
            "schema_version": EVENT_SCHEMA_VERSION,
            "reason": str(reason),
            "primitive": self.primitive,
            "backend": self.backend,
            "num_gpus": self.num_gpus,
            "wall_s": time.perf_counter() - self._wall0,
            "recorded": self.recorded,
            "capacity": self.capacity,
            "events": list(self.ring),
            "supersteps": list(self.supersteps),
        }
        if error is not None:
            report["error"] = {
                "class": type(error).__name__,
                "message": str(error),
                "gpu": getattr(error, "gpu_id", None),
                "iteration": getattr(error, "iteration", None),
                "site": getattr(error, "site", None),
            }
        if heartbeats is not None:
            report["heartbeat_ages"] = {
                str(w): age for w, age in sorted(heartbeats.items())
            }
        if faults is not None:
            report["pending_faults"] = {
                "injected": dict(faults.injected),
                "planned": len(faults.plan.faults),
            }
        if self.metrics is not None:
            report["metrics"] = self.metrics.to_dict()
        report.update(extra)
        self.dumps.append(report)
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True, default=str)
        return report

    def clear(self) -> None:
        """Forget everything recorded (bench repeats reuse one recorder)."""
        self.ring.clear()
        self.supersteps.clear()
        self.dumps.clear()
        self.recorded = 0
        self.metrics = None
