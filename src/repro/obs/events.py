"""Structured event bus + JSONL sink for the tracer.

Every record is a flat JSON object with a ``"type"`` drawn from
:data:`EVENT_TYPES` and, where the event has a position on the virtual
timeline, a numeric ``"vt"`` (virtual seconds).  The full schema is
documented in docs/observability.md; :func:`validate_events_jsonl`
checks a written file against it (used by the CI trace-smoke job and
the ``repro trace`` subcommand).
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "RECOVERY_EVENT_TYPES",
    "SUPERVISION_EVENT_TYPES",
    "EventBus",
    "JsonlWriter",
    "validate_event",
    "validate_events_jsonl",
]

#: JSONL event schema version.  Version 1 was the implicit schema of
#: PRs 4/9 (spans, barriers, recovery + supervision instants); version
#: 2 adds the observability *products* as first-class records —
#: ``recorder.dump`` (flight-recorder crash reports) and
#: ``analysis.report`` (critical-path analyzer output) — so derived
#: artifacts can ride the same stream they were computed from.  The
#: OpenMetrics exposition (``repro.obs.metrics_export``) advertises
#: this constant in its ``repro_schema_info`` metric.
EVENT_SCHEMA_VERSION = 2

#: recovery actions the chaos harness cross-checks against RunMetrics
RECOVERY_EVENT_TYPES = frozenset(
    {
        "recovery.retry",
        "recovery.oom-regrow",
        "recovery.gpu-loss",
        "recovery.rollback",
    }
)

#: real-process supervision actions (processes backend, supervise=True);
#: the chaos harness cross-checks worker.respawn against
#: RunMetrics.worker_respawns and heartbeat.stale against
#: RunMetrics.hang_detections
SUPERVISION_EVENT_TYPES = frozenset(
    {
        "worker.respawn",
        "worker.lost",
        "heartbeat.stale",
    }
)

EVENT_TYPES = frozenset(
    {
        "run.begin",
        "run.end",
        "span",
        "superstep.begin",
        "superstep.end",
        "barrier",
        "backend.dispatch",
        "comm.split",
        "comm.package",
        "comm.combine",
        "comm.transfer",
        "direction.switch",
        "checkpoint",
        "checkpoint.capture",
        "recovery.restore-routed",
        "sanitizer.hazard",
        "recorder.dump",
        "analysis.report",
    }
    | RECOVERY_EVENT_TYPES
    | SUPERVISION_EVENT_TYPES
)

#: fields that must be integers when present
_INT_FIELDS = ("gpu", "iteration", "src", "dst", "num_gpus", "worker")


class EventBus:
    """Minimal synchronous pub/sub fan-out for tracer records."""

    def __init__(self):
        self._subscribers: List[Callable[[dict], None]] = []

    def subscribe(self, fn: Callable[[dict], None]) -> None:
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[dict], None]) -> None:
        self._subscribers.remove(fn)

    def emit(self, record: dict) -> None:
        for fn in self._subscribers:
            fn(record)


class JsonlWriter:
    """Event-bus subscriber writing one JSON object per line."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.count = 0

    def __call__(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def validate_event(record, line_no: Optional[int] = None) -> List[str]:
    """Return schema problems for one event record ([] when clean)."""
    where = f"line {line_no}: " if line_no is not None else ""
    if not isinstance(record, dict):
        return [f"{where}record is not a JSON object"]
    problems: List[str] = []
    etype = record.get("type")
    if not isinstance(etype, str) or not etype:
        problems.append(f"{where}missing or non-string 'type'")
        return problems
    if etype not in EVENT_TYPES:
        problems.append(f"{where}unknown event type {etype!r}")
    vt = record.get("vt")
    if vt is not None:
        if not isinstance(vt, (int, float)) or isinstance(vt, bool):
            problems.append(f"{where}{etype}: non-numeric 'vt'")
        elif vt < 0:
            problems.append(f"{where}{etype}: negative 'vt'")
    for fld in _INT_FIELDS:
        val = record.get(fld)
        if val is not None and (isinstance(val, bool) or not isinstance(val, int)):
            problems.append(f"{where}{etype}: non-integer {fld!r}")
    if etype == "span":
        for fld in ("cat", "name"):
            if not isinstance(record.get(fld), str):
                problems.append(f"{where}span: missing or non-string {fld!r}")
        if "vt" not in record:
            problems.append(f"{where}span: missing 'vt'")
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool):
            problems.append(f"{where}span: missing or non-numeric 'dur'")
        elif dur < 0:
            problems.append(f"{where}span: negative 'dur'")
    return problems


def validate_events_jsonl(path) -> List[str]:
    """Validate a JSONL event file; returns all problems found."""
    problems: List[str] = []
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                record = json.loads(line)
            except ValueError as exc:
                problems.append(f"line {line_no}: invalid JSON ({exc})")
                continue
            problems.extend(validate_event(record, line_no=line_no))
    if count == 0:
        problems.append("file contains no events")
    return problems
