"""Per-operator hot-spot profile mapped onto the paper's BSP terms.

The paper's per-iteration cost is ``W + H·g + S·l`` (Section V):
``W`` local compute, ``H`` communicated items (times per-item cost
``g``), ``C`` the compute cost *of* communication (split/package/
combine), and ``S`` synchronizations (times latency ``l``).  The
profiler buckets every traced span into one of those terms so a hot-spot
table directly answers "is this primitive compute- or
communication-bound?" — the question the paper's Table I answers
analytically.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.reporting import render_table
from .tracer import Tracer

__all__ = ["term_of_span", "profile_rows", "render_profile"]

#: operators that are the *compute* side of communication (the paper's C)
_C_NAMES = frozenset(
    {"split", "package", "broadcast-package", "expand_incoming", "unique"}
)
#: framework/synchronization overhead (charged against the paper's S·l)
_S_NAMES = frozenset({"framework", "checkpoint", "restore"})


def term_of_span(span) -> str:
    """Map a span to W (compute), H (comm), C (comm-compute), or S."""
    if span.cat == "comm":
        return "H"
    if span.name in _C_NAMES:
        return "C"
    if span.name in _S_NAMES:
        return "S"
    return "W"


def profile_rows(tracer: Tracer) -> List[dict]:
    """Aggregate spans by operator name, sorted by virtual time desc.

    Each row: ``op``, ``term``, ``calls``, ``virtual_s``, ``pct`` (of
    total virtual busy time), ``wall_s`` (wall-clock aggregate where the
    operator sampled it; 0.0 otherwise).  Barrier sync latency — pure
    ``S·l`` that no span covers — is added as a synthetic
    ``barrier(sync)`` row from the barrier instants.
    """
    agg: Dict[str, List] = {}
    for s in tracer.spans:
        if s.cat == "superstep":
            continue  # container span; its children are already counted
        row = agg.setdefault(s.name, [term_of_span(s), 0, 0.0])
        row[1] += 1
        row[2] += s.vt_dur
    sync_total = 0.0
    sync_count = 0
    for e in tracer.events_of("barrier"):
        sync_total += float(e.get("sync", 0.0))
        sync_count += 1
    if sync_count:
        agg["barrier(sync)"] = ["S", sync_count, sync_total]
    total = sum(row[2] for row in agg.values()) or 1.0
    rows = []
    for name, (term, calls, vt) in agg.items():
        wall = tracer.op_wall.get(name, (0, 0.0))[1]
        rows.append(
            {
                "op": name,
                "term": term,
                "calls": calls,
                "virtual_s": vt,
                "pct": 100.0 * vt / total,
                "wall_s": wall,
            }
        )
    rows.sort(key=lambda r: (-r["virtual_s"], r["op"]))
    return rows


def render_profile(tracer: Tracer) -> str:
    """ASCII hot-spot table for ``repro run --profile``."""
    rows = profile_rows(tracer)
    title = "per-operator profile"
    if tracer.primitive:
        title = (
            f"{tracer.primitive} per-operator profile "
            f"({tracer.num_gpus} GPUs, {tracer.backend or 'serial'} backend)"
        )
    table = render_table(
        ["operator", "term", "calls", "virtual ms", "%", "wall ms"],
        [
            [
                r["op"],
                r["term"],
                r["calls"],
                r["virtual_s"] * 1e3,
                r["pct"],
                r["wall_s"] * 1e3,
            ]
            for r in rows
        ],
        title=title,
    )
    terms: Dict[str, float] = {}
    for r in rows:
        terms[r["term"]] = terms.get(r["term"], 0.0) + r["virtual_s"]
    legend = "  ".join(
        f"{t}={terms.get(t, 0.0) * 1e3:.3f}ms"
        for t in ("W", "H", "C", "S")
    )
    return table + f"\nBSP terms (W + H·g + C + S·l): {legend}"
