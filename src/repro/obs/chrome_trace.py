"""Chrome ``trace_event`` export for tracer data (Perfetto-loadable).

Layout:

* ``pid 0`` — the **virtual clock**: one thread row per virtual GPU plus
  a ``comm`` row for inter-GPU sends; operator/superstep/comm spans are
  complete (``"X"``) events with microsecond ``ts``/``dur`` derived from
  virtual seconds, and recovery/checkpoint/barrier/direction events are
  instants (``"i"``).
* ``pid 1`` — the **wall clock**: superstep spans re-plotted on real
  time, which is where the ``threads`` backend's overlap (or lack of
  it) becomes visible.

Open the file at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .events import RECOVERY_EVENT_TYPES, SUPERVISION_EVENT_TYPES
from .tracer import COMM_TRACK, SUPERVISOR_TRACK, Tracer

__all__ = [
    "to_chrome_trace",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "summarize_chrome_trace",
]

#: event types rendered as instants on the virtual-clock process
INSTANT_TYPES = frozenset(
    {
        "barrier",
        "direction.switch",
        "checkpoint",
        "checkpoint.capture",
        "recovery.retry",
        "recovery.oom-regrow",
        "recovery.gpu-loss",
        "recovery.rollback",
        "recovery.restore-routed",
        "sanitizer.hazard",
        "mc.divergence",
    }
    | SUPERVISION_EVENT_TYPES
)

#: instant names counted into the summarizer's checkpoint/recovery
#: bucket (``repro trace`` surfaces them even when the run recovered
#: quietly)
_RECOVERY_INSTANTS = (
    RECOVERY_EVENT_TYPES
    | {"checkpoint", "checkpoint.capture", "recovery.restore-routed"}
)

_US = 1e6  # virtual seconds -> trace microseconds


def _num_tracks(tracer: Tracer) -> int:
    n = tracer.num_gpus
    for s in tracer.spans:
        if s.track >= n:
            n = s.track + 1
    return max(n, 1)


def to_chrome_trace(tracer: Tracer) -> dict:
    """Build the Chrome ``trace_event`` JSON object for a traced run."""
    num_gpus = _num_tracks(tracer)
    comm_tid = num_gpus
    sup_tid = num_gpus + 1
    events: List[dict] = []

    def meta(pid: int, tid: int, name: str, value: str) -> None:
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": name,
             "args": {"name": value}}
        )

    meta(0, 0, "process_name", "virtual multi-GPU machine (virtual clock)")
    meta(1, 0, "process_name", "simulation wall clock")
    for g in range(num_gpus):
        meta(0, g, "thread_name", f"GPU {g}")
        meta(1, g, "thread_name", f"GPU {g} (wall)")
    meta(0, comm_tid, "thread_name", "comm")
    if any(e.get("type") in SUPERVISION_EVENT_TYPES for e in tracer.events) \
            or any(s.track == SUPERVISOR_TRACK for s in tracer.spans):
        meta(0, sup_tid, "thread_name", "supervisor")

    for s in tracer.spans:
        if s.track == COMM_TRACK:
            tid = comm_tid
        elif s.track == SUPERVISOR_TRACK:
            tid = sup_tid
        else:
            tid = s.track
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "name": s.name,
                "cat": s.cat,
                "ts": s.vt_start * _US,
                "dur": s.vt_dur * _US,
                "args": {"iteration": s.iteration, **s.args},
            }
        )
        if s.cat == "superstep" and s.wall_dur > 0:
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": s.name,
                    "cat": "wall",
                    "ts": s.wall_start * _US,
                    "dur": s.wall_dur * _US,
                    "args": {"iteration": s.iteration, **s.args},
                }
            )

    for e in tracer.events:
        etype = e.get("type")
        if etype not in INSTANT_TYPES or "vt" not in e:
            continue
        gpu = e.get("gpu")
        if etype in SUPERVISION_EVENT_TYPES:
            tid = sup_tid
        elif isinstance(gpu, int) and 0 <= gpu < num_gpus:
            tid = gpu
        else:
            tid = comm_tid
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": tid,
                "name": etype,
                "s": "t" if isinstance(gpu, int) else "g",
                "ts": e["vt"] * _US,
                "args": {k: v for k, v in e.items() if k not in ("type", "vt")},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "primitive": tracer.primitive,
            "backend": tracer.backend,
            "num_gpus": num_gpus,
        },
    }


def export_chrome_trace(tracer: Tracer, path) -> dict:
    """Write the Chrome trace JSON to ``path``; returns the object."""
    trace = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def load_chrome_trace(path) -> dict:
    """Read back a Chrome-trace JSON file written by ``export_chrome_trace``."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def validate_chrome_trace(trace) -> List[str]:
    """Return structural problems for a Chrome trace object ([] = OK).

    Checks both trace_event well-formedness (Perfetto loadability) and
    the repro's own layout contract: per-GPU thread rows, a comm row,
    and at least one operator span on a GPU track.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    thread_names: List[str] = []
    gpu_span = False
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing or non-string 'name'")
        for fld in ("pid", "tid"):
            if not isinstance(ev.get(fld), int):
                problems.append(f"{where}: missing or non-integer {fld!r}")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                problems.append(f"{where}: missing or non-numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                problems.append(f"{where}: missing or non-numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative 'dur'")
            if ev.get("pid") == 0 and ev.get("cat") in ("op", "superstep"):
                gpu_span = True
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        if ph == "M" and ev.get("name") == "thread_name":
            args = ev.get("args")
            if isinstance(args, dict) and isinstance(args.get("name"), str):
                thread_names.append(args["name"])
            else:
                problems.append(f"{where}: thread_name without args.name")
    if not any(n.startswith("GPU ") for n in thread_names):
        problems.append("no per-GPU thread_name metadata (expected 'GPU <i>')")
    if "comm" not in thread_names:
        problems.append("no 'comm' thread row")
    if not gpu_span:
        problems.append("no operator/superstep span on the virtual-clock process")
    return problems


def summarize_chrome_trace(trace) -> dict:
    """Aggregate view of a trace for ``repro trace``."""
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    names: Dict[tuple, str] = {}
    for ev in events:
        if isinstance(ev, dict) and ev.get("ph") == "M" \
                and ev.get("name") == "thread_name":
            label = ev.get("args", {}).get("name", "")
            names[(ev.get("pid"), ev.get("tid"))] = label
    tracks: Dict[str, Dict[str, float]] = {}
    instants: Dict[str, int] = {}
    span_count = 0
    end_us = 0.0
    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph == "X":
            span_count += 1
            key = names.get((ev.get("pid"), ev.get("tid")),
                            f"pid{ev.get('pid')}.tid{ev.get('tid')}")
            row = tracks.setdefault(key, {"spans": 0, "busy_ms": 0.0})
            row["spans"] += 1
            row["busy_ms"] += float(ev.get("dur", 0.0)) / 1e3
            end_us = max(end_us, float(ev.get("ts", 0.0)) + float(ev.get("dur", 0.0)))
        elif ph == "i":
            instants[ev.get("name", "?")] = instants.get(ev.get("name", "?"), 0) + 1
            end_us = max(end_us, float(ev.get("ts", 0.0)))
    other = trace.get("otherData", {}) if isinstance(trace, dict) else {}
    supervisor = {
        name: count
        for name, count in sorted(instants.items())
        if name in SUPERVISION_EVENT_TYPES
    }
    recovery = {
        name: count
        for name, count in sorted(instants.items())
        if name in _RECOVERY_INSTANTS
    }
    return {
        "primitive": other.get("primitive", ""),
        "backend": other.get("backend", ""),
        "num_gpus": other.get("num_gpus", 0),
        "spans": span_count,
        "tracks": tracks,
        "instants": instants,
        "supervisor": supervisor,
        "recovery": recovery,
        "end_ms": end_us / 1e3,
    }
