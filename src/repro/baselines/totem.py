"""Totem-style hybrid CPU+GPU engine (Gharaibeh et al., Table IV).

Strategy modeled (Section II-A): Totem statically splits the graph
between CPU and GPU by a performance model (high-degree vertices to the
GPU); each BSP superstep computes on both processors and exchanges
boundary updates over PCIe.  The charged limitations:

* the CPU partition computes at CPU memory bandwidth (~10x below GPU);
* every superstep moves boundary data across PCIe ("repeatedly moving
  data between CPUs and GPUs is costly");
* only direct-neighbor algorithms are expressible (generality limit,
  enforced).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from ..sim.interconnect import PCIE3_HOST
from .common import BaselineMachine, BaselineResult
from .reference import bfs_reference, pagerank_reference, sssp_reference

__all__ = ["totem_run", "CPU_BANDWIDTH"]

#: dual-socket Xeon effective random-access bandwidth (bytes/s)
CPU_BANDWIDTH = 30e9


def totem_run(
    graph: CsrGraph,
    primitive: str,
    source: int = 0,
    num_gpus: int = 2,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    gpu_fraction: float = 0.75,
) -> BaselineResult:
    """Run the Totem strategy model (``num_gpus`` GPUs + host CPUs).

    ``gpu_fraction`` is the share of edges Totem's performance model
    places on the GPUs (it favors them until memory runs out).
    """
    if primitive not in ("bfs", "sssp", "pr", "bc"):
        raise ValueError(
            f"Totem's neighbor-only model cannot express {primitive!r}"
        )
    machine = BaselineMachine(num_gpus, spec, scale)
    result: Optional[np.ndarray]
    if primitive == "bfs":
        result, _ = bfs_reference(graph, source)
        levels = result
        iters = int(levels.max()) + 1
    elif primitive == "sssp":
        result, _ = sssp_reference(graph, source)
        levels, _ = bfs_reference(graph, source)
        iters = (int(levels.max()) + 1) * 3
    elif primitive == "bc":
        from .reference import bc_reference

        result = bc_reference(graph, source=source)
        levels, _ = bfs_reference(graph, source)
        iters = 2 * (int(levels.max()) + 1)
    else:
        result = pagerank_reference(graph)
        iters = 30

    ids_b = graph.ids.vertex_bytes
    edges_gpu = graph.num_edges * gpu_fraction / max(num_gpus, 1)
    edges_cpu = graph.num_edges * (1.0 - gpu_fraction)
    boundary = graph.num_vertices * 0.1  # boundary vertices exchanged

    for _ in range(iters):
        t_gpu = machine.kernel_model.kernel_time(
            streaming_bytes=edges_gpu * ids_b,
            random_bytes=edges_gpu * (ids_b + 8),
            launches=3,
        ).total
        # the CPU side: same traffic at CPU bandwidth (scaled like GPUs)
        cpu_bytes = edges_cpu * (2 * ids_b + 8) * scale
        t_cpu = cpu_bytes / CPU_BANDWIDTH
        machine.charge_seconds(max(t_gpu, t_cpu))  # BSP: slower side wins
        machine.charge_transfer(
            boundary * (ids_b + 8),
            link=PCIE3_HOST,
            messages=2 * num_gpus,
        )

    return BaselineResult(
        system="totem",
        primitive=primitive,
        elapsed=machine.elapsed,
        iterations=iters,
        result=result,
        scale=scale,
    )
