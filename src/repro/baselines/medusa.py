"""Medusa-style n-hop replication engine (Zhong & He, Table III).

Strategy modeled (Section II-A): the pioneering general mGPU graph
library.  It partitions with Metis, **replicates every vertex within n
hops of a partition boundary**, and refreshes the replicas' values every
n iterations.  Costs charged:

* fine-grained per-edge/per-vertex API kernels — more launches and no
  advance+filter fusion;
* replica refresh traffic: all replicated vertices' values move every n
  iterations (far more than the active border — the memory/communication
  scalability problem the paper notes);
* it cannot express beyond-n-hop algorithms at all (the model raises for
  them, mirroring the generality limitation).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from ..partition.base import PartitionResult
from ..partition.metis_like import MetisLikePartitioner
from ..sim.device import DeviceSpec, K40
from .common import BaselineMachine, BaselineResult
from .reference import bfs_reference

__all__ = ["medusa_bfs", "replicated_vertices"]


def replicated_vertices(
    graph: CsrGraph, part: PartitionResult, hops: int = 1
) -> int:
    """Total replicas across GPUs: vertices within ``hops`` of a border."""
    pt = part.partition_table.astype(np.int64)
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices.astype(np.int64)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(offsets))
    total = 0
    for g in range(part.num_gpus):
        # frontier of replication: remote endpoints of GPU g's edges
        mask = pt[src] == g
        layer = np.unique(cols[mask][pt[cols[mask]] != g])
        replicas = set(layer.tolist())
        for _ in range(hops - 1):
            if layer.size == 0:
                break
            nxt = []
            for v in layer:
                nxt.append(cols[offsets[v]:offsets[v + 1]])
            layer = np.unique(np.concatenate(nxt)) if nxt else layer[:0]
            layer = layer[[x not in replicas for x in layer.tolist()]]
            replicas.update(layer.tolist())
        total += len(replicas)
    return total


def medusa_bfs(
    graph: CsrGraph,
    source: int = 0,
    num_gpus: int = 1,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    hops: int = 1,
    seed: int = 0,
) -> BaselineResult:
    """Run the Medusa strategy model for BFS."""
    machine = BaselineMachine(num_gpus, spec, scale)
    levels, _ = bfs_reference(graph, source)
    ids_b = graph.ids.vertex_bytes
    deg = np.diff(graph.row_offsets.astype(np.int64))
    max_level = int(levels.max())

    part = MetisLikePartitioner(seed=seed).partition(graph, num_gpus)
    n_replicas = replicated_vertices(graph, part, hops) if num_gpus > 1 else 0
    # Metis preprocessing time is reported but not charged against
    # traversal (the paper's Fig. 2 note: "takes a much longer time to
    # partition"); expose it for inspection.
    metis_cost = graph.num_edges * 60e-9  # ~60 ns/edge multilevel work

    for depth in range(max_level + 1):
        frontier = np.flatnonzero(levels == depth)
        if frontier.size == 0:
            break
        frontier_edges = int(deg[frontier].sum())
        per_gpu_e = frontier_edges / num_gpus
        per_gpu_v = frontier.size / num_gpus
        # EMV/EV/VV fine-grained API: separate kernels, heavy atomics
        t = machine.kernel_model.kernel_time(
            streaming_bytes=(per_gpu_v + per_gpu_e) * ids_b * 2,
            random_bytes=per_gpu_e * (ids_b + 4) * 1.3,
            launches=10,
            atomic_ops=per_gpu_e * 1.2,
        ).total
        machine.charge_seconds(t)
        if num_gpus > 1 and (depth % hops == hops - 1):
            # replica refresh: every replicated vertex's value moves
            machine.charge_transfer(
                n_replicas * (ids_b + 4),
                link=machine.peer_link,
                messages=num_gpus * (num_gpus - 1),
            )

    return BaselineResult(
        system="medusa",
        primitive="bfs",
        elapsed=machine.elapsed,
        iterations=max_level + 1,
        result=levels,
        scale=scale,
        extra={"replicas": float(n_replicas), "metis_seconds": metis_cost},
    )
