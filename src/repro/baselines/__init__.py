"""Prior-system strategy models and serial reference oracles.

``reference`` holds the validation oracles; the remaining modules model
the strategies of the systems compared in Tables III and IV on the same
virtual hardware constants as the framework.
"""

from .apu import apu_hybrid_bfs
from .b40c_bfs import b40c_bfs
from .common import BaselineMachine, BaselineResult
from .enterprise import enterprise_dobfs
from .frog import frog_color_graph, frog_run
from .graphmap import graphmap_run
from .graphreduce import graphreduce_run
from .medusa import medusa_bfs
from .reference import (
    bc_reference,
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)
from .totem import totem_run
from .twod_bfs import twod_bfs

__all__ = [
    "BaselineResult",
    "BaselineMachine",
    "apu_hybrid_bfs",
    "b40c_bfs",
    "enterprise_dobfs",
    "medusa_bfs",
    "twod_bfs",
    "graphreduce_run",
    "graphmap_run",
    "frog_run",
    "frog_color_graph",
    "totem_run",
    "bfs_reference",
    "sssp_reference",
    "cc_reference",
    "bc_reference",
    "pagerank_reference",
]
