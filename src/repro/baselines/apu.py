"""Daga et al.'s Hybrid++ BFS on an APU (Section VII-C comparison).

Strategy modeled: an accelerated processing unit (single-chip CPU+GPU)
traverses with a hybrid scheme that hands each BFS level to whichever
side suits it.  Two properties drive the paper's comparison:

* the APU's **memory bandwidth is ~10x below a discrete GPU's**
  (dual-channel DDR3, ~25 GB/s), which caps big-frontier levels — this
  is why "Gunrock shows 5 to 10x performance" on power-law graphs;
* there is **no PCIe and almost no launch latency** (the GPU shares the
  chip), and tiny frontiers run on the CPU — so on road networks, where
  per-iteration overhead dominates, the APU *wins*: "Gunrock's
  performance and efficiency are only half of Daga's".
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from .common import BaselineMachine, BaselineResult
from .reference import bfs_reference

__all__ = ["apu_hybrid_bfs", "APU_BANDWIDTH", "APU_ITERATION_OVERHEAD"]

#: effective shared-memory bandwidth of the APU (bytes/s)
APU_BANDWIDTH = 25e9

#: per-level overhead on-chip: no PCIe hop, no driver round trip
APU_ITERATION_OVERHEAD = 4e-6

#: levels with fewer edges than this run on the CPU cores at full rate
_CPU_THRESHOLD_EDGES = 512


def apu_hybrid_bfs(
    graph: CsrGraph,
    source: int = 0,
    scale: float = 1024.0,
) -> BaselineResult:
    """Run the Hybrid++(APU) strategy model; returns levels and time."""
    machine = BaselineMachine(1, scale=scale)
    levels, _ = bfs_reference(graph, source)
    deg = np.diff(graph.row_offsets.astype(np.int64))
    ids_b = graph.ids.vertex_bytes
    max_level = int(levels.max())
    elapsed = 0.0
    for depth in range(max_level + 1):
        frontier = np.flatnonzero(levels == depth)
        if frontier.size == 0:
            break
        frontier_edges = int(deg[frontier].sum())
        # both CPU and GPU sides read the shared DDR3; the hybrid picks
        # whichever launches cheaper for tiny levels
        bytes_moved = frontier_edges * (2 * ids_b + 4) * scale
        elapsed += APU_ITERATION_OVERHEAD + bytes_moved / APU_BANDWIDTH
    machine.elapsed = elapsed
    return BaselineResult(
        system="apu-hybrid++",
        primitive="bfs",
        elapsed=elapsed,
        iterations=max_level + 1,
        result=levels,
        scale=scale,
    )
