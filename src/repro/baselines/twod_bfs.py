"""2-D partitioned BFS (Fu et al. / Bisson et al., Table III comparisons).

Strategy modeled (Section II-A): the adjacency matrix is partitioned into
a sqrt(n) x sqrt(n) (here: R x C) grid of blocks; each BFS step is an
expand along block rows followed by an MPI-style **column contraction of
the edge frontier**.  The communication unit is the *edge* frontier —
"large edge frontiers transmitted between GPUs cause large communication
overheads and limit scalability" — which is the key disadvantage vs. our
vertex-border communication.  Bisson et al. additionally pay heavy global
atomics, modeled by the ``atomic_heavy`` flag.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from .common import BaselineMachine, BaselineResult
from .reference import bfs_reference

__all__ = ["twod_bfs"]


def _grid_shape(num_gpus: int):
    r = int(np.sqrt(num_gpus))
    while num_gpus % r:
        r -= 1
    return r, num_gpus // r


def twod_bfs(
    graph: CsrGraph,
    source: int = 0,
    num_gpus: int = 4,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    atomic_heavy: bool = False,
    inter_node_link=None,
) -> BaselineResult:
    """Run the 2-D partitioning strategy model.

    ``inter_node_link`` models the *cluster* variants (Fu et al. across
    nodes, Bisson/Bernaschi on Piz Daint-style machines): the contraction
    and allgather exchanges then pay network bandwidth/latency instead of
    intra-node PCIe.
    """
    machine = BaselineMachine(num_gpus, spec, scale)
    if inter_node_link is not None:
        machine.host_link = inter_node_link
    levels, _ = bfs_reference(graph, source)
    rows, cols_n = _grid_shape(num_gpus)
    ids_b = graph.ids.vertex_bytes
    offsets = graph.row_offsets.astype(np.int64)
    deg = np.diff(offsets)
    max_level = int(levels.max())

    for depth in range(max_level + 1):
        frontier = np.flatnonzero(levels == depth)
        if frontier.size == 0:
            break
        frontier_edges = int(deg[frontier].sum())
        # expand: each of the R*C blocks processes its slice of the edges
        per_block_edges = frontier_edges / num_gpus
        t_expand = machine.kernel_model.kernel_time(
            streaming_bytes=per_block_edges * ids_b,
            random_bytes=per_block_edges * (ids_b + 4),
            launches=2,
            atomic_ops=2.5 * per_block_edges if atomic_heavy else 0.0,
        ).total
        machine.charge_seconds(t_expand)
        # contract: the EDGE frontier of each block column is exchanged
        # down the column (cols_n - 1 hops worth of traffic per column)
        edge_frontier_bytes = per_block_edges * ids_b
        machine.charge_transfer(
            edge_frontier_bytes * max(rows - 1, 1),
            link=machine.host_link,  # MPI-style staging through the host
            messages=max(rows - 1, 1),
        )
        # row allgather of the new vertex frontier
        machine.charge_transfer(
            (frontier.size / cols_n) * ids_b * max(cols_n - 1, 1),
            link=machine.host_link,
            messages=max(cols_n - 1, 1),
        )

    return BaselineResult(
        system="bisson-2d" if atomic_heavy else "fu-2d",
        primitive="bfs",
        elapsed=machine.elapsed,
        iterations=max_level + 1,
        result=levels,
        scale=scale,
    )
