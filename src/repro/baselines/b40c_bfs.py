"""Merrill et al.'s B40C-style BFS (Table III comparison).

Strategy modeled (Section II-A):

* single GPU: the first linear-work expand-contract BFS — excellent,
  heavily fused kernels with near-peak memory efficiency;
* multi-GPU: vertices distributed across GPUs; "data related to remote
  vertices are fetched via **peer memory access**" *inside* the compute
  kernels.  Cross-GPU random loads run at PCIe-peer bandwidth instead of
  DRAM bandwidth, and mixing local/remote accesses causes the load
  imbalance the paper calls out — both charged here.

No direction optimization (it predates DOBFS on GPUs).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from .common import BaselineMachine, BaselineResult, partition_vertices
from .reference import bfs_reference

__all__ = ["b40c_bfs"]


def b40c_bfs(
    graph: CsrGraph,
    source: int = 0,
    num_gpus: int = 1,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    seed: int = 0,
) -> BaselineResult:
    """Run the B40C strategy model; returns levels and charged time."""
    machine = BaselineMachine(num_gpus, spec, scale)
    levels, _ = bfs_reference(graph, source)
    part = partition_vertices(graph, num_gpus, seed=seed)
    ids_b = graph.ids.vertex_bytes
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    max_level = int(levels.max())

    for depth in range(max_level + 1):
        frontier = np.flatnonzero(levels == depth)
        if frontier.size == 0:
            break
        # per-GPU workload of this level
        per_gpu_times = []
        for g in range(num_gpus):
            mine = frontier[part[frontier] == g]
            if mine.size == 0:
                per_gpu_times.append(spec.kernel_launch_overhead)
                continue
            deg = (offsets[mine + 1] - offsets[mine]).astype(np.int64)
            edges = int(deg.sum())
            if edges:
                idx = np.repeat(
                    offsets[mine] + deg - np.cumsum(deg), deg
                ) + np.arange(edges, dtype=np.int64)
                nbrs = cols[idx].astype(np.int64)
                remote_edges = int((part[nbrs] != g).sum())
            else:
                remote_edges = 0
            local_edges = edges - remote_edges
            # fused expand-contract: high streaming efficiency locally
            t_local = machine.kernel_model.kernel_time(
                streaming_bytes=(mine.size + edges) * ids_b,
                random_bytes=local_edges * (ids_b + 4),
                launches=2,  # expand + contract, fused internals
            ).total
            # remote gathers cross the peer link at peer bandwidth
            t_remote = (
                remote_edges
                * (ids_b + 4)
                * scale
                / machine.peer_link.bandwidth
            )
            per_gpu_times.append(t_local + t_remote)
        # peer-access coupling: every GPU waits for the slowest, and the
        # local/remote interleave costs an imbalance factor on top
        machine.charge_seconds(max(per_gpu_times) * 1.15)

    return BaselineResult(
        system="b40c",
        primitive="bfs",
        elapsed=machine.elapsed,
        iterations=max_level + 1,
        result=levels,
        scale=scale,
    )
