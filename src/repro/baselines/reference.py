"""From-scratch reference implementations (validation oracles).

Every framework primitive is verified against these serial algorithms —
the paper's "computations are verified for correctness" (Section VII-A).
They are written for clarity and independence from the framework code
paths (different algorithms where possible: Dijkstra with a binary heap
for SSSP, union-find for CC, Brandes for BC, dense power iteration for
PR), so agreement is meaningful.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from ..graph.csr import CsrGraph

__all__ = [
    "bfs_reference",
    "sssp_reference",
    "cc_reference",
    "bc_reference",
    "pagerank_reference",
]


def bfs_reference(
    graph: CsrGraph, source: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Level-synchronous BFS; returns (levels, parents), -1 = unreached."""
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                v = int(v)
                if levels[v] < 0:
                    levels[v] = depth
                    parents[v] = u
                    nxt.append(v)
        frontier = nxt
    return levels, parents


def sssp_reference(
    graph: CsrGraph, source: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra with a binary heap; returns (dist, preds), inf = unreached.

    Requires non-negative edge values (the paper's SSSP weights are random
    integers in [0, 64]).
    """
    if graph.values is None:
        raise ValueError("SSSP reference needs edge values")
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    preds = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    vals = graph.values
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for idx in range(offsets[u], offsets[u + 1]):
            v = int(cols[idx])
            nd = d + float(vals[idx])
            if nd < dist[v]:
                dist[v] = nd
                preds[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, preds


def cc_reference(graph: CsrGraph) -> np.ndarray:
    """Connected components by union-find with path compression.

    Returns component IDs normalized to the *minimum vertex ID* of each
    component (the convention Soman-style hooking converges to).
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    for u in range(n):
        for idx in range(offsets[u], offsets[u + 1]):
            ru, rv = find(u), find(int(cols[idx]))
            if ru != rv:
                # union by smaller root => min-ID convention
                if ru < rv:
                    parent[rv] = ru
                else:
                    parent[ru] = rv
    return np.array([find(v) for v in range(n)], dtype=np.int64)


def bc_reference(
    graph: CsrGraph, source: Optional[int] = None
) -> np.ndarray:
    """Brandes betweenness centrality.

    With ``source`` given, returns the per-vertex dependency contribution
    of that single source (what the paper's BC primitive computes per
    traversal); otherwise sums over all sources (exact BC, unnormalized).
    """
    n = graph.num_vertices
    bc = np.zeros(n)
    sources = range(n) if source is None else [source]
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    for s in sources:
        # forward BFS computing sigma (shortest-path counts)
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        dist[s] = 0
        sigma[s] = 1.0
        stack = []
        frontier = [s]
        while frontier:
            stack.append(frontier)
            nxt = []
            for u in frontier:
                for idx in range(offsets[u], offsets[u + 1]):
                    v = int(cols[idx])
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
                    if dist[v] == dist[u] + 1:
                        sigma[v] += sigma[u]
            frontier = nxt
        # backward dependency accumulation
        delta = np.zeros(n)
        for frontier in reversed(stack[1:]):
            for v in frontier:
                for idx in range(offsets[v], offsets[v + 1]):
                    u = int(cols[idx])
                    if dist[u] == dist[v] - 1 and sigma[v] > 0:
                        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
        delta[s] = 0.0
        bc += delta
    return bc


def pagerank_reference(
    graph: CsrGraph,
    damping: float = 0.85,
    threshold: float = 1e-6,
    max_iterations: int = 1000,
) -> np.ndarray:
    """Push-style PageRank power iteration matching the primitive.

    Ranks start at ``(1 - damping)``; each iteration every vertex pushes
    ``damping * rank / out_degree`` to its neighbors.  Dangling vertices
    (degree 0) push nothing — the same convention as the framework
    primitive, so results are comparable elementwise.  Iterates until
    every rank moves less than ``threshold`` relative to its value.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    deg = graph.out_degree().astype(np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), deg.astype(np.int64))
    dst = graph.col_indices.astype(np.int64)
    rank = np.full(n, 1.0 - damping)
    for _ in range(max_iterations):
        contrib = np.zeros(n)
        push = np.zeros(n)
        nonzero = deg > 0
        push[nonzero] = damping * rank[nonzero] / deg[nonzero]
        np.add.at(contrib, dst, push[src])
        new_rank = (1.0 - damping) + contrib
        delta = np.abs(new_rank - rank) / np.maximum(rank, 1e-12)
        rank = new_rank
        if delta.max() < threshold:
            break
    return rank
