"""GraphReduce-style out-of-core GAS engine (Sengupta et al., Table IV).

Strategy modeled (Section II-A): the graph lives in host memory as edge
shards; every Gather-Apply-Scatter superstep **streams the shards over
PCIe** to the single GPU, processes them, and streams updated values
back.  "It must stream the graph to the GPU during the computation,
making the PCIe bus a performance bottleneck" — per iteration the bus
moves O(|E|) bytes regardless of how small the active frontier is, which
is why Table IV shows runtimes in the tens-to-hundreds of seconds where
in-core runs take milliseconds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from ..sim.interconnect import PCIE3_HOST
from .common import BaselineMachine, BaselineResult
from .reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)

__all__ = ["graphreduce_run"]

#: edge bytes streamed per GAS superstep: src, dst, value, plus the
#: vertex-value shard headers (GAS moves both directions' shards)
_BYTES_PER_EDGE = 20


def _iterations_for(primitive: str, graph: CsrGraph, source: int) -> int:
    if primitive == "bfs":
        levels, _ = bfs_reference(graph, source)
        return int(levels.max()) + 1
    if primitive == "sssp":
        # Bellman-Ford-style GAS relaxation rounds ~ weighted depth
        levels, _ = bfs_reference(graph, source)
        return min(graph.num_vertices, (int(levels.max()) + 1) * 3)
    if primitive == "cc":
        return max(4, int(np.ceil(np.log2(max(graph.num_vertices, 2)))))
    if primitive == "pr":
        return 30  # typical fixed-iteration PR configuration
    raise ValueError(f"GraphReduce model has no primitive {primitive!r}")


def graphreduce_run(
    graph: CsrGraph,
    primitive: str,
    source: int = 0,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
) -> BaselineResult:
    """Run the GraphReduce strategy model (always 1 GPU, out-of-core)."""
    machine = BaselineMachine(1, spec, scale)
    result: Optional[np.ndarray]
    if primitive == "bfs":
        result, _ = bfs_reference(graph, source)
    elif primitive == "sssp":
        result, _ = sssp_reference(graph, source)
    elif primitive == "cc":
        result = cc_reference(graph)
    elif primitive == "pr":
        result = pagerank_reference(graph)
    else:
        raise ValueError(f"unsupported primitive {primitive!r}")

    iterations = _iterations_for(primitive, graph, source)
    edge_bytes = graph.num_edges * _BYTES_PER_EDGE
    vertex_bytes = graph.num_vertices * 8
    for _ in range(iterations):
        # stream shards in, GAS kernels, stream vertex values out
        machine.charge_transfer(
            edge_bytes + vertex_bytes, link=PCIE3_HOST, messages=8
        )
        machine.charge_kernel(
            streaming_bytes=edge_bytes,
            random_bytes=graph.num_edges * 8,
            launches=12,  # gather + apply + scatter per shard batch
            atomic_ops=graph.num_edges * 0.25,
        )
        machine.charge_transfer(vertex_bytes, link=PCIE3_HOST, messages=2)

    return BaselineResult(
        system="graphreduce",
        primitive=primitive,
        elapsed=machine.elapsed,
        iterations=iterations,
        result=result,
        scale=scale,
    )
