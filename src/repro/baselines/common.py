"""Shared plumbing for baseline (prior-work) system models.

Each baseline reimplements the *strategy* of a system the paper compares
against (Tables III/IV) on the same virtual hardware: correct results
computed in NumPy, virtual time charged through the identical
:class:`~repro.sim.device.DeviceSpec` / link constants, so comparisons
against our framework are strategy-vs-strategy on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from ..sim.interconnect import PCIE3_HOST, PCIE3_PEER, LinkSpec
from ..sim.kernel import KernelModel
from ..sim.machine import DEFAULT_SCALE

__all__ = ["BaselineResult", "BaselineMachine"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    system: str
    primitive: str
    elapsed: float
    iterations: int
    result: Optional[np.ndarray] = None
    scale: float = DEFAULT_SCALE
    extra: Dict[str, float] = field(default_factory=dict)

    def gteps(self, edges: int) -> float:
        if self.elapsed <= 0:
            return 0.0
        return edges * self.scale / self.elapsed / 1e9


class BaselineMachine:
    """Minimal cost-charging machine for baseline strategy models.

    A thin alternative to the full stream engine: baselines accumulate
    time on a scalar clock (they are simpler systems without Gunrock's
    stream overlap — which is itself one of the paper's claimed
    advantages, Section VII-C).
    """

    def __init__(
        self,
        num_gpus: int = 1,
        spec: DeviceSpec = K40,
        scale: float = DEFAULT_SCALE,
        peer_link: LinkSpec = PCIE3_PEER,
        host_link: LinkSpec = PCIE3_HOST,
    ):
        self.num_gpus = num_gpus
        self.spec = spec
        self.scale = scale
        self.peer_link = peer_link
        self.host_link = host_link
        self.kernel_model = KernelModel(spec, scale)
        self.elapsed = 0.0

    def charge_kernel(self, **kwargs) -> float:
        t = self.kernel_model.kernel_time(**kwargs).total
        self.elapsed += t
        return t

    def charge_transfer(
        self, nbytes: float, link: Optional[LinkSpec] = None, messages: int = 1
    ) -> float:
        lk = link or self.peer_link
        t = messages * lk.latency + nbytes * self.scale / lk.bandwidth
        self.elapsed += t
        return t

    def charge_seconds(self, seconds: float) -> float:
        self.elapsed += seconds
        return seconds


def partition_vertices(
    graph: CsrGraph, num_parts: int, seed: int = 0
) -> np.ndarray:
    """Balanced random vertex assignment (what most baselines use)."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    perm = rng.permutation(n)
    out = np.empty(n, dtype=np.int32)
    out[perm] = np.arange(n, dtype=np.int32) % num_parts
    return out
