"""Enterprise-style hardwired DOBFS (Liu & Huang, Table III comparison).

Strategy modeled (Section II-A / VII-C): a BFS-only system with direction
optimization and GPU specialization, "state of the art for a traditional
DOBFS implementation on GPUs within a single node".  Differences from our
framework that the model charges:

* Beamer-style backward iterations scan the **full vertex set** for
  unvisited vertices every backward step (our Section VI-A optimization
  keeps a newly-discovered frontier instead);
* multi-GPU exchange ships the whole visited **bitmap** (O(|V|) bits) to
  every peer each iteration, rather than frontier-sized messages;
* no framework overhead (it is hardwired), so its 1-GPU launch cost is
  lower than ours.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from .common import BaselineMachine, BaselineResult, partition_vertices
from .reference import bfs_reference

__all__ = ["enterprise_dobfs"]


def enterprise_dobfs(
    graph: CsrGraph,
    source: int = 0,
    num_gpus: int = 1,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    alpha: float = 15.0,
    seed: int = 0,
    scan_factor: float = 16.0,
    imbalance: float = 2.5,
) -> BaselineResult:
    """Run the Enterprise strategy model; returns levels and charged time.

    ``scan_factor`` is the average number of in-edges a Beamer-style pull
    probes per unvisited vertex without the paper's newly-discovered
    frontier optimization; ``imbalance`` models the hub-concentration
    load imbalance of its static vertex distribution on scale-free
    graphs.  Both are calibrated so the model lands in the published
    15-18 GTEPS band on kron_n24_32 at 2-4 K40s (Table III).
    """
    machine = BaselineMachine(num_gpus, spec, scale)
    levels, _ = bfs_reference(graph, source)
    part = partition_vertices(graph, num_gpus, seed=seed)
    ids_b = graph.ids.vertex_bytes
    offsets = graph.row_offsets.astype(np.int64)
    deg = np.diff(offsets)
    n = graph.num_vertices
    max_level = int(levels.max())
    visited = 0

    for depth in range(max_level + 1):
        frontier = np.flatnonzero(levels == depth)
        if frontier.size == 0:
            break
        frontier_edges = int(deg[frontier].sum())
        unvisited = n - visited
        backward = frontier_edges > graph.num_edges / alpha  # Beamer switch
        per_gpu = []
        for g in range(num_gpus):
            mine_v = int((part[frontier] == g).sum())
            mine_e = frontier_edges * mine_v / max(frontier.size, 1)
            if backward:
                # scan ALL vertices for unvisited ones, then pull-probe
                # scan_factor edges per unvisited vertex; hub imbalance
                # multiplies the critical path on multi-GPU runs
                imb = imbalance if num_gpus > 1 else 1.0
                t = machine.kernel_model.kernel_time(
                    streaming_bytes=(n / num_gpus) * 4,
                    random_bytes=(unvisited / num_gpus)
                    * (ids_b + 4)
                    * scan_factor
                    * imb,
                    launches=3,
                ).total
            else:
                t = machine.kernel_model.kernel_time(
                    streaming_bytes=(mine_v + mine_e) * ids_b,
                    random_bytes=mine_e * (ids_b + 4),
                    launches=3,
                ).total
            per_gpu.append(t)
        machine.charge_seconds(max(per_gpu))
        visited += int(frontier.size)
        if num_gpus > 1:
            # full visited-bitmap exchange to every peer
            bitmap_bytes = n / 8
            machine.charge_transfer(
                bitmap_bytes * (num_gpus - 1),
                link=machine.peer_link,
                messages=num_gpus - 1,
            )

    return BaselineResult(
        system="enterprise",
        primitive="dobfs",
        elapsed=machine.elapsed,
        iterations=max_level + 1,
        result=levels,
        scale=scale,
    )
