"""Frog-style hybrid-coloring asynchronous engine (Shi et al., Table IV).

Strategy modeled (Section II-A): Frog preprocesses the graph with a
(relaxed) coloring into sets of independent vertices, then processes
colors asynchronously — updates from earlier colors are visible to later
colors within the same pass.  Two properties are charged:

* **expensive preprocessing** (the coloring) — reported separately, as
  the paper does;
* "performance is restricted by visiting **all edges in each single
  iteration**": every pass over the color sets touches the full edge
  list, even when few vertices are active.

Asynchrony does pay off in *pass count*: label-style algorithms converge
in fewer passes than synchronous iterations, which the model reflects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CsrGraph
from ..sim.device import DeviceSpec, K40
from .common import BaselineMachine, BaselineResult
from .reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)

__all__ = ["frog_color_graph", "frog_run"]


def frog_color_graph(graph: CsrGraph, max_colors: int = 64) -> np.ndarray:
    """Greedy hybrid coloring: first-fit, overflow into a 'hybrid' color.

    Frog caps the color count and dumps the remainder into one final
    color processed with locks; we reproduce that shape.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int32)
    offsets = graph.row_offsets.astype(np.int64)
    cols = graph.col_indices
    order = np.argsort(-np.diff(offsets))  # high degree first
    for v in order:
        used = set(
            int(c)
            for c in colors[cols[offsets[v] : offsets[v + 1]]]
            if c >= 0
        )
        c = 0
        while c in used and c < max_colors - 1:
            c += 1
        colors[v] = c
    return colors


def frog_run(
    graph: CsrGraph,
    primitive: str,
    source: int = 0,
    spec: DeviceSpec = K40,
    scale: float = 1024.0,
    max_colors: int = 16,
) -> BaselineResult:
    """Run the Frog strategy model (1 GPU, color-asynchronous)."""
    machine = BaselineMachine(1, spec, scale)
    result: Optional[np.ndarray]
    if primitive == "bfs":
        levels, _ = bfs_reference(graph, source)
        result = levels
        sync_iters = int(levels.max()) + 1
    elif primitive == "sssp":
        result, _ = sssp_reference(graph, source)
        levels, _ = bfs_reference(graph, source)
        sync_iters = (int(levels.max()) + 1) * 3
    elif primitive == "cc":
        result = cc_reference(graph)
        sync_iters = max(4, int(np.ceil(np.log2(max(graph.num_vertices, 2)))))
    elif primitive == "pr":
        result = pagerank_reference(graph)
        sync_iters = 30
    else:
        raise ValueError(f"unsupported primitive {primitive!r}")

    colors = frog_color_graph(graph, max_colors)
    num_colors = int(colors.max()) + 1
    # asynchrony roughly halves the pass count for label-propagation
    # algorithms; PR keeps synchronous semantics, so no pass credit
    if primitive == "pr":
        passes = sync_iters
    else:
        passes = max(1, int(np.ceil(sync_iters / 2)))
    ids_b = graph.ids.vertex_bytes
    for _ in range(passes):
        for _c in range(num_colors):
            # every color step scans the whole edge array (the Frog cost);
            # the hybrid-color scheme pays per-edge value reads plus lock
            # traffic on the overflow color
            machine.charge_kernel(
                streaming_bytes=graph.num_edges * ids_b / num_colors
                + graph.num_vertices * 4,
                random_bytes=graph.num_edges * (ids_b + 8) * 2 / num_colors,
                launches=2,
                atomic_ops=graph.num_edges * 0.3 / num_colors,
            )

    preprocess_seconds = graph.num_edges * 200e-9  # serial greedy coloring
    return BaselineResult(
        system="frog",
        primitive=primitive,
        elapsed=machine.elapsed,
        iterations=passes,
        result=result,
        scale=scale,
        extra={
            "colors": float(num_colors),
            "preprocess_seconds": preprocess_seconds,
        },
    )
