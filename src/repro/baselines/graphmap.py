"""GraphMap-style CPU distributed-memory engine (Lee et al., Table IV).

Strategy modeled: iterative graph computation on a commodity CPU cluster
(the paper's row uses 4 cores x 21 nodes) with disk-backed partitions —
GraphMap's design point is scaling *iterative* computations on secondary
storage.  Charged per BSP superstep:

* per-node CPU edge processing at commodity memory bandwidth over the
  node's partition (with a disk-touch term for the out-of-memory
  portions);
* an all-to-all message exchange over gigabit-class cluster links;
* a cluster-wide barrier (milliseconds, not microseconds).

The outcome shape of the paper's Table IV: dramatically slower than
in-core GPUs for traversal (126 s vs 2.2 s SSSP), least-bad for PR whose
per-iteration work is uniform.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CsrGraph
from .common import BaselineMachine, BaselineResult
from .reference import (
    bfs_reference,
    cc_reference,
    pagerank_reference,
    sssp_reference,
)

__all__ = ["graphmap_run"]

#: per-core effective random-access processing rate (bytes/s)
_CPU_CORE_BANDWIDTH = 2.5e9
#: gigabit-ethernet-class cluster links
_NET_BANDWIDTH = 0.12e9
_NET_LATENCY = 50e-6
#: cluster-wide BSP barrier (scheduler + stragglers)
_BARRIER = 5e-3
#: fraction of per-superstep partition traffic that touches disk
_DISK_FRACTION = 0.15
_DISK_BANDWIDTH = 0.4e9


def graphmap_run(
    graph: CsrGraph,
    primitive: str,
    source: int = 0,
    num_nodes: int = 21,
    cores_per_node: int = 4,
    scale: float = 1024.0,
) -> BaselineResult:
    """Run the GraphMap strategy model; returns results and charged time."""
    machine = BaselineMachine(1, scale=scale)
    result: Optional[np.ndarray]
    if primitive == "sssp":
        result, _ = sssp_reference(graph, source)
        levels, _ = bfs_reference(graph, source)
        iters = (int(levels.max()) + 1) * 3
    elif primitive == "cc":
        result = cc_reference(graph)
        iters = max(6, int(np.ceil(np.log2(max(graph.num_vertices, 2)))))
    elif primitive == "pr":
        result = pagerank_reference(graph)
        iters = 30
    elif primitive == "bfs":
        result, _ = bfs_reference(graph, source)
        iters = int(result.max()) + 1
    else:
        raise ValueError(f"unsupported primitive {primitive!r}")

    ids_b = graph.ids.vertex_bytes
    edges_per_node = graph.num_edges / num_nodes
    boundary = graph.num_vertices * 0.3  # messages per superstep
    elapsed = 0.0
    for _ in range(iters):
        edge_bytes = edges_per_node * (2 * ids_b + 8) * scale
        t_cpu = edge_bytes / (_CPU_CORE_BANDWIDTH * cores_per_node)
        t_disk = edge_bytes * _DISK_FRACTION / _DISK_BANDWIDTH
        t_net = (
            _NET_LATENCY * num_nodes
            + boundary * (ids_b + 8) * scale / _NET_BANDWIDTH / num_nodes
        )
        elapsed += max(t_cpu, t_disk) + t_net + _BARRIER
    machine.elapsed = elapsed
    return BaselineResult(
        system="graphmap",
        primitive=primitive,
        elapsed=elapsed,
        iterations=iters,
        result=result,
        scale=scale,
    )
