"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``datasets``
    List the Table II dataset stand-ins with their statistics.
``run``
    Run a primitive on a dataset at a GPU count and print the metrics
    (the quickest way to poke at the reproduction).
``partition``
    Compare the three partitioners' border/edge-cut statistics on a
    dataset (the Fig. 2 / Section V-C inputs).
``sweep``
    Speedup sweep of one primitive over GPU counts.
``bench``
    Wall-clock benchmark of the execution backends (serial vs threads vs
    workspace-off); writes ``BENCH_2.json`` (``docs/performance.md``).
``check``
    Static framework-contract linter (``docs/static_analysis.md``); add
    ``--sanitize`` to ``run`` for the dynamic BSP race sanitizer.
``chaos``
    Seeded fault-injection matrix: every primitive must survive
    transient link failures, allocation failures, and a permanent GPU
    loss with results equal to the fault-free reference
    (``docs/robustness.md``).  ``run`` also accepts ``--faults PLAN.json``
    and ``--checkpoint-every N`` to fault a single run.
``trace``
    Validate and summarize a Chrome trace produced by
    ``run --trace`` (``docs/observability.md``); ``run`` also accepts
    ``--events FILE.jsonl`` for the structured event log and
    ``--profile`` for the per-operator W/H/C/S hot-spot table.
``analyze``
    Critical-path analysis of a Chrome trace: per-superstep critical
    GPU/path, barrier slack attributed into W/H/C/S, stragglers, load
    imbalance, and zero-comm / perfect-balance what-if estimates
    (``docs/observability.md``).  ``run`` also accepts
    ``--flight-recorder OUT.json`` to arm the always-on crash
    recorder and ``--metrics-out FILE`` for OpenMetrics exposition.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.bsp import decompose
from .analysis.gteps import traversal_gteps
from .analysis.reporting import render_table
from .graph import datasets
from .graph.build import add_random_weights
from .partition import border_stats, make_partitioner
from .sim.device import K40, K80_HALF, P100
from .sim.machine import Machine

SPECS = {"k40": K40, "k80": K80_HALF, "p100": P100}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Multi-GPU graph analytics (IPDPS 2017 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    run = sub.add_parser("run", help="run one primitive")
    run.add_argument("primitive",
                     choices=["bfs", "dobfs", "sssp", "cc", "bc", "pr"])
    run.add_argument("--dataset", default="soc-orkut")
    run.add_argument("--gpus", type=int, default=4)
    run.add_argument("--src", type=int, default=0)
    run.add_argument("--gpu-model", choices=sorted(SPECS), default="k40")
    run.add_argument("--partitioner", default="random",
                     choices=["random", "biased-random", "metis"])
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--sanitize", action="store_true",
                     help="run under the BSP race sanitizer and report "
                          "hazards (exit 1 if any are found)")
    run.add_argument("--backend", default="serial",
                     help="execution backend: serial, threads[:N], or "
                          "processes[:N] (results are bit-identical; "
                          "only wall-clock changes)")
    run.add_argument("--supervise", action="store_true",
                     help="wrap the processes backend in the worker "
                          "supervisor: heartbeats, crash/hang detection, "
                          "respawn + superstep replay, escalation to "
                          "rollback (requires --backend processes)")
    run.add_argument("--supervise-deadline-factor", type=float,
                     metavar="X", default=None,
                     help="superstep deadline as a multiple of the EWMA "
                          "of observed superstep wall times (default: 16)")
    run.add_argument("--supervise-deadline-floor", type=float,
                     metavar="SECONDS", default=None,
                     help="minimum superstep deadline in seconds "
                          "(default: 10)")
    run.add_argument("--kernels", action="store_true",
                     help="enable the compiled hot-loop kernels "
                          "(Numba njit; falls back to the interpreted "
                          "NumPy operators when Numba is absent)")
    run.add_argument("--faults", metavar="PLAN.json",
                     help="arm a fault plan (see repro.sim.faults."
                          "FaultPlan) before the run")
    run.add_argument("--checkpoint-every", type=int, metavar="N",
                     help="snapshot run state every N supersteps so a "
                          "permanent GPU loss can roll back and resume "
                          "degraded")
    run.add_argument("--trace", metavar="OUT.trace.json",
                     help="record spans and write a Chrome trace_event "
                          "JSON viewable in Perfetto")
    run.add_argument("--events", metavar="OUT.jsonl",
                     help="stream structured events (supersteps, comm "
                          "stages, recovery actions) to a JSONL file")
    run.add_argument("--profile", action="store_true",
                     help="print the per-operator hot-spot table mapped "
                          "onto the BSP W/H/C/S terms")
    run.add_argument("--flight-recorder", metavar="OUT.json",
                     dest="flight_recorder",
                     help="attach the always-on flight recorder (bounded "
                          "ring of recent events); a crash writes the "
                          "dump — last supersteps, heartbeat ages, "
                          "metrics snapshot — to OUT.json")
    run.add_argument("--metrics-out", metavar="FILE", dest="metrics_out",
                     help="write the run's metrics as an OpenMetrics/"
                          "Prometheus text exposition")

    part = sub.add_parser("partition", help="compare partitioners")
    part.add_argument("--dataset", default="soc-orkut")
    part.add_argument("--gpus", type=int, default=4)
    part.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="GPU-count speedup sweep")
    sweep.add_argument("primitive",
                       choices=["bfs", "dobfs", "sssp", "cc", "bc", "pr"])
    sweep.add_argument("--dataset", default="soc-orkut")
    sweep.add_argument("--max-gpus", type=int, default=6)
    sweep.add_argument("--src", type=int, default=0)
    sweep.add_argument("--backend", default="serial",
                       help="execution backend: serial, threads[:N], "
                            "processes[:N]")

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmark of the execution backends "
             "(serial vs threads vs processes vs compiled kernels)",
    )
    bench.add_argument("--out", default="BENCH_2.json",
                       help="output JSON path (default: BENCH_2.json)")
    bench.add_argument("--rmat-scale", type=int, default=13)
    bench.add_argument("--road-side", type=int, default=48)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--gpus", type=int, nargs="+", default=[1, 2, 4])
    bench.add_argument("--primitives", nargs="+", default=None,
                       choices=["bfs", "dobfs", "sssp", "cc", "bc", "pr"])
    bench.add_argument("--smoke", action="store_true",
                       help="small fast configuration for CI: tiny "
                            "graphs, bfs+pr only")
    bench.add_argument("--gate", action="store_true",
                       help="exit 1 if the threads backend is >1.2x "
                            "slower than serial, the processes backend "
                            "is slower than threads, an attached "
                            "tracer is >1.5x serial (or >1.5x the plain "
                            "processes run on the processes backend), "
                            "the flight recorder is >1.05x serial, or "
                            "the worker supervisor is >1.05x the plain "
                            "processes backend, on the 4-GPU rmat BFS "
                            "case (CI regression gate; the "
                            "processes-based gates report 'skipped' on "
                            "a 1-core host instead of passing "
                            "vacuously)")
    bench.add_argument("--baseline", metavar="BENCH.json",
                       help="previous bench JSON to compare the serial "
                            "(tracing-disabled) medians against; skipped "
                            "when config or host differ")
    bench.add_argument("--max-overhead", type=float, default=1.05,
                       help="allowed serial-vs-baseline ratio for "
                            "--baseline (default: 1.05)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection matrix over the six primitives",
    )
    chaos.add_argument("--gpus", type=int, nargs="+", default=[2, 4])
    chaos.add_argument("--primitives", nargs="+", default=None,
                       choices=["bfs", "dobfs", "sssp", "cc", "bc", "pr"])
    chaos.add_argument("--kinds", nargs="+", default=None,
                       choices=["transient-comm", "oom", "gpu-loss",
                                "worker-crash", "worker-hang",
                                "shm-corrupt"])
    chaos.add_argument("--backends", nargs="+", default=None,
                       choices=["serial", "threads", "processes"])
    chaos.add_argument("--rmat-scale", type=int, default=7)
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument("--smoke", action="store_true",
                       help="CI configuration: 2 GPUs, serial backend, "
                            "all primitives and fault kinds (host-level "
                            "kinds always run on the processes backend)")
    chaos.add_argument("--json", metavar="FILE", dest="json_out",
                       help="also write the per-cell results (recovery "
                            "counters, event cross-checks) as JSON")
    chaos.add_argument("--dump-dir", metavar="DIR", dest="dump_dir",
                       help="write each cell's flight-recorder crash "
                            "dump (escalations, cell failures) as "
                            "DIR/<cell>.dump.json")

    trace = sub.add_parser(
        "trace",
        help="validate and summarize a Chrome trace from `run --trace`",
    )
    trace.add_argument("trace_file", help="Chrome trace_event JSON file")
    trace.add_argument("--events", metavar="FILE.jsonl",
                       help="also validate a JSONL event log written by "
                            "`run --events`")

    analyze = sub.add_parser(
        "analyze",
        help="critical-path analysis of a Chrome trace: per-superstep "
             "critical GPU, W/H/C/S slack attribution, stragglers, and "
             "what-if estimates",
    )
    analyze.add_argument("trace_file",
                         help="Chrome trace_event JSON from `run --trace`")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full analysis report as JSON "
                              "instead of the table")
    analyze.add_argument("--top", type=int, metavar="N", default=None,
                         help="show only the N supersteps with the "
                              "longest critical paths")
    analyze.add_argument("--what-if", action="store_true", dest="what_if",
                         help="append the zero-comm and perfect-balance "
                              "counterfactual estimates")

    check = sub.add_parser(
        "check", help="lint sources against the framework contract"
    )
    check.add_argument("paths", nargs="*",
                       help="files or directories to lint (default: the "
                            "installed repro package)")
    check.add_argument("--json", action="store_true", dest="as_json",
                       help="emit findings as JSON instead of text")
    check.add_argument("--deep", action="store_true",
                       help="also run the deep tier: abstract "
                            "interpretation of hook bodies (REP110-112), "
                            "barrier-discipline verification (REP113), "
                            "and combiner certification (REP114)")
    check.add_argument("--mc", action="store_true",
                       help="also run the superstep interleaving model "
                            "checker: explore strict/relaxed barrier "
                            "schedules of each primitive's effect "
                            "summaries (REP116-117) and emit "
                            "ScheduleCertificates")
    check.add_argument("--trace-out", metavar="DIR", dest="trace_out",
                       help="with --mc: write each counterexample as a "
                            "replayable schedule JSON plus a Perfetto-"
                            "loadable Chrome trace under DIR")
    check.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the per-file result cache under "
                            ".repro-check-cache/ for --deep/--mc")
    check.add_argument("--sarif", nargs="?", const="-", metavar="FILE",
                       help="emit SARIF 2.1.0 (to FILE, or stdout when "
                            "no file is given)")
    check.add_argument("--baseline", metavar="FILE",
                       help="suppress findings recorded in this baseline "
                            "file; only new findings fail the gate")
    check.add_argument("--write-baseline", metavar="FILE",
                       dest="write_baseline",
                       help="record the current findings as the baseline "
                            "and exit 0")
    return p


def _cmd_datasets(out) -> int:
    rows = []
    for name in datasets.names():
        s = datasets.spec(name)
        g = datasets.load(name)
        rows.append(
            [name, s.family, g.num_vertices, g.num_edges,
             f"{s.paper_vertices:.3g}", f"{s.paper_edges:.3g}",
             f"{datasets.machine_scale(name):.0f}"]
        )
    print(
        render_table(
            ["name", "family", "|V|", "|E|", "paper |V|", "paper |E|",
             "scale"],
            rows,
            title="Dataset stand-ins (Table II + comparison graphs)",
        ),
        file=out,
    )
    return 0


def _prepare(args):
    graph = datasets.load(args.dataset)
    if args.primitive == "sssp":
        graph = add_random_weights(graph, 1, 64, seed=2)
    scale = datasets.machine_scale(args.dataset)
    return graph, scale


def _run_once(args, graph, scale, num_gpus, out=None, tracer=None,
              recorder=None):
    from .primitives import RUNNERS

    spec = SPECS[getattr(args, "gpu_model", "k40")]
    machine = Machine(num_gpus, spec=spec, scale=scale)
    kwargs = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if recorder is not None:
        kwargs["flight_recorder"] = recorder
    if getattr(args, "partitioner", "random") != "random":
        kwargs["partitioner"] = make_partitioner(args.partitioner, args.seed)
    if getattr(args, "sanitize", False):
        kwargs["sanitize"] = True
    if getattr(args, "backend", "serial") != "serial":
        kwargs["backend"] = args.backend
    if getattr(args, "supervise", False):
        from .core.supervise import SupervisionConfig

        overrides = {}
        if getattr(args, "supervise_deadline_factor", None) is not None:
            overrides["deadline_factor"] = args.supervise_deadline_factor
        if getattr(args, "supervise_deadline_floor", None) is not None:
            overrides["deadline_floor"] = args.supervise_deadline_floor
        kwargs["supervise"] = True
        if overrides:
            kwargs["supervision"] = SupervisionConfig(**overrides)
    if getattr(args, "faults", None):
        from .sim.faults import FaultPlan

        machine.arm_faults(FaultPlan.load(args.faults))
    if getattr(args, "checkpoint_every", None):
        kwargs["checkpoint_every"] = args.checkpoint_every
    runner = RUNNERS[args.primitive]
    if args.primitive in ("bfs", "dobfs", "sssp", "bc"):
        result, metrics, _ = runner(graph, machine, src=args.src, **kwargs)
    else:
        result, metrics, _ = runner(graph, machine, **kwargs)
    return result, metrics


def _cmd_run(args, out) -> int:
    if getattr(args, "kernels", False):
        from .core import kernels

        st = kernels.enable()
        print(f"kernels: {st['backend']}", file=sys.stderr)
    graph, scale = _prepare(args)
    tracer = None
    writer = None
    if args.trace or args.events or args.profile:
        from .obs import EventBus, JsonlWriter, Tracer

        bus = None
        if args.events:
            writer = JsonlWriter(args.events)
            bus = EventBus()
            bus.subscribe(writer)
        tracer = Tracer(bus=bus)
    recorder = None
    if getattr(args, "flight_recorder", None):
        from .obs import FlightRecorder

        recorder = FlightRecorder(path=args.flight_recorder)
    try:
        result, metrics = _run_once(args, graph, scale, args.gpus,
                                    tracer=tracer, recorder=recorder)
    except Exception:
        if recorder is not None and recorder.dumps:
            print(
                f"flight recorder: wrote crash dump {args.flight_recorder}",
                file=sys.stderr,
            )
        raise
    finally:
        if writer is not None:
            writer.close()
    print(metrics.summary(), file=out)
    terms = decompose(metrics).fractions()
    print(
        f"BSP: compute {terms['compute']:.0%}, "
        f"communicate {terms['communicate']:.0%}, "
        f"synchronize {terms['synchronize']:.0%}",
        file=out,
    )
    if args.primitive in ("bfs", "dobfs"):
        print(
            f"traversal rate: "
            f"{traversal_gteps(graph, result, metrics):.2f} GTEPS",
            file=out,
        )
    if (metrics.comm_retries or metrics.oom_recoveries or metrics.rollbacks
            or metrics.checkpoints_taken):
        print(
            f"recovery: {metrics.comm_retries} comm retries, "
            f"{metrics.oom_recoveries} OOM regrows, "
            f"{metrics.rollbacks} rollbacks, "
            f"{metrics.checkpoints_taken} checkpoints"
            + (f", degraded GPUs {metrics.degraded_gpus}"
               if metrics.degraded_gpus else ""),
            file=out,
        )
    if (metrics.worker_respawns or metrics.hang_detections
            or metrics.supersteps_replayed):
        print(
            f"supervision: {metrics.worker_respawns} worker respawns, "
            f"{metrics.supersteps_replayed} supersteps replayed, "
            f"{metrics.hang_detections} hang detections "
            f"({metrics.supervision_overhead_seconds * 1e3:.1f} ms "
            f"overhead)",
            file=out,
        )
    if tracer is not None:
        if args.trace:
            from .obs import export_chrome_trace

            export_chrome_trace(tracer, args.trace)
            print(f"wrote {args.trace} ({len(tracer.spans)} spans; open "
                  "at https://ui.perfetto.dev)", file=out)
        if writer is not None:
            print(f"wrote {args.events} ({writer.count} events)", file=out)
        if args.profile:
            from .obs import render_profile

            print(render_profile(tracer), file=out)
    if recorder is not None:
        print(
            f"flight recorder: {recorder.recorded} events recorded, "
            f"{len(recorder.ring)} in ring (capacity {recorder.capacity}), "
            f"{len(recorder.dumps)} dump(s)",
            file=out,
        )
    if getattr(args, "metrics_out", None):
        from .obs import write_openmetrics

        write_openmetrics(metrics, args.metrics_out)
        print(f"wrote {args.metrics_out} (OpenMetrics)", file=out)
    if metrics.sanitizer_hazards is not None:
        hazards = metrics.sanitizer_hazards
        if hazards:
            for h in hazards:
                print(f"{h['hazard_id']} [{h['name']}] {h['message']}",
                      file=out)
            print(f"sanitizer: {len(hazards)} hazard(s)", file=out)
            return 1
        print("sanitizer: clean", file=out)
    return 0


def _cmd_partition(args, out) -> int:
    graph = datasets.load(args.dataset)
    rows = []
    for name in ("random", "biased-random", "metis"):
        pr = make_partitioner(name, args.seed).partition(graph, args.gpus)
        st = border_stats(graph, pr)
        rows.append(
            [name, st.edge_cut, st.total_border, st.max_border,
             f"{st.load_imbalance:.3f}"]
        )
    print(
        render_table(
            ["partitioner", "edge cut", "total border", "max border",
             "imbalance"],
            rows,
            title=f"{args.dataset} split {args.gpus} ways",
        ),
        file=out,
    )
    return 0


def _cmd_sweep(args, out) -> int:
    graph, scale = _prepare(args)
    rows = []
    base = None
    for n in range(1, args.max_gpus + 1):
        _, metrics = _run_once(args, graph, scale, n)
        if base is None:
            base = metrics.elapsed
        rows.append(
            [n, f"{metrics.elapsed * 1e3:.3f}",
             f"{base / metrics.elapsed:.2f}x", metrics.supersteps]
        )
    print(
        render_table(
            ["GPUs", "ms", "speedup", "S"],
            rows,
            title=f"{args.primitive} on {args.dataset}",
        ),
        file=out,
    )
    return 0


def _cmd_bench(args, out) -> int:
    from .bench import (
        check_baseline_overhead,
        run_bench,
        write_bench,
    )

    kwargs = dict(
        rmat_scale=args.rmat_scale,
        road_side=args.road_side,
        repeats=args.repeats,
        gpu_counts=tuple(args.gpus),
    )
    if args.primitives:
        kwargs["primitives"] = tuple(args.primitives)
    if args.smoke:
        kwargs.update(
            rmat_scale=min(args.rmat_scale, 10),
            road_side=min(args.road_side, 24),
            repeats=min(args.repeats, 3),
            primitives=tuple(args.primitives or ("bfs", "pr")),
            datasets=("rmat",),
        )
    result = run_bench(
        progress=lambda msg: print(f"bench: {msg}", file=sys.stderr),
        **kwargs,
    )
    write_bench(result, args.out)
    rows = [
        [
            c["dataset"], c["primitive"], c["gpus"],
            f"{c['variants']['serial']['median_ms']:.2f}",
            f"{c['variants']['threads']['median_ms']:.2f}",
            f"{c['variants']['processes']['median_ms']:.2f}",
            f"{c['variants']['serial_kernels']['median_ms']:.2f}",
            f"{c['speedup_threads']:.2f}x",
            f"{c['speedup_processes']:.2f}x",
            f"{c['efficiency_per_worker']:.2f}",
            f"{c['speedup_kernels']:.2f}x",
            f"{c['speedup_workspace']:.2f}x",
            f"{c['overhead_traced']:.2f}x",
            f"{c['overhead_traced_processes']:.2f}x",
            f"{c['overhead_recorded']:.2f}x",
            f"{c['supervision_overhead']:.2f}x",
        ]
        for c in result["cases"]
    ]
    kern = result["host"]["kernels"]["backend"]
    print(
        render_table(
            ["dataset", "primitive", "GPUs", "serial ms", "threads ms",
             "procs ms", "kernels ms", "thr. x", "proc x", "eff/worker",
             "kern x", "ws x", "trace cost", "ptrace cost", "rec cost",
             "sup cost"],
            rows,
            title=f"enact() wall-clock "
                  f"(host cores: {result['host']['cpu_count']}, "
                  f"kernels: {kern})",
        ),
        file=out,
    )
    print(f"wrote {args.out}", file=out)
    status = 0
    if args.baseline:
        import json as _json

        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = _json.load(fh)
        err = check_baseline_overhead(
            result, baseline, max_overhead=args.max_overhead
        )
        if err is None:
            print("baseline gate: OK", file=out)
        elif err.startswith("skipped"):
            print(f"baseline gate: {err}", file=out)
        else:
            print(f"baseline gate: {err}", file=sys.stderr)
            status = 1
    if args.gate:
        gate_failed = False
        for name, err in result["gates"].items():
            if err is None:
                continue
            if err.startswith("skipped"):
                print(f"bench gate [{name}]: {err}", file=out)
            else:
                print(f"bench gate [{name}]: {err}", file=sys.stderr)
                gate_failed = True
        if gate_failed:
            status = 1
        else:
            print("bench gate: OK", file=out)
    return status


def _cmd_chaos(args, out) -> int:
    from .chaos import CHAOS_KINDS, CHAOS_PRIMITIVES, run_chaos_matrix

    kwargs = dict(
        primitives=tuple(args.primitives or CHAOS_PRIMITIVES),
        gpu_counts=tuple(args.gpus),
        kinds=tuple(args.kinds or CHAOS_KINDS),
        backends=tuple(args.backends or ("serial", "threads")),
        rmat_scale=args.rmat_scale,
        seed=args.seed,
    )
    if getattr(args, "dump_dir", None):
        kwargs["dump_dir"] = args.dump_dir
    if args.smoke:
        kwargs.update(gpu_counts=(2,), backends=("serial",))
    results = run_chaos_matrix(
        progress=lambda msg: print(f"chaos: {msg}", file=sys.stderr),
        **kwargs,
    )
    rows = [
        [
            r.primitive, r.num_gpus, r.kind, r.backend,
            "ok" if r.ok else "FAIL",
            r.detail or (
                "retries={comm_retries} oom={oom_recoveries} "
                "rollbacks={rollbacks}".format(**r.recovery)
            ),
        ]
        for r in results
    ]
    failed = [r for r in results if not r.ok]
    print(
        render_table(
            ["primitive", "GPUs", "fault", "backend", "result", "detail"],
            rows,
            title=f"chaos matrix ({len(results) - len(failed)}"
                  f"/{len(results)} recovered)",
        ),
        file=out,
    )
    if args.json_out:
        import json as _json

        doc = {
            "cells": [
                {
                    "primitive": r.primitive,
                    "num_gpus": r.num_gpus,
                    "kind": r.kind,
                    "backend": r.backend,
                    "ok": r.ok,
                    "detail": r.detail,
                    "recovery": r.recovery,
                }
                for r in results
            ],
            "recovered": len(results) - len(failed),
            "total": len(results),
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", file=out)
    if failed:
        print(f"chaos: {len(failed)} cell(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args, out) -> int:
    from .obs import (
        load_chrome_trace,
        summarize_chrome_trace,
        validate_chrome_trace,
        validate_events_jsonl,
    )

    try:
        trace = load_chrome_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(trace)
    summary = summarize_chrome_trace(trace)
    rows = [
        [label, int(t["spans"]), f"{t['busy_ms']:.3f}"]
        for label, t in sorted(summary["tracks"].items())
    ]
    title = (
        f"{summary['primitive'] or args.trace_file}: "
        f"{summary['spans']} spans, {summary['num_gpus']} GPUs, "
        f"{summary['backend'] or '?'} backend, "
        f"ends at {summary['end_ms']:.3f} ms"
    )
    print(render_table(["track", "spans", "busy ms"], rows, title=title),
          file=out)
    if summary["instants"]:
        inst = ", ".join(
            f"{name}×{n}" for name, n in sorted(summary["instants"].items())
        )
        print(f"instants: {inst}", file=out)
    if summary.get("supervisor"):
        sup = ", ".join(
            f"{name}×{n}" for name, n in sorted(summary["supervisor"].items())
        )
        print(f"supervisor: {sup}", file=out)
    if summary.get("recovery"):
        rec = ", ".join(
            f"{name}×{n}" for name, n in sorted(summary["recovery"].items())
        )
        print(f"recovery/checkpoint: {rec}", file=out)
    if args.events:
        try:
            problems += [
                f"events: {p}" for p in validate_events_jsonl(args.events)
            ]
        except OSError as exc:
            print(f"repro trace: error: {exc}", file=sys.stderr)
            return 2
    if problems:
        for p in problems:
            print(f"trace: {p}", file=sys.stderr)
        print(f"trace: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("trace: valid", file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    from .obs import (
        TraceData,
        analyze_trace,
        load_chrome_trace,
        render_analysis,
        validate_chrome_trace,
    )

    try:
        trace = load_chrome_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"repro analyze: error: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(trace)
    if problems:
        for p in problems:
            print(f"analyze: {p}", file=sys.stderr)
        print(f"analyze: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    report = analyze_trace(TraceData.from_chrome_trace(trace))
    if args.as_json:
        import json as _json

        print(_json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print(
            render_analysis(report, top=args.top, what_if=args.what_if),
            file=out,
        )
    return 0


def _cmd_check(args, out) -> int:
    import json as _json

    from .check import findings_to_json, lint_paths, render_findings

    paths = args.paths
    if not paths:
        # default: lint the installed repro package itself
        import repro

        paths = [repro.__path__[0]]
    deep_report = None
    try:
        findings = lint_paths(paths)
        if args.deep or args.mc:
            from .check.deep import DeepCheckCache, deep_analyze_paths

            cache = None if args.no_cache else DeepCheckCache()
            deep_report = deep_analyze_paths(
                paths, deep=args.deep, mc=args.mc, cache=cache
            )
            findings.extend(deep_report.findings)
            if deep_report.cache_note:
                # stderr only: stdout must stay byte-stable for CI diffs
                print(f"repro check: {deep_report.cache_note}",
                      file=sys.stderr)
    except OSError as exc:
        print(f"repro check: error: {exc}", file=sys.stderr)
        return 2

    if args.trace_out and deep_report is not None:
        from .check.deep.schedules import (
            dump_trace,
            schedule_trace_to_tracer,
        )
        from .obs.chrome_trace import export_chrome_trace

        try:
            os.makedirs(args.trace_out, exist_ok=True)
            written = 0
            for cert in deep_report.schedule_certificates:
                ce = cert.counterexample
                if not ce:
                    continue
                stem = os.path.join(args.trace_out, cert.primitive)
                with open(stem + ".schedule.json", "w",
                          encoding="utf-8") as fh:
                    fh.write(dump_trace(ce))
                tracer = schedule_trace_to_tracer(
                    ce["divergent"],
                    divergent_step=ce.get("first_divergent_step"),
                )
                export_chrome_trace(tracer, stem + ".trace.json")
                written += 1
        except OSError as exc:
            print(f"repro check: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro check: wrote {written} counterexample trace"
            f"{'s' if written != 1 else ''} to {args.trace_out}",
            file=out,
        )
    # stable order for CI diffs, across files and tiers
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    suppressed = []
    if args.baseline:
        from .check.deep import load_baseline, split_baselined

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro check: error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = split_baselined(findings, baseline)
    if args.write_baseline:
        from .check.deep import write_baseline

        try:
            n = write_baseline(args.write_baseline, findings)
        except OSError as exc:
            print(f"repro check: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro check: wrote {n} suppression"
            f"{'s' if n != 1 else ''} to {args.write_baseline}",
            file=out,
        )
        return 0

    if args.sarif is not None:
        from .check.deep import DEEP_RULES, findings_to_sarif
        from .check.rules import default_rules

        rules = {
            r.rule_id: (r.name, r.description) for r in default_rules()
        }
        rules.update(DEEP_RULES)
        sarif = findings_to_sarif(findings, rules=rules)
        if args.sarif == "-":
            print(sarif, file=out)
            return 1 if findings else 0
        try:
            with open(args.sarif, "w", encoding="utf-8") as fh:
                fh.write(sarif + "\n")
        except OSError as exc:
            print(f"repro check: error: {exc}", file=sys.stderr)
            return 2

    if args.as_json:
        doc = _json.loads(findings_to_json(findings))
        if deep_report is not None:
            if args.deep:
                doc["certificates"] = [
                    c.to_dict() for c in deep_report.certificates
                ]
            if args.mc:
                doc["schedule_certificates"] = [
                    c.to_dict()
                    for c in deep_report.schedule_certificates
                ]
            if deep_report.barrier is not None:
                doc["barrier"] = deep_report.barrier.to_dict()
        if suppressed:
            doc["suppressed"] = len(suppressed)
        print(_json.dumps(doc, indent=2, sort_keys=True), file=out)
    else:
        print(render_findings(findings), file=out)
        if deep_report is not None:
            if args.deep:
                print(deep_report.render_certificates(), file=out)
            if args.mc:
                print(deep_report.render_schedule_certificates(),
                      file=out)
            if deep_report.barrier is not None:
                print(deep_report.barrier.describe(), file=out)
        if suppressed:
            print(
                f"repro check: {len(suppressed)} baselined finding"
                f"{'s' if len(suppressed) != 1 else ''} suppressed",
                file=out,
            )
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    from .errors import ReproError

    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets(out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "partition":
            return _cmd_partition(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "chaos":
            return _cmd_chaos(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "analyze":
            return _cmd_analyze(args, out)
        if args.command == "check":
            return _cmd_check(args, out)
    except ReproError as exc:
        # one-line structured diagnosis: the exception's str() already
        # appends [gpu=... iteration=... site=...] when known
        print(f"repro {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
