"""Biased random partitioner.

"Biased random (like random, but biased toward assigning a vertex to a GPU
that contains more of its neighbors) ... tries to reduce the border size
without affecting the load balancing too much" (Section V-C).

Vertices are visited in random order; each draws its GPU from a
distribution that mixes uniform randomness with the already-assigned
neighbor histogram, subject to a soft balance cap.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from .base import Partitioner

__all__ = ["BiasedRandomPartitioner"]


class BiasedRandomPartitioner(Partitioner):
    """Neighbor-majority-biased random assignment with balance cap.

    Parameters
    ----------
    bias:
        Weight of the neighbor histogram vs. the uniform component
        (0 = pure random, 1 = always follow assigned neighbors).
    imbalance:
        Soft cap: a GPU stops receiving vertices once it holds more than
        ``imbalance * |V| / n`` of them.
    """

    name = "biased-random"

    def __init__(self, seed: int = 0, bias: float = 0.8, imbalance: float = 1.05):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1")
        self.seed = seed
        self.bias = bias
        self.imbalance = imbalance

    def assign(self, graph: CsrGraph, num_gpus: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n = graph.num_vertices
        assignment = np.full(n, -1, dtype=np.int32)
        counts = np.zeros(num_gpus, dtype=np.int64)
        cap = int(np.ceil(self.imbalance * n / num_gpus))
        order = rng.permutation(n)
        offsets = graph.row_offsets.astype(np.int64)
        cols = graph.col_indices
        uniform = np.full(num_gpus, 1.0 / num_gpus)
        draws = rng.random(n)
        use_bias = rng.random(n) < self.bias
        for v in order:
            nbrs = cols[offsets[v] : offsets[v + 1]]
            p = None
            if use_bias[v] and nbrs.size:
                assigned = assignment[nbrs]
                assigned = assigned[assigned >= 0]
                if assigned.size:
                    hist = np.bincount(assigned, minlength=num_gpus).astype(float)
                    p = hist / hist.sum()
            if p is None:
                p = uniform
            # soft balance: zero out full GPUs, renormalize
            open_mask = counts < cap
            p = p * open_mask
            total = p.sum()
            if total <= 0:
                p = uniform * open_mask
                total = p.sum()
            p = p / total
            g = int(np.searchsorted(np.cumsum(p), draws[v], side="right"))
            g = min(g, num_gpus - 1)
            assignment[v] = g
            counts[g] += 1
        return assignment
