"""Multilevel edge-cut partitioner (Metis stand-in).

The paper compares against Metis [Karypis & Kumar 1998]; without the
library available we implement the same algorithmic skeleton from scratch:

1. **Coarsening** by heavy-edge matching until the graph is small;
2. **Initial partitioning** of the coarsest graph by greedy graph growing
   (balanced BFS regions);
3. **Uncoarsening** with greedy boundary refinement (Kernighan-Lin-style
   positive-gain moves under a balance constraint).

Like Metis, it minimizes *edge cut* — which Section V-C argues is the
wrong objective for this system (border vertex count is what matters) —
so it reproduces the paper's finding that Metis "only wins in a few
situations, with small margins, but takes a much longer time to
partition" (Fig. 2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.csr import CsrGraph
from .base import Partitioner

__all__ = ["MetisLikePartitioner"]


def _to_weighted_adj(graph: CsrGraph) -> sp.csr_matrix:
    """Adjacency matrix with unit edge weights, symmetrized, no diagonal."""
    n = graph.num_vertices
    indptr = graph.row_offsets.astype(np.int64)
    indices = graph.col_indices.astype(np.int64)
    data = np.ones(indices.size, dtype=np.float64)
    a = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    a = a + a.T  # symmetrize; duplicate edges merge with summed weight
    a.setdiag(0)
    a.eliminate_zeros()
    return a.tocsr()


def _heavy_edge_matching(
    adj: sp.csr_matrix, rng: np.random.Generator
) -> np.ndarray:
    """Return ``match[v]`` = partner of v (or v itself if unmatched)."""
    n = adj.shape[0]
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for v in order:
        if match[v] >= 0:
            continue
        best, best_w = -1, -1.0
        for idx in range(indptr[v], indptr[v + 1]):
            u = indices[idx]
            if match[u] < 0 and u != v and data[idx] > best_w:
                best, best_w = u, data[idx]
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return match


def _coarsen(
    adj: sp.csr_matrix, vwgt: np.ndarray, match: np.ndarray
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Contract matched pairs; returns (coarse adj, coarse vwgt, mapping)."""
    n = adj.shape[0]
    # canonical representative = min(v, match[v]); number them contiguously
    rep = np.minimum(np.arange(n), match)
    uniq, mapping = np.unique(rep, return_inverse=True)
    nc = uniq.size
    proj = sp.csr_matrix(
        (np.ones(n), (np.arange(n), mapping)), shape=(n, nc)
    )
    coarse = (proj.T @ adj @ proj).tocsr()
    coarse.setdiag(0)
    coarse.eliminate_zeros()
    coarse_vwgt = np.asarray(proj.T @ vwgt).ravel()
    return coarse, coarse_vwgt, mapping


def _greedy_grow(
    adj: sp.csr_matrix, vwgt: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Initial partition by balanced region growing on the coarsest graph."""
    n = adj.shape[0]
    target = vwgt.sum() / k
    part = np.full(n, -1, dtype=np.int32)
    indptr, indices = adj.indptr, adj.indices
    unassigned = set(range(n))
    for p in range(k - 1):
        # seed: random unassigned vertex
        seed = int(rng.choice(np.fromiter(unassigned, dtype=np.int64)))
        frontier = [seed]
        weight = 0.0
        while frontier and weight < target:
            v = frontier.pop()
            if part[v] >= 0:
                continue
            part[v] = p
            weight += vwgt[v]
            unassigned.discard(v)
            for idx in range(indptr[v], indptr[v + 1]):
                u = indices[idx]
                if part[u] < 0:
                    frontier.append(u)
        if not unassigned:
            break
        # region ran out of frontier before reaching target: top up randomly
        while weight < target and unassigned:
            v = unassigned.pop()
            part[v] = p
            weight += vwgt[v]
    for v in list(unassigned):
        part[v] = k - 1
    part[part < 0] = k - 1
    return part


def _refine(
    adj: sp.csr_matrix,
    vwgt: np.ndarray,
    part: np.ndarray,
    k: int,
    imbalance: float,
    passes: int,
) -> np.ndarray:
    """Greedy positive-gain boundary moves under a balance constraint."""
    n = adj.shape[0]
    part = part.copy()
    cap = imbalance * vwgt.sum() / k
    for _ in range(passes):
        onehot = sp.csr_matrix(
            (np.ones(n), (np.arange(n), part)), shape=(n, k)
        )
        conn = np.asarray((adj @ onehot).todense())  # n x k edge weight to each part
        internal = conn[np.arange(n), part]
        best_part = np.argmax(conn, axis=1)
        gain = conn[np.arange(n), best_part] - internal
        movers = np.flatnonzero((gain > 0) & (best_part != part))
        if movers.size == 0:
            break
        weights = np.bincount(part, weights=vwgt, minlength=k)
        moved = 0
        # move in descending gain order; conn is stale after moves but a
        # pass-based KL heuristic tolerates that (next pass re-evaluates)
        for v in movers[np.argsort(-gain[movers])]:
            tgt = best_part[v]
            if weights[tgt] + vwgt[v] > cap:
                continue
            weights[part[v]] -= vwgt[v]
            weights[tgt] += vwgt[v]
            part[v] = tgt
            moved += 1
        if moved == 0:
            break
    return part


class MetisLikePartitioner(Partitioner):
    """Multilevel edge-cut minimizing partitioner.

    Parameters
    ----------
    seed:
        RNG seed (matching/growing are randomized).
    coarsen_to:
        Stop coarsening once the graph has at most ``coarsen_to * k``
        vertices.
    imbalance:
        Allowed load imbalance factor (Metis default is 1.03; we are
        slightly looser because the refinement is simpler).
    refine_passes:
        Boundary-refinement passes per uncoarsening level.
    """

    name = "metis"

    def __init__(
        self,
        seed: int = 0,
        coarsen_to: int = 64,
        imbalance: float = 1.06,
        refine_passes: int = 4,
    ):
        self.seed = seed
        self.coarsen_to = coarsen_to
        self.imbalance = imbalance
        self.refine_passes = refine_passes

    def assign(self, graph: CsrGraph, num_gpus: int) -> np.ndarray:
        k = num_gpus
        rng = np.random.default_rng(self.seed)
        adj = _to_weighted_adj(graph)
        vwgt = np.ones(graph.num_vertices, dtype=np.float64)

        levels: List[Tuple[sp.csr_matrix, np.ndarray, np.ndarray]] = []
        cur_adj, cur_vwgt = adj, vwgt
        while cur_adj.shape[0] > max(self.coarsen_to * k, 32):
            match = _heavy_edge_matching(cur_adj, rng)
            coarse, coarse_vwgt, mapping = _coarsen(cur_adj, cur_vwgt, match)
            if coarse.shape[0] >= cur_adj.shape[0] * 0.95:
                break  # matching stalled (e.g. star graphs); stop coarsening
            levels.append((cur_adj, cur_vwgt, mapping))
            cur_adj, cur_vwgt = coarse, coarse_vwgt

        part = _greedy_grow(cur_adj, cur_vwgt, k, rng)
        part = _refine(
            cur_adj, cur_vwgt, part, k, self.imbalance, self.refine_passes
        )
        for fine_adj, fine_vwgt, mapping in reversed(levels):
            part = part[mapping]
            part = _refine(
                fine_adj, fine_vwgt, part, k, self.imbalance, self.refine_passes
            )
        return part.astype(np.int32)
