"""Partitioner interface and partition result tables.

The paper's framework "partitions the graph and its associated data,
reordering or relabeling if necessary" (Section III-B) and exposes a
modular partitioner interface (Section V-C): any assignment of vertices to
GPUs is acceptable; vertices travel with their outgoing edges (edge-cut
partitioning, Section III-C).

A :class:`PartitionResult` is exactly the paper's pair of tables
(Appendix A): ``partition_table[v]`` = host GPU of global vertex ``v``,
``conversion_table[v]`` = v's vertex ID on its host GPU.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CsrGraph

__all__ = ["PartitionResult", "Partitioner", "reassign_onto_survivors"]


@dataclass
class PartitionResult:
    """Vertex-to-GPU assignment plus derived tables.

    Attributes
    ----------
    num_gpus:
        Number of partitions.
    partition_table:
        ``partition_table[v]`` is the GPU hosting global vertex ``v``.
    conversion_table:
        ``conversion_table[v]`` is the local index of ``v`` among the
        vertices hosted by its GPU (contiguous per GPU, in global-ID
        order).
    """

    num_gpus: int
    partition_table: np.ndarray
    conversion_table: np.ndarray

    @classmethod
    def from_assignment(cls, assignment: np.ndarray, num_gpus: int) -> "PartitionResult":
        """Build the tables from a raw vertex->GPU array."""
        assignment = np.asarray(assignment)
        if assignment.ndim != 1:
            raise PartitionError("assignment must be 1-D")
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= num_gpus
        ):
            raise PartitionError(
                f"assignment values must lie in [0, {num_gpus})"
            )
        conversion = np.zeros(assignment.size, dtype=np.int64)
        for g in range(num_gpus):
            mask = assignment == g
            conversion[mask] = np.arange(int(mask.sum()))
        return cls(
            num_gpus=num_gpus,
            partition_table=assignment.astype(np.int32),
            conversion_table=conversion,
        )

    @property
    def num_vertices(self) -> int:
        return int(self.partition_table.size)

    def hosted_by(self, gpu: int) -> np.ndarray:
        """Global IDs of the vertices hosted by ``gpu`` (L_i), sorted."""
        return np.flatnonzero(self.partition_table == gpu)

    def counts(self) -> np.ndarray:
        """Vertices hosted per GPU (load balance check)."""
        return np.bincount(self.partition_table, minlength=self.num_gpus)

    def validate(self) -> None:
        if self.conversion_table.shape != self.partition_table.shape:
            raise PartitionError("table shapes differ")
        for g in range(self.num_gpus):
            conv = self.conversion_table[self.partition_table == g]
            if conv.size and (
                np.unique(conv).size != conv.size
                or conv.min() != 0
                or conv.max() != conv.size - 1
            ):
                raise PartitionError(
                    f"conversion table for GPU {g} is not a bijection onto "
                    f"[0, {conv.size})"
                )


class Partitioner(ABC):
    """Strategy object assigning vertices to GPUs.

    Subclasses implement :meth:`assign`; the framework calls
    :meth:`partition` which wraps the assignment in a
    :class:`PartitionResult`.  The paper keeps this modular because no
    partitioner was a clear winner (Section V-C, Fig. 2).
    """

    name: str = "base"

    @abstractmethod
    def assign(self, graph: CsrGraph, num_gpus: int) -> np.ndarray:
        """Return an array of length |V| with values in [0, num_gpus)."""

    def partition(self, graph: CsrGraph, num_gpus: int) -> PartitionResult:
        if num_gpus < 1:
            raise PartitionError("num_gpus must be positive")
        if num_gpus == 1:
            assignment = np.zeros(graph.num_vertices, dtype=np.int32)
        else:
            assignment = self.assign(graph, num_gpus)
        result = PartitionResult.from_assignment(assignment, num_gpus)
        return result


def partitioner_registry() -> List[str]:
    """Names of the built-in partitioners (for CLI/bench sweeps)."""
    return ["random", "biased-random", "metis"]


def reassign_onto_survivors(
    partition_table: np.ndarray, lost_gpus, num_gpus: int
) -> np.ndarray:
    """Deal a lost GPU's vertices round-robin onto the survivors.

    Degraded-mode recovery keeps every surviving GPU's assignment intact
    (their subgraphs and frontiers stay meaningful) and spreads only the
    orphaned vertices, preserving balance to within one vertex per
    survivor.  Deterministic: orphans are dealt in global-ID order.
    """
    lost = {int(g) for g in lost_gpus}
    survivors = np.array(
        [g for g in range(num_gpus) if g not in lost], dtype=np.int32
    )
    if survivors.size == 0:
        raise PartitionError("no surviving GPUs to reassign onto")
    assignment = np.asarray(partition_table).astype(np.int32).copy()
    orphans = np.flatnonzero(np.isin(assignment, list(lost)))
    assignment[orphans] = survivors[
        np.arange(orphans.size, dtype=np.int64) % survivors.size
    ]
    return assignment
