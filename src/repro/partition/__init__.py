"""Graph partitioning: partitioners, borders, vertex duplication."""

from .base import PartitionResult, Partitioner, reassign_onto_survivors
from .biased_random import BiasedRandomPartitioner
from .border import BorderStats, border_matrix, border_stats, edge_cut
from .duplication import (
    DUPLICATE_1HOP,
    DUPLICATE_ALL,
    SubGraph,
    build_subgraphs,
)
from .metis_like import MetisLikePartitioner
from .random_part import RandomPartitioner

__all__ = [
    "Partitioner",
    "PartitionResult",
    "reassign_onto_survivors",
    "RandomPartitioner",
    "BiasedRandomPartitioner",
    "MetisLikePartitioner",
    "make_partitioner",
    "edge_cut",
    "border_matrix",
    "border_stats",
    "BorderStats",
    "SubGraph",
    "build_subgraphs",
    "DUPLICATE_ALL",
    "DUPLICATE_1HOP",
]


def make_partitioner(name: str, seed: int = 0) -> Partitioner:
    """Factory used by benches and the CLI: name in Fig. 2's legend."""
    if name == "random":
        return RandomPartitioner(seed=seed)
    if name in ("biased-random", "biasrandom", "biased_random"):
        return BiasedRandomPartitioner(seed=seed)
    if name == "metis":
        return MetisLikePartitioner(seed=seed)
    raise ValueError(f"unknown partitioner {name!r}")
