"""Vertex duplication: building per-GPU subgraphs.

Section III-C: vertices are distributed to GPUs together with their
outgoing edges; remote vertices referenced by those edges are duplicated
locally as *proxies* so that per-GPU computation touches only local data.
Two strategies:

* **duplicate-1-hop** — proxies only for the immediate remote neighbors;
  vertices renumbered with continuous local IDs (hosted vertices first,
  then proxies).  Less memory, but communication needs ID conversion.
* **duplicate-all** — every vertex of V exists on every GPU (remote ones
  with zero out-edges); IDs stay global, no conversion needed, more
  memory.  Required by primitives that look beyond one hop or traverse
  backward (DOBFS, CC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CsrGraph
from .base import PartitionResult

__all__ = ["SubGraph", "build_subgraphs", "DUPLICATE_ALL", "DUPLICATE_1HOP"]

DUPLICATE_ALL = "duplicate-all"
DUPLICATE_1HOP = "duplicate-1-hop"


@dataclass
class SubGraph:
    """The portion of the graph owned by one GPU, in local index space.

    Attributes
    ----------
    gpu_id:
        Owning GPU.
    csr:
        Local CSR over the GPU's vertex set V_i (hosted + proxies).
        Proxy vertices have zero out-edges.
    num_hosted:
        |L_i| — vertices this GPU is responsible for.
    local_to_global:
        Global ID of each local vertex (length |V_i|).
    host_of_local:
        Hosting GPU of each local vertex (length |V_i|).
    host_local_id:
        For each local vertex, its vertex ID *on its hosting GPU* — what
        must be placed in an outgoing message.  For duplicate-all this is
        the identity (global IDs are universal).
    strategy:
        Which duplication strategy built this subgraph.
    """

    gpu_id: int
    csr: CsrGraph
    num_hosted: int
    local_to_global: np.ndarray
    host_of_local: np.ndarray
    host_local_id: np.ndarray
    strategy: str

    @property
    def num_vertices(self) -> int:
        """|V_i|: hosted plus proxy vertices."""
        return self.csr.num_vertices

    @property
    def num_edges(self) -> int:
        """|E_i|."""
        return self.csr.num_edges

    def is_hosted(self, local_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of these local vertices does this GPU host?"""
        return self.host_of_local[local_ids] == self.gpu_id

    def hosted_mask(self) -> np.ndarray:
        return self.host_of_local == self.gpu_id

    def memory_bytes(self) -> int:
        """Logical bytes of the subgraph structure on the device."""
        total = self.csr.memory_bytes()
        total += self.local_to_global.nbytes
        total += self.host_of_local.nbytes
        return int(total)


def _subgraph_duplicate_all(
    graph: CsrGraph, part: PartitionResult, gpu: int
) -> SubGraph:
    """Every global vertex exists locally; only hosted rows keep edges."""
    pt = part.partition_table
    hosted = pt == gpu
    deg = np.diff(graph.row_offsets).astype(np.int64)
    local_deg = np.where(hosted, deg, 0)
    row_offsets = np.zeros(graph.num_vertices + 1, dtype=graph.ids.size_dtype)
    np.cumsum(local_deg, out=row_offsets[1:])
    # gather the hosted rows' column slices
    keep = np.repeat(hosted, deg)
    cols = graph.col_indices[keep]
    values = None if graph.values is None else graph.values[keep]
    csr = CsrGraph(
        graph.num_vertices, row_offsets, cols, values,
        ids=graph.ids, directed=graph.directed,
    )
    n = graph.num_vertices
    ident = np.arange(n, dtype=np.int64)
    return SubGraph(
        gpu_id=gpu,
        csr=csr,
        num_hosted=int(hosted.sum()),
        local_to_global=ident,
        host_of_local=pt.astype(np.int32),
        host_local_id=ident,
        strategy=DUPLICATE_ALL,
    )


def _subgraph_duplicate_1hop(
    graph: CsrGraph, part: PartitionResult, gpu: int
) -> SubGraph:
    """Hosted vertices renumbered [0, |L_i|), proxies [|L_i|, |V_i|)."""
    pt = part.partition_table
    hosted_globals = part.hosted_by(gpu)  # sorted global ids
    num_hosted = hosted_globals.size
    deg = np.diff(graph.row_offsets).astype(np.int64)
    hdeg = deg[hosted_globals]
    # gather this GPU's edges (outgoing edges of hosted vertices)
    keep = np.repeat(pt == gpu, deg)
    dst_global = graph.col_indices[keep].astype(np.int64)
    values = None if graph.values is None else graph.values[keep]
    # proxies: distinct remote destinations, by ascending global id
    remote = np.unique(dst_global[pt[dst_global] != gpu])
    l2g = np.concatenate([hosted_globals, remote])
    # map destination globals to local ids: hosted via conversion table,
    # remote via searchsorted into the sorted proxy list
    dst_is_local = pt[dst_global] == gpu
    dst_local = np.empty(dst_global.size, dtype=np.int64)
    dst_local[dst_is_local] = part.conversion_table[dst_global[dst_is_local]]
    dst_local[~dst_is_local] = num_hosted + np.searchsorted(
        remote, dst_global[~dst_is_local]
    )
    num_local_vertices = l2g.size
    row_offsets = np.zeros(num_local_vertices + 1, dtype=graph.ids.size_dtype)
    np.cumsum(
        np.concatenate([hdeg, np.zeros(remote.size, dtype=np.int64)]),
        out=row_offsets[1:],
    )
    csr = CsrGraph(
        num_local_vertices,
        row_offsets,
        dst_local.astype(graph.ids.vertex_dtype),
        values,
        ids=graph.ids,
        directed=graph.directed,
    )
    host_of_local = np.concatenate(
        [np.full(num_hosted, gpu, dtype=np.int32), pt[remote].astype(np.int32)]
    )
    # ID each local vertex carries on its host GPU: the conversion table
    host_local_id = part.conversion_table[l2g].astype(np.int64)
    return SubGraph(
        gpu_id=gpu,
        csr=csr,
        num_hosted=num_hosted,
        local_to_global=l2g,
        host_of_local=host_of_local,
        host_local_id=host_local_id,
        strategy=DUPLICATE_1HOP,
    )


def build_subgraphs(
    graph: CsrGraph,
    part: PartitionResult,
    strategy: str = DUPLICATE_ALL,
) -> List[SubGraph]:
    """Build every GPU's subgraph under the chosen duplication strategy.

    A single-GPU partition returns one trivially-complete subgraph so
    primitives can run the same code path for n = 1.
    """
    if strategy not in (DUPLICATE_ALL, DUPLICATE_1HOP):
        raise PartitionError(f"unknown duplication strategy: {strategy!r}")
    if part.num_vertices != graph.num_vertices:
        raise PartitionError(
            "partition table size does not match the graph"
        )
    builder = (
        _subgraph_duplicate_all
        if strategy == DUPLICATE_ALL
        else _subgraph_duplicate_1hop
    )
    return [builder(graph, part, g) for g in range(part.num_gpus)]
