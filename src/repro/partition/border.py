"""Partition border and edge-cut statistics.

Section V-C's key claim: for this system the figure of merit of a
partition is not the classical *edge cut* but the *border size* |B_i| —
the number of distinct remote vertices a GPU must send updates to —
because "multiple cut edges from the same GPU that point to the same
remote vertex only need to transmit one set of values regarding that
vertex."

``B_{i,j}`` = { v : host(v) = j and some u hosted on i has edge u->v }.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CsrGraph
from .base import PartitionResult

__all__ = ["BorderStats", "edge_cut", "border_matrix", "border_stats"]


def _src_array(graph: CsrGraph) -> np.ndarray:
    return np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.row_offsets).astype(np.int64),
    )


def edge_cut(graph: CsrGraph, part: PartitionResult) -> int:
    """Number of edges whose endpoints live on different GPUs.

    For undirected graphs both directions are stored, so a cut undirected
    edge counts twice — consistent with how partitioners see the CSR.
    """
    pt = part.partition_table
    src = _src_array(graph)
    return int(np.count_nonzero(pt[src] != pt[graph.col_indices]))


def border_matrix(graph: CsrGraph, part: PartitionResult) -> np.ndarray:
    """|B_{i,j}| for all ordered GPU pairs, as an (n, n) matrix.

    Entry (i, j) is the number of distinct vertices hosted on GPU j that
    receive at least one edge from a vertex hosted on GPU i.  The diagonal
    is zero.
    """
    n = part.num_gpus
    pt = part.partition_table.astype(np.int64)
    src = _src_array(graph)
    dst = graph.col_indices.astype(np.int64)
    si, dj = pt[src], pt[dst]
    cross = si != dj
    if not np.any(cross):
        return np.zeros((n, n), dtype=np.int64)
    # unique (source GPU, destination vertex) pairs
    key = si[cross] * graph.num_vertices + dst[cross]
    uniq = np.unique(key)
    ui = uniq // graph.num_vertices
    uv = uniq % graph.num_vertices
    uj = pt[uv]
    mat = np.zeros((n, n), dtype=np.int64)
    np.add.at(mat, (ui, uj), 1)
    return mat


@dataclass(frozen=True)
class BorderStats:
    """Summary used by the Fig. 2 partitioner comparison."""

    edge_cut: int
    #: sum_i |B_i| where |B_i| = sum_j |B_{i,j}| ("including duplications")
    total_border: int
    #: max_i |B_i| — the straggler GPU that bounds BSP iteration time
    max_border: int
    #: vertices hosted per GPU (load balance)
    load: np.ndarray

    @property
    def load_imbalance(self) -> float:
        """max load / mean load (1.0 = perfect)."""
        mean = self.load.mean()
        return float(self.load.max() / mean) if mean > 0 else 1.0


def border_stats(graph: CsrGraph, part: PartitionResult) -> BorderStats:
    """Compute all Fig. 2-relevant statistics of a partition."""
    mat = border_matrix(graph, part)
    per_gpu = mat.sum(axis=1)
    return BorderStats(
        edge_cut=edge_cut(graph, part),
        total_border=int(per_gpu.sum()),
        max_border=int(per_gpu.max()) if per_gpu.size else 0,
        load=part.counts(),
    )
