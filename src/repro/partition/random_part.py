"""Random partitioner — the paper's default.

"While the random partitioner captures no graph locality, it does achieve
excellent load balancing, and performs fairly well across our tests. ...
all other experiments in this paper use the random partitioner."
(Section V-C)

We implement balanced random assignment: a random permutation dealt
round-robin, so partition sizes differ by at most one vertex.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CsrGraph
from .base import Partitioner

__all__ = ["RandomPartitioner"]


class RandomPartitioner(Partitioner):
    """Uniform random balanced vertex assignment."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def assign(self, graph: CsrGraph, num_gpus: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n = graph.num_vertices
        perm = rng.permutation(n)
        assignment = np.empty(n, dtype=np.int32)
        # deal the shuffled vertices round-robin => sizes differ by <= 1
        assignment[perm] = np.arange(n, dtype=np.int32) % num_gpus
        return assignment
