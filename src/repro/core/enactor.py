"""The enactor: Gunrock's multi-GPU BSP execution engine.

Runs the loop of Fig. 1: every iteration, each GPU

1. **combines** messages received at the end of the previous iteration
   with local data (the primitive's ``Expand_Incoming``) and merges the
   accepted vertices into its input frontier;
2. runs the **unmodified single-GPU core** (``FullQueue_Core``);
3. **splits** the output frontier into local/remote parts (selective) or
   prepares a broadcast, **packages** remote parts with the
   programmer-specified associated values, and **pushes** them to peers
   on the communication stream;
4. synchronizes at the global **barrier** (with the measured multi-GPU
   latency ``l(n)`` from Section V-B).

Correctness work happens on real arrays; virtual time is charged through
the device kernel model and the interconnect, per the BSP decomposition
``W + H*g + S*l`` the paper analyzes.

The constructor takes an allocation scheme (Fig. 3): it sizes frontier,
intermediate, and communication buffers on each device's memory pool,
grows them (charging reallocation time) when just-enough demands it, and
reports peak memory in the run metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type, Union

import numpy as np

from ..errors import ConvergenceError
from ..sim.machine import Machine
from ..sim.memory import AllocationScheme, PreallocFusion
from ..sim.metrics import IterationRecord, RunMetrics
from .backend import ExecutionBackend, GpuStepEffects, make_backend
from .comm import (
    BROADCAST,
    make_broadcast_messages,
    make_selective_messages,
    split_frontier,
)
from .frontier import Frontier
from .iteration import GpuContext, IterationBase
from .problem import ProblemBase
from .stats import OpStats
from .workspace import Workspace

__all__ = ["Enactor"]


class Enactor:
    """Drives a problem + iteration pair to convergence on a machine.

    Parameters
    ----------
    problem:
        The primitive's partitioned state.
    iteration_cls:
        The primitive's :class:`IterationBase` subclass.
    scheme:
        Memory allocation scheme (default: the paper's choice for
        traversal primitives, preallocation + kernel fusion).
    comm_volume_scale:
        Artificially inflate communicated bytes (Section V-A's H
        sensitivity experiment).  Semantics are unaffected.
    comm_latency_scale:
        Artificially inflate per-message latency (Section V-A).
    overlap_communication:
        Overlap in-flight transfers with the next superstep's computation
        (Gunrock's multi-stream + ``cudaStreamWaitEvent`` design,
        Section III-B): the barrier waits only for compute streams, and
        each receiver blocks on the specific arrival event of the data it
        combines.  Results are unchanged; communication-bound primitives
        (DOBFS) get faster.
    sanitize:
        Opt-in BSP race sanitizer (``repro.check.sanitizer``): wraps the
        problem's slice arrays in shadow memory, attributes every access
        to the executing virtual GPU, and reports contract hazards
        (mid-superstep peer access, non-combinable write-write races) in
        ``self.sanitizer.hazards`` and ``metrics.sanitizer_hazards``.
        Off by default so benchmarks stay unperturbed.
    backend:
        Execution backend dispatching the per-GPU supersteps
        (``repro.core.backend``): ``"serial"`` (default) runs them in
        GPU-index order on the calling thread; ``"threads"`` overlaps
        them on a persistent worker pool.  Results, metrics, virtual
        times, and sanitizer reports are bit-identical across backends —
        every cross-GPU effect is staged per worker and merged in
        GPU-index order at the barrier.
    use_workspace:
        Give each virtual GPU a scratch :class:`Workspace` arena that
        operators reuse across calls instead of allocating fresh
        temporaries.  On by default; the bench harness turns it off to
        measure the allocation-churn baseline.
    """

    def __init__(
        self,
        problem: ProblemBase,
        iteration_cls: Type[IterationBase],
        scheme: Optional[AllocationScheme] = None,
        comm_volume_scale: float = 1.0,
        comm_latency_scale: float = 1.0,
        overlap_communication: bool = False,
        sanitize: bool = False,
        backend: Union[str, ExecutionBackend, None] = "serial",
        use_workspace: bool = True,
    ):
        self.problem = problem
        self.machine: Machine = problem.machine
        self.iteration_cls = iteration_cls
        self.scheme = scheme or PreallocFusion()
        self.comm_volume_scale = comm_volume_scale
        self.comm_latency_scale = comm_latency_scale
        self.overlap_communication = overlap_communication
        self.sanitizer = None
        if sanitize:
            from ..check.sanitizer import BspSanitizer

            self.sanitizer = BspSanitizer(problem)

        n = self.machine.num_gpus
        self.backend = make_backend(backend, num_gpus=n)
        self.workspaces: List[Optional[Workspace]] = [
            Workspace(i) if use_workspace else None for i in range(n)
        ]
        self.frontiers_in: List[Frontier] = []
        self.frontiers_out: List[Frontier] = []
        self._intermediate_names: List[str] = []
        prefix = getattr(problem, "alloc_prefix", problem.name)
        for i in range(n):
            sub = problem.subgraphs[i]
            pool = self.machine.gpus[i].memory
            vb = sub.csr.ids.vertex_bytes
            cap = self.scheme.frontier_capacity(sub.num_vertices, sub.num_edges)
            self.frontiers_in.append(Frontier(f"{prefix}.fin", pool, vb, cap))
            self.frontiers_out.append(Frontier(f"{prefix}.fout", pool, vb, cap))
            icap = (
                self.scheme.intermediate_capacity(sub.num_vertices, sub.num_edges)
                if getattr(problem, "uses_intermediate", True)
                else 0
            )
            iname = f"{prefix}.intermediate"
            if icap > 0:
                pool.alloc(iname, icap * vb)
                self._intermediate_names.append(iname)
            else:
                self._intermediate_names.append("")
            # communication staging buffers (send + receive), O(frontier)
            if n > 1:
                assoc = (
                    1
                    + problem.NUM_VERTEX_ASSOCIATES
                    + problem.NUM_VALUE_ASSOCIATES
                )
                pool.alloc(f"{prefix}.comm", 2 * cap * vb * assoc)

    # ------------------------------------------------------------------
    def _charge(
        self,
        gpu_index: int,
        stats: Sequence[OpStats],
        earliest_start: float = 0.0,
    ) -> float:
        """Charge operator stats on a GPU's compute stream; return seconds."""
        gpu = self.machine.gpus[gpu_index]
        km = self.machine.kernel_model
        total = 0.0
        for s in stats:
            cost = km.kernel_time(
                streaming_bytes=s.streaming_bytes,
                random_bytes=s.random_bytes,
                launches=s.launches,
                atomic_ops=s.atomic_ops,
            )
            gpu.compute.launch(cost.total, earliest_start=earliest_start, label=s.name)
            total += cost.total
        return total

    def _charge_frontier_growth(self, gpu_index: int, grown_items: int, item_bytes: int) -> float:
        """Reallocation cost: cudaMalloc + copy (just-enough's price)."""
        if grown_items <= 0:
            return 0.0
        km = self.machine.kernel_model
        t = km.memcpy_time(grown_items * item_bytes) + 50e-6  # cudaMalloc sync
        self.machine.gpus[gpu_index].compute.launch(t, label="realloc")
        return t

    def _ensure_intermediate(self, gpu_index: int, stats: Sequence[OpStats]) -> None:
        """Size the unfused advance-output buffer (just-enough growth)."""
        name = self._intermediate_names[gpu_index]
        if not name:
            return
        needed = max(
            (s.output_size for s in stats if s.name.startswith("advance")),
            default=0,
        )
        pool = self.machine.gpus[gpu_index].memory
        sub = self.problem.subgraphs[gpu_index]
        vb = sub.csr.ids.vertex_bytes
        current = pool.size_of(name) or 0
        if needed * vb > current:
            if not self.scheme.grows_on_demand:
                # non-growing schemes keep just-enough as a guard
                # (Section VI-B: "to prevent illegal memory access,
                # although this only happens rarely")
                pass
            pool.realloc(name, int(needed * vb * 1.1), preserve=False)
            self._charge_frontier_growth(gpu_index, needed, vb)

    # ------------------------------------------------------------------
    def _gpu_superstep(
        self,
        i: int,
        iteration: int,
        iteration_obj: IterationBase,
        frontier_in: np.ndarray,
        inbox: List[tuple],
    ) -> GpuStepEffects:
        """One GPU's full superstep: combine → core → split/package/push.

        Touches only GPU ``i``'s private state — its streams, memory
        pool, data slice, frontier buffers, and workspace — and *stages*
        every cross-GPU effect (outgoing messages, record entries,
        interconnect traffic) in the returned :class:`GpuStepEffects`.
        That makes it safe for the ``threads`` backend to run n of these
        concurrently; the enactor merges the effects in GPU-index order
        at the barrier, so any execution order yields the serial result.
        """
        machine = self.machine
        problem = self.problem
        n = machine.num_gpus
        gpu = machine.gpus[i]
        sub = problem.subgraphs[i]
        sanitizer = self.sanitizer
        eff = GpuStepEffects(gpu=i)
        ctx = GpuContext(
            gpu=gpu,
            sub=sub,
            slice=problem.data_slices[i],
            kernel_model=machine.kernel_model,
            fused=self.scheme.fused,
            iteration=iteration,
            num_gpus=n,
            workspace=self.workspaces[i],
        )
        if sanitizer is not None:
            sanitizer.begin_gpu(i, iteration)
        compute_seconds = 0.0
        # per-iteration framework overhead (bookkeeping kernels,
        # driver API calls) — the 1-GPU part of Section V-B's l
        gpu.compute.launch(gpu.spec.iteration_overhead, label="framework")
        compute_seconds += gpu.spec.iteration_overhead

        # --- 1. combine incoming messages ----------------------
        extra_parts: List[np.ndarray] = []
        combined_items = 0
        for arrival, msg in inbox:
            verts, stats = iteration_obj.expand_incoming(ctx, msg)
            compute_seconds += self._charge(i, stats, earliest_start=arrival)
            combined_items += msg.num_items
            if verts.size:
                extra_parts.append(np.asarray(verts, dtype=np.int64))
        if inbox:
            eff.comm_compute_items = combined_items
        if not extra_parts:
            frontier = frontier_in
        elif frontier_in.size == 0 and len(extra_parts) == 1:
            # nothing to merge with: adopt the combined part, no copy
            frontier = extra_parts[0]
        else:
            frontier = np.concatenate([frontier_in] + extra_parts)
        eff.frontier_size = int(frontier.size)
        grown = self.frontiers_in[i].set(frontier)
        compute_seconds += self._charge_frontier_growth(
            i, grown, self.frontiers_in[i].item_bytes
        )

        # --- 2. single-GPU core --------------------------------
        out, core_stats = iteration_obj.full_queue_core(ctx, frontier)
        out = np.asarray(out, dtype=np.int64)
        compute_seconds += self._charge(i, core_stats)
        self._ensure_intermediate(i, core_stats)
        eff.edges_visited = sum(s.edges_visited for s in core_stats)
        eff.vertices_processed = sum(s.vertices_processed for s in core_stats)
        grown = self.frontiers_out[i].set(out)
        compute_seconds += self._charge_frontier_growth(
            i, grown, self.frontiers_out[i].item_bytes
        )
        eff.direction = iteration_obj.direction_of(i)

        # --- 3. split / package / push -------------------------
        comm_seconds = 0.0
        if n > 1 and iteration_obj.communicates_this_iteration(iteration):
            va = list(iteration_obj.vertex_associate_arrays(ctx))
            la = list(iteration_obj.value_associate_arrays(ctx))
            if problem.communication == BROADCAST:
                msgs, pstats = make_broadcast_messages(
                    sub, out, n, va, la, ids_bytes=ctx.ids_bytes
                )
                local_part = out
                compute_seconds += self._charge(i, [pstats])
            else:
                local_part, remote, sstats = split_frontier(
                    sub, out, ids_bytes=ctx.ids_bytes
                )
                msgs, pstats = make_selective_messages(
                    sub, remote, va, la, ids_bytes=ctx.ids_bytes
                )
                compute_seconds += self._charge(i, [sstats, pstats])
            send_ready = gpu.compute.record_event()
            # empty sub-frontiers send no payload; the
            # frontier-length handshake is part of the barrier's
            # synchronization latency, not a tracked message
            msgs = [m for m in msgs if m.num_items > 0]
            ids = problem.graph.ids
            for msg in msgs:
                nbytes = int(msg.nbytes(ids) * self.comm_volume_scale)
                dur = machine.interconnect.transfer_cost(
                    i,
                    msg.dst_gpu,
                    nbytes,
                    latency_scale=self.comm_latency_scale,
                )
                ev = gpu.comm.launch(
                    dur,
                    earliest_start=send_ready.timestamp,
                    label=f"send->{msg.dst_gpu}",
                )
                comm_seconds += dur
                eff.sends.append((msg.dst_gpu, ev.timestamp, msg))
                eff.transfer_nbytes.append(nbytes)
                eff.items_sent += msg.num_items
                eff.bytes_sent += nbytes
            eff.frontier = local_part
        else:
            eff.frontier = out

        eff.compute_seconds = compute_seconds
        eff.comm_seconds = comm_seconds
        if sanitizer is not None:
            sanitizer.end_gpu()
        return eff

    # ------------------------------------------------------------------
    def enact(self, **reset_kwargs) -> RunMetrics:
        """Run the primitive to convergence; returns the run's metrics."""
        problem = self.problem
        machine = self.machine
        n = machine.num_gpus
        iteration_obj = self.iteration_cls(problem)
        sanitizer = self.sanitizer
        init_frontiers = problem.reset(**reset_kwargs)
        machine.reset()
        if sanitizer is not None:
            sanitizer.start_run()
        for g in machine.gpus:
            g.memory.reset_peak()

        frontiers: List[np.ndarray] = [
            np.asarray(f, dtype=np.int64) for f in init_frontiers
        ]
        inboxes: List[List[tuple]] = [[] for _ in range(n)]
        metrics = RunMetrics(
            num_gpus=n,
            primitive=problem.name,
            scale=machine.scale,
        )

        iteration = 0
        while True:
            if iteration > iteration_obj.max_iterations():
                raise ConvergenceError(
                    f"{problem.name} did not converge within "
                    f"{iteration_obj.max_iterations()} iterations"
                )
            rec = IterationRecord(iteration)
            iter_start = machine.clock.now
            next_inboxes: List[List[tuple]] = [[] for _ in range(n)]

            step_fns = [
                (
                    lambda idx=i: self._gpu_superstep(
                        idx, iteration, iteration_obj,
                        frontiers[idx], inboxes[idx],
                    )
                )
                for i in range(n)
            ]
            effects = self.backend.map_supersteps(step_fns)

            # merge staged cross-GPU effects in GPU-index order — the
            # exact mutation order of the old serial loop, so records,
            # inbox ordering, and traffic counters are bit-identical no
            # matter where the supersteps actually ran
            for eff in effects:
                i = eff.gpu
                if eff.comm_compute_items is not None:
                    rec.comm_compute_items[i] = eff.comm_compute_items
                rec.frontier_size += eff.frontier_size
                rec.edges_visited[i] = eff.edges_visited
                rec.vertices_processed[i] = eff.vertices_processed
                rec.direction = eff.direction or rec.direction
                if eff.sends:
                    rec.items_sent[i] = eff.items_sent
                    rec.bytes_sent[i] = eff.bytes_sent
                for dst, arrival, msg in eff.sends:
                    next_inboxes[dst].append((arrival, msg))
                for nbytes in eff.transfer_nbytes:
                    machine.interconnect.record_transfer(nbytes)
                frontiers[i] = eff.frontier
                rec.compute_time[i] = eff.compute_seconds
                rec.comm_time[i] = eff.comm_seconds

            inboxes = next_inboxes
            machine.barrier(compute_only=self.overlap_communication)
            if sanitizer is not None:
                sanitizer.on_barrier(iteration)
            rec.duration = machine.clock.now - iter_start
            metrics.iterations.append(rec)
            iteration_obj.on_iteration_end(iteration)

            in_flight = sum(len(box) for box in inboxes)
            if iteration_obj.should_stop(
                iteration, [f.size for f in frontiers], in_flight
            ):
                break
            iteration += 1

        metrics.elapsed = machine.clock.now
        for i in range(n):
            metrics.peak_memory[i] = machine.gpus[i].memory.peak
            metrics.num_reallocs += machine.gpus[i].memory.num_reallocs
        if sanitizer is not None:
            metrics.sanitizer_hazards = sanitizer.report()
        return metrics

    def release(self) -> None:
        """Free the enactor's device buffers (frontiers, comm staging)."""
        self.backend.close()
        n = self.machine.num_gpus
        for i in range(n):
            pool = self.machine.gpus[i].memory
            self.frontiers_in[i].release()
            self.frontiers_out[i].release()
            name = self._intermediate_names[i]
            if name and pool.size_of(name) is not None:
                pool.free(name)
            cname = f"{getattr(self.problem, 'alloc_prefix', self.problem.name)}.comm"
            if pool.size_of(cname) is not None:
                pool.free(cname)
