"""The enactor: Gunrock's multi-GPU BSP execution engine.

Runs the loop of Fig. 1: every iteration, each GPU

1. **combines** messages received at the end of the previous iteration
   with local data (the primitive's ``Expand_Incoming``) and merges the
   accepted vertices into its input frontier;
2. runs the **unmodified single-GPU core** (``FullQueue_Core``);
3. **splits** the output frontier into local/remote parts (selective) or
   prepares a broadcast, **packages** remote parts with the
   programmer-specified associated values, and **pushes** them to peers
   on the communication stream;
4. synchronizes at the global **barrier** (with the measured multi-GPU
   latency ``l(n)`` from Section V-B).

Correctness work happens on real arrays; virtual time is charged through
the device kernel model and the interconnect, per the BSP decomposition
``W + H*g + S*l`` the paper analyzes.

The constructor takes an allocation scheme (Fig. 3): it sizes frontier,
intermediate, and communication buffers on each device's memory pool,
grows them (charging reallocation time) when just-enough demands it, and
reports peak memory in the run metrics.
"""

from __future__ import annotations

import functools
import threading
from typing import List, Optional, Sequence, Type, Union

import numpy as np

from ..errors import (
    CommunicationError,
    ConvergenceError,
    DeviceLostError,
    DeviceMemoryError,
    ReproError,
    SimulationError,
)
from ..obs.recorder import FlightRecorder
from ..obs.tracer import COMM_TRACK, Tracer
from ..partition.base import reassign_onto_survivors
from ..sim.machine import Machine
from ..sim.memory import AllocationScheme, PreallocFusion
from ..sim.metrics import IterationRecord, RunMetrics
from .backend import ExecutionBackend, GpuStepEffects, make_backend
from .checkpoint import (
    RecoveryPolicy,
    capture_checkpoint,
    route_restored_state,
)
from .comm import (
    BROADCAST,
    make_broadcast_messages,
    make_selective_messages,
    split_frontier,
)
from .frontier import Frontier
from .iteration import GpuContext, IterationBase
from .problem import ProblemBase
from .stats import OpStats
from .workspace import Workspace

__all__ = ["Enactor"]


def _dump_on_repro_error(fn):
    """Flight-recorder hook for ``enact``: a framework error escaping
    the run triggers a crash dump before propagating.

    A decorator (rather than code inside ``enact``) so the barrier
    discipline proof (REP113) keeps verifying the dispatch/merge body
    unchanged, and so the recorder can never alter control flow — the
    exception is always re-raised as-is.
    """

    @functools.wraps(fn)
    def wrapper(self, **reset_kwargs):
        try:
            return fn(self, **reset_kwargs)
        except ReproError as exc:
            recorder = self.recorder
            if recorder is not None:
                recorder.dump(
                    "enact-error", error=exc,
                    faults=self.machine.faults,
                )
            raise

    return wrapper


class Enactor:
    """Drives a problem + iteration pair to convergence on a machine.

    Parameters
    ----------
    problem:
        The primitive's partitioned state.
    iteration_cls:
        The primitive's :class:`IterationBase` subclass.
    scheme:
        Memory allocation scheme (default: the paper's choice for
        traversal primitives, preallocation + kernel fusion).
    comm_volume_scale:
        Artificially inflate communicated bytes (Section V-A's H
        sensitivity experiment).  Semantics are unaffected.
    comm_latency_scale:
        Artificially inflate per-message latency (Section V-A).
    overlap_communication:
        Overlap in-flight transfers with the next superstep's computation
        (Gunrock's multi-stream + ``cudaStreamWaitEvent`` design,
        Section III-B): the barrier waits only for compute streams, and
        each receiver blocks on the specific arrival event of the data it
        combines.  Results are unchanged; communication-bound primitives
        (DOBFS) get faster.
    sanitize:
        Opt-in BSP race sanitizer (``repro.check.sanitizer``): wraps the
        problem's slice arrays in shadow memory, attributes every access
        to the executing virtual GPU, and reports contract hazards
        (mid-superstep peer access, non-combinable write-write races) in
        ``self.sanitizer.hazards`` and ``metrics.sanitizer_hazards``.
        Off by default so benchmarks stay unperturbed.
    backend:
        Execution backend dispatching the per-GPU supersteps
        (``repro.core.backend``): ``"serial"`` (default) runs them in
        GPU-index order on the calling thread; ``"threads"`` overlaps
        them on a persistent worker pool.  Results, metrics, virtual
        times, and sanitizer reports are bit-identical across backends —
        every cross-GPU effect is staged per worker and merged in
        GPU-index order at the barrier.
    use_workspace:
        Give each virtual GPU a scratch :class:`Workspace` arena that
        operators reuse across calls instead of allocating fresh
        temporaries.  On by default; the bench harness turns it off to
        measure the allocation-churn baseline.
    checkpoint_every:
        Take a barrier checkpoint every N supersteps (docs/robustness.md).
        ``None`` disables periodic checkpoints; a baseline checkpoint is
        still taken when a fault plan is armed on the machine, so
        permanent-loss recovery always has something to roll back to.
    checkpoint_path:
        When set, every checkpoint is also written to this ``.npz`` path
        (:meth:`repro.core.checkpoint.Checkpoint.save`) for post-mortem
        inspection or cross-process restart.
    recovery:
        :class:`~repro.core.checkpoint.RecoveryPolicy` knobs for retry /
        backoff / rollback limits (default: the documented defaults).
    tracer:
        Opt-in :class:`~repro.obs.tracer.Tracer` (docs/observability.md):
        records per-GPU spans on the virtual and wall clocks plus a
        structured event stream.  A pure observer — traced runs are
        bit-identical (results and metrics) to untraced runs on both
        backends.  ``None`` (the default) costs one pointer check per
        hook site, the ``sim/faults.py`` discipline (lint rule REP109).
    relaxed_barriers:
        Opt in to the (future) relaxed-barrier execution mode (ROADMAP
        item 5).  Gated by a **two-tier certification precondition**
        (docs/static_analysis.md, "relaxed-barrier certificate
        contract"):

        1. every combiner declared for an array actually allocated on
           the data slices must carry a :class:`CombinerCertificate`
           (``repro.check.deep.certify``) proving — by exhaustive
           evaluation, not by trusting the declaration — that its merge
           op is idempotent *and* commutative;
        2. the iteration class must carry a
           :class:`~repro.check.deep.modelcheck.ScheduleCertificate`
           proving — by exhaustive schedule exploration
           (``repro check --mc``) — that the *composition* of its
           effects reaches a unique final state under every relaxed
           interleaving.  Tier 1 certifies each merge in isolation;
           only tier 2 rules out cross-effect divergence like a value
           computed from a partial remote snapshot (SSSP's MIN combiner
           passes tier 1 yet the primitive is relaxed-unsafe).

        Failing either tier raises :class:`SimulationError` at
        construction.  The certificates are kept in
        ``self.combiner_certificates`` / ``self.schedule_certificate``.
        Execution semantics are unchanged today: this lands the safety
        gate before the relaxation itself.
    supervise:
        Enable the real-process supervision layer
        (:mod:`repro.core.supervise`, docs/robustness.md): heartbeats,
        adaptive per-superstep deadlines, shm checksums, and the
        respawn-then-rollback escalation policy for the processes
        backend's worker pool.  Requires ``backend="processes"``;
        incompatible with ``sanitize=True``.
    supervision:
        Optional :class:`~repro.core.supervise.SupervisionConfig`
        overriding the deadline/heartbeat/checksum defaults; implies
        ``supervise=True``.
    flight_recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder` — the
        always-on crash-forensics tier (docs/observability.md).  Keeps
        a bounded ring of recent events/superstep summaries and dumps
        a crash report when the supervisor escalates a worker failure
        or a :class:`~repro.errors.ReproError` escapes ``enact()``.
        Like the tracer it is a pure observer behind a ``recorder is
        None`` fast path; unlike the tracer its memory is O(capacity),
        so production runs can leave it attached (``repro bench``
        gates the overhead at 1.05×).
    """

    def __init__(
        self,
        problem: ProblemBase,
        iteration_cls: Type[IterationBase],
        scheme: Optional[AllocationScheme] = None,
        comm_volume_scale: float = 1.0,
        comm_latency_scale: float = 1.0,
        overlap_communication: bool = False,
        sanitize: bool = False,
        backend: Union[str, ExecutionBackend, None] = "serial",
        use_workspace: bool = True,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer: Optional[Tracer] = None,
        relaxed_barriers: bool = False,
        supervise: bool = False,
        supervision=None,
        flight_recorder: Optional[FlightRecorder] = None,
    ):
        self.problem = problem
        self.machine: Machine = problem.machine
        self.tracer = tracer
        self.recorder = flight_recorder
        if tracer is not None:
            self.machine.attach_tracer(tracer)
        self.iteration_cls = iteration_cls
        self.scheme = scheme or PreallocFusion()
        self.comm_volume_scale = comm_volume_scale
        self.comm_latency_scale = comm_latency_scale
        self.overlap_communication = overlap_communication
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SimulationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}",
                site="enactor.init",
            )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.recovery = recovery or RecoveryPolicy()
        self._last_checkpoint = None
        self.sanitizer = None
        if sanitize:
            from ..check.sanitizer import BspSanitizer

            self.sanitizer = BspSanitizer(problem)

        n = self.machine.num_gpus
        self.backend = make_backend(backend, num_gpus=n)
        if tracer is not None:
            self.backend.tracer = tracer
        if flight_recorder is not None:
            self.backend.recorder = flight_recorder
        self.supervisor = None
        if supervise or supervision is not None:
            from .backend import ProcessesBackend
            from .supervise import WorkerSupervisor

            if not isinstance(self.backend, ProcessesBackend):
                raise SimulationError(
                    "supervise=True requires the processes backend: "
                    "supervision watches real worker processes "
                    f"(got backend={self.backend.name!r})",
                    site="enactor.init",
                )
            if sanitize:
                raise SimulationError(
                    "sanitize=True cannot be combined with supervise="
                    "True: shadow-memory wrappers do not survive a "
                    "shadow restore or worker respawn",
                    site="enactor.init",
                )
            self.supervisor = WorkerSupervisor(supervision)
            self.supervisor.tracer = tracer
            self.supervisor.recorder = flight_recorder
            self.backend.supervisor = self.supervisor
        self.workspaces: List[Optional[Workspace]] = [
            Workspace(i) if use_workspace else None for i in range(n)
        ]
        self.relaxed_barriers = relaxed_barriers
        self.combiner_certificates: dict = {}
        self.schedule_certificate = None
        if relaxed_barriers:
            self._certify_combiners()
            self._certify_schedule()
        self._setup_buffers()
        self.backend.bind(self)

    def _certify_combiners(self) -> None:
        """Relaxed-barrier precondition: every combiner guarding a live
        slice array must be *certified* idempotent + commutative by the
        deep tier's exhaustive evaluation — a declaration alone is never
        enough.  Arrays the problem declares combiners for but does not
        allocate in this configuration (e.g. BFS ``preds`` without
        ``mark_predecessors``) are out of play and not required."""
        from ..check.deep.certify import certify_problem_combiners

        live = list(self.problem.data_slices[0].arrays) if (
            self.problem.data_slices
        ) else None
        self.combiner_certificates = certify_problem_combiners(
            self.problem, arrays=live
        )
        failures = [
            cert for cert in self.combiner_certificates.values()
            if not cert.certified_order_independent
        ]
        if failures:
            detail = "; ".join(
                f"{c.array}: op '{c.op}' is {c.status}"
                + (f" (counterexamples: {sorted(c.counterexamples)})"
                   if c.counterexamples else "")
                for c in failures
            )
            raise SimulationError(
                "relaxed_barriers requires every live combiner to be "
                "certified idempotent and commutative by exhaustive "
                f"evaluation; refused for {detail}",
                site="enactor.certify",
            )

    def _certify_schedule(self) -> None:
        """Relaxed-barrier precondition, tier 2: the iteration class
        must hold a ScheduleCertificate from the superstep interleaving
        model checker proving every relaxed schedule of its effect
        summaries converges.  Combiner algebra alone (tier 1) cannot see
        cross-effect hazards — a MIN-combined array read back into a new
        update diverges under a late straggler merge even though every
        individual merge commutes."""
        from ..check.deep.modelcheck import certify_schedule_for

        cert = certify_schedule_for(self.iteration_cls)
        self.schedule_certificate = cert
        if cert is None:
            raise SimulationError(
                "relaxed_barriers requires a ScheduleCertificate for "
                f"{self.iteration_cls.__name__}, but its module could "
                "not be model-checked (source unavailable or "
                "unparseable); run `repro check --mc` on the primitive",
                site="enactor.certify",
            )
        if not cert.certified_relaxed_safe:
            detail = "; ".join(cert.reasons) or (
                "exploration was %s" % cert.status)
            raise SimulationError(
                "relaxed_barriers requires the schedule exploration to "
                "certify every relaxed interleaving convergent; refused "
                f"for {self.iteration_cls.__name__}: {detail}",
                site="enactor.certify",
            )

    def _setup_buffers(self) -> None:
        """Size frontier/intermediate/comm buffers on every device pool.

        Called at construction and again after a degraded-mode
        repartition; lost GPUs get detached (``pool=None``) frontiers so
        indexing stays uniform without touching dead hardware.
        """
        problem = self.problem
        n = self.machine.num_gpus
        lost = self.machine.lost_gpus
        self.frontiers_in: List[Frontier] = []
        self.frontiers_out: List[Frontier] = []
        self._intermediate_names: List[str] = []
        prefix = getattr(problem, "alloc_prefix", problem.name)
        for i in range(n):
            sub = problem.subgraphs[i]
            pool = None if i in lost else self.machine.gpus[i].memory
            vb = sub.csr.ids.vertex_bytes
            cap = self.scheme.frontier_capacity(sub.num_vertices, sub.num_edges)
            self.frontiers_in.append(Frontier(f"{prefix}.fin", pool, vb, cap))
            self.frontiers_out.append(Frontier(f"{prefix}.fout", pool, vb, cap))
            icap = (
                self.scheme.intermediate_capacity(sub.num_vertices, sub.num_edges)
                if getattr(problem, "uses_intermediate", True)
                else 0
            )
            iname = f"{prefix}.intermediate"
            if icap > 0 and pool is not None:
                pool.alloc(iname, icap * vb)
                self._intermediate_names.append(iname)
            else:
                self._intermediate_names.append("")
            # communication staging buffers (send + receive), O(frontier)
            if n > 1 and pool is not None:
                assoc = (
                    1
                    + problem.NUM_VERTEX_ASSOCIATES
                    + problem.NUM_VALUE_ASSOCIATES
                )
                pool.alloc(f"{prefix}.comm", 2 * cap * vb * assoc)

    # ------------------------------------------------------------------
    def _charge(
        self,
        gpu_index: int,
        stats: Sequence[OpStats],
        earliest_start: float = 0.0,
        scale: float = 1.0,
    ) -> float:
        """Charge operator stats on a GPU's compute stream; return seconds.

        ``scale`` is an injected-straggler slowdown multiplier (1.0 when
        no fault plan is armed).
        """
        gpu = self.machine.gpus[gpu_index]
        km = self.machine.kernel_model
        tracer = self.tracer
        total = 0.0
        for s in stats:
            cost = km.kernel_time(
                streaming_bytes=s.streaming_bytes,
                random_bytes=s.random_bytes,
                launches=s.launches,
                atomic_ops=s.atomic_ops,
            )
            dur = cost.total * scale
            ev = gpu.compute.launch(
                dur, earliest_start=earliest_start, label=s.name
            )
            total += dur
            if tracer is not None:
                tracer.op_span(gpu_index, s, ev.timestamp - dur, dur)
        return total

    def _charge_frontier_growth(self, gpu_index: int, grown_items: int, item_bytes: int) -> float:
        """Reallocation cost: cudaMalloc + copy (just-enough's price)."""
        if grown_items <= 0:
            return 0.0
        km = self.machine.kernel_model
        t = km.memcpy_time(grown_items * item_bytes) + 50e-6  # cudaMalloc sync
        ev = self.machine.gpus[gpu_index].compute.launch(t, label="realloc")
        if self.tracer is not None:
            self.tracer.span(
                "op", "realloc", ev.timestamp - t, t,
                track=gpu_index, items=int(grown_items),
            )
        return t

    def _ensure_intermediate(
        self,
        gpu_index: int,
        stats: Sequence[OpStats],
        eff: Optional[GpuStepEffects] = None,
    ) -> None:
        """Size the unfused advance-output buffer (just-enough growth)."""
        name = self._intermediate_names[gpu_index]
        if not name:
            return
        needed = max(
            (s.output_size for s in stats if s.name.startswith("advance")),
            default=0,
        )
        pool = self.machine.gpus[gpu_index].memory
        sub = self.problem.subgraphs[gpu_index]
        vb = sub.csr.ids.vertex_bytes
        current = pool.size_of(name) or 0
        if needed * vb > current:
            if not self.scheme.grows_on_demand:
                # non-growing schemes keep just-enough as a guard
                # (Section VI-B: "to prevent illegal memory access,
                # although this only happens rarely")
                pass
            try:
                pool.realloc(name, int(needed * vb * 1.1), preserve=False)
            except DeviceMemoryError:
                if (eff is None or self.machine.faults is None
                        or not self.recovery.retry_oom):
                    raise
                # transient allocation failure: retry at exact fit
                pool.realloc(name, max(needed * vb, 1), preserve=False)
                eff.oom_recoveries += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "recovery.oom-regrow",
                        vt=self.machine.gpus[gpu_index].compute.available_at,
                        gpu=gpu_index, buffer=name,
                    )
            self._charge_frontier_growth(gpu_index, needed, vb)

    def _set_frontier(
        self, gpu_index: int, frontier_obj: Frontier,
        data: np.ndarray, eff: GpuStepEffects,
    ) -> int:
        """:meth:`Frontier.set` with injected-OOM recovery.

        A transient allocation failure during frontier growth is consumed
        by the first raise; the recovery regrows the buffer at exact fit
        (no slack — the conservative choice under memory pressure) and
        re-applies the set.  Returns grown slots for cost charging.
        """
        try:
            return frontier_obj.set(data)
        except DeviceMemoryError:
            if self.machine.faults is None or not self.recovery.retry_oom:
                raise
            needed = max(int(np.asarray(data).size), 1)
            grown = max(needed - frontier_obj.capacity, 0)
            if frontier_obj.pool is not None:
                frontier_obj.pool.realloc(
                    frontier_obj.name,
                    needed * frontier_obj.item_bytes,
                    preserve=False,
                )
            frontier_obj.capacity = max(frontier_obj.capacity, needed)
            frontier_obj.grow_events += 1
            frontier_obj.set(data)
            eff.oom_recoveries += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "recovery.oom-regrow",
                    vt=self.machine.gpus[gpu_index].compute.available_at,
                    gpu=gpu_index, buffer=frontier_obj.name,
                )
            return grown

    # ------------------------------------------------------------------
    def _gpu_superstep(
        self,
        i: int,
        iteration: int,
        iteration_obj: IterationBase,
        frontier_in: np.ndarray,
        inbox: List[tuple],
    ) -> GpuStepEffects:
        """One GPU's full superstep: combine → core → split/package/push.

        Touches only GPU ``i``'s private state — its streams, memory
        pool, data slice, frontier buffers, and workspace — and *stages*
        every cross-GPU effect (outgoing messages, record entries,
        interconnect traffic) in the returned :class:`GpuStepEffects`.
        That makes it safe for the ``threads`` backend to run n of these
        concurrently; the enactor merges the effects in GPU-index order
        at the barrier, so any execution order yields the serial result.
        """
        machine = self.machine
        problem = self.problem
        n = machine.num_gpus
        gpu = machine.gpus[i]
        sub = problem.subgraphs[i]
        sanitizer = self.sanitizer
        tracer = self.tracer
        eff = GpuStepEffects(gpu=i)
        ctx = GpuContext(
            gpu=gpu,
            sub=sub,
            slice=problem.data_slices[i],
            kernel_model=machine.kernel_model,
            fused=self.scheme.fused,
            iteration=iteration,
            num_gpus=n,
            workspace=self.workspaces[i],
            tracer=tracer,
        )
        if sanitizer is not None:
            sanitizer.begin_gpu(i, iteration)
        if tracer is not None:
            tracer.begin_gpu(i, iteration)
            _vt0 = gpu.compute.available_at
            _wall0 = tracer.wall()
            tracer.instant(
                "superstep.begin", vt=_vt0, gpu=i, iteration=iteration,
                frontier=int(frontier_in.size),
            )
        inj = machine.faults
        straggle = 1.0
        if inj is not None:
            inj.check_gpu_loss(i, iteration)
            inj.begin_superstep(i, iteration)
            straggle = inj.straggler_factor(i, iteration)
        compute_seconds = 0.0
        # per-iteration framework overhead (bookkeeping kernels,
        # driver API calls) — the 1-GPU part of Section V-B's l
        overhead = gpu.spec.iteration_overhead * straggle
        fev = gpu.compute.launch(overhead, label="framework")
        compute_seconds += overhead
        if tracer is not None:
            tracer.span(
                "op", "framework", fev.timestamp - overhead, overhead,
                track=i,
            )

        # --- 1. combine incoming messages ----------------------
        extra_parts: List[np.ndarray] = []
        combined_items = 0
        for arrival, msg in inbox:
            verts, stats = iteration_obj.expand_incoming(ctx, msg)
            compute_seconds += self._charge(
                i, stats, earliest_start=arrival, scale=straggle
            )
            combined_items += msg.num_items
            if tracer is not None:
                tracer.instant(
                    "comm.combine", vt=arrival, gpu=i, src=msg.src_gpu,
                    items=int(msg.num_items),
                    accepted=int(np.asarray(verts).size),
                )
            if verts.size:
                extra_parts.append(np.asarray(verts, dtype=np.int64))
        if inbox:
            eff.comm_compute_items = combined_items
        if not extra_parts:
            frontier = frontier_in
        elif frontier_in.size == 0 and len(extra_parts) == 1:
            # nothing to merge with: adopt the combined part, no copy
            frontier = extra_parts[0]
        else:
            frontier = np.concatenate([frontier_in] + extra_parts)
        eff.frontier_size = int(frontier.size)
        if inj is None:
            grown = self.frontiers_in[i].set(frontier)
        else:
            grown = self._set_frontier(i, self.frontiers_in[i], frontier, eff)
        compute_seconds += self._charge_frontier_growth(
            i, grown, self.frontiers_in[i].item_bytes
        )

        # --- 2. single-GPU core --------------------------------
        out, core_stats = iteration_obj.full_queue_core(ctx, frontier)
        out = np.asarray(out, dtype=np.int64)
        compute_seconds += self._charge(i, core_stats, scale=straggle)
        self._ensure_intermediate(i, core_stats, eff)
        eff.edges_visited = sum(s.edges_visited for s in core_stats)
        eff.vertices_processed = sum(s.vertices_processed for s in core_stats)
        if inj is None:
            grown = self.frontiers_out[i].set(out)
        else:
            grown = self._set_frontier(i, self.frontiers_out[i], out, eff)
        compute_seconds += self._charge_frontier_growth(
            i, grown, self.frontiers_out[i].item_bytes
        )
        eff.direction = iteration_obj.direction_of(i)

        # --- 3. split / package / push -------------------------
        comm_seconds = 0.0
        if n > 1 and iteration_obj.communicates_this_iteration(iteration):
            va = list(iteration_obj.vertex_associate_arrays(ctx))
            la = list(iteration_obj.value_associate_arrays(ctx))
            if problem.communication == BROADCAST:
                msgs, pstats = make_broadcast_messages(
                    sub, out, n, va, la, ids_bytes=ctx.ids_bytes,
                    skip=machine.lost_gpus, tracer=tracer,
                )
                local_part = out
                compute_seconds += self._charge(i, [pstats], scale=straggle)
            else:
                local_part, remote, sstats = split_frontier(
                    sub, out, ids_bytes=ctx.ids_bytes, tracer=tracer
                )
                msgs, pstats = make_selective_messages(
                    sub, remote, va, la, ids_bytes=ctx.ids_bytes,
                    tracer=tracer,
                )
                compute_seconds += self._charge(
                    i, [sstats, pstats], scale=straggle
                )
            send_ready = gpu.compute.record_event()
            # empty sub-frontiers send no payload; the
            # frontier-length handshake is part of the barrier's
            # synchronization latency, not a tracked message
            msgs = [
                m for m in msgs
                if m.num_items > 0 and m.dst_gpu not in machine.lost_gpus
            ]
            ids = problem.graph.ids
            for msg in msgs:
                nbytes = int(msg.nbytes(ids) * self.comm_volume_scale)
                start_at = send_ready.timestamp
                if inj is None:
                    dur = machine.interconnect.transfer_cost(
                        i,
                        msg.dst_gpu,
                        nbytes,
                        latency_scale=self.comm_latency_scale,
                    )
                else:
                    attempt = 0
                    while True:
                        try:
                            dur = machine.interconnect.transfer_cost(
                                i,
                                msg.dst_gpu,
                                nbytes,
                                latency_scale=self.comm_latency_scale,
                                iteration=iteration,
                            )
                            break
                        except CommunicationError:
                            # transient link failure: back off (charged on
                            # the comm stream) and retry, up to the
                            # policy's cap
                            attempt += 1
                            if attempt > self.recovery.max_comm_retries:
                                raise
                            backoff = min(
                                self.recovery.comm_backoff_base
                                * (2 ** (attempt - 1)),
                                self.recovery.comm_backoff_cap,
                            )
                            bev = gpu.comm.launch(
                                backoff,
                                earliest_start=start_at,
                                label=f"retry->{msg.dst_gpu}",
                            )
                            start_at = bev.timestamp
                            comm_seconds += backoff
                            eff.comm_retries += 1
                            eff.retry_seconds += backoff
                            if tracer is not None:
                                tracer.instant(
                                    "recovery.retry", vt=bev.timestamp,
                                    gpu=i, dst=msg.dst_gpu,
                                    attempt=attempt, backoff=backoff,
                                )
                ev = gpu.comm.launch(
                    dur,
                    earliest_start=start_at,
                    label=f"send->{msg.dst_gpu}",
                )
                comm_seconds += dur
                if tracer is not None:
                    tracer.span(
                        "comm", "send", ev.timestamp - dur, dur,
                        track=COMM_TRACK, src=i, dst=msg.dst_gpu,
                        items=int(msg.num_items), nbytes=nbytes,
                    )
                eff.sends.append((msg.dst_gpu, ev.timestamp, msg))
                eff.transfer_nbytes.append(nbytes)
                eff.items_sent += msg.num_items
                eff.bytes_sent += nbytes
            eff.frontier = local_part
        else:
            eff.frontier = out

        eff.compute_seconds = compute_seconds
        eff.comm_seconds = comm_seconds
        if tracer is not None:
            _vt1 = gpu.compute.available_at
            tracer.span(
                "superstep", f"superstep {iteration}", _vt0, _vt1 - _vt0,
                track=i, wall_start=_wall0, wall_dur=tracer.wall() - _wall0,
                frontier=eff.frontier_size, edges=int(eff.edges_visited),
                thread=threading.current_thread().name,
            )
            tracer.instant(
                "superstep.end", vt=_vt1, gpu=i, iteration=iteration,
                out=int(np.asarray(eff.frontier).size),
            )
            tracer.end_gpu()
        if sanitizer is not None:
            sanitizer.end_gpu()
        return eff

    # ------------------------------------------------------------------
    def _take_checkpoint(
        self,
        iteration: int,
        iteration_obj: IterationBase,
        frontiers: List[np.ndarray],
        inboxes: List[List[tuple]],
        metrics: RunMetrics,
    ) -> None:
        """Snapshot the run at the current barrier and charge its cost.

        The snapshot crosses the host link from every surviving GPU in
        parallel (each pushes its share), then a full barrier makes the
        checkpoint a globally consistent point on the virtual clock.
        """
        machine = self.machine
        ckpt = capture_checkpoint(
            self.problem, iteration_obj, iteration, frontiers, inboxes,
            tracer=self.tracer,
        )
        self._last_checkpoint = ckpt
        if self.checkpoint_path is not None:
            ckpt.save(self.checkpoint_path)
        alive = machine.alive_gpus
        host = machine.interconnect.host_link
        share = ckpt.nbytes / max(len(alive), 1)
        dur = host.latency + share * machine.interconnect.scale / host.bandwidth
        for g in alive:
            machine.gpus[g].comm.launch(dur, label="checkpoint")
        machine.barrier()
        metrics.checkpoints_taken += 1
        metrics.checkpoint_bytes += ckpt.nbytes
        metrics.checkpoint_seconds += dur
        if self.tracer is not None:
            self.tracer.instant(
                "checkpoint", vt=machine.clock.now, iteration=iteration,
                nbytes=int(ckpt.nbytes), seconds=dur,
            )
        if self.recorder is not None:
            self.recorder.record(
                "checkpoint", vt=machine.clock.now, iteration=iteration,
                nbytes=int(ckpt.nbytes),
            )

    def _recover_gpu_loss(
        self,
        losses: List[DeviceLostError],
        iteration_obj: IterationBase,
        metrics: RunMetrics,
    ):
        """Roll back to the last checkpoint minus the lost GPUs.

        Marks the GPUs dead, deals their checkpointed vertices onto the
        survivors, rebuilds subgraphs/slices/buffers, restores array and
        scalar state from the checkpoint, and re-routes the checkpointed
        frontiers and in-flight messages onto the new assignment.
        Returns ``(resume_iteration, frontiers, inboxes)``.
        """
        machine = self.machine
        problem = self.problem
        n = machine.num_gpus
        ckpt = self._last_checkpoint
        if ckpt is None:
            # cannot happen through enact() (a baseline checkpoint is
            # taken whenever faults are armed) but guard direct callers
            raise losses[0]
        metrics.rollbacks += 1
        if metrics.rollbacks > self.recovery.max_rollbacks:
            raise SimulationError(
                f"aborting after rollback {metrics.rollbacks}: the machine "
                f"keeps losing GPUs (recovery.max_rollbacks="
                f"{self.recovery.max_rollbacks})",
                gpu_id=losses[0].gpu_id,
                iteration=losses[0].iteration,
                site="enactor.recover",
            ) from losses[0]
        tracer = self.tracer
        if tracer is not None:
            # the aborted superstep's staged spans/events die with its
            # dropped GpuStepEffects, keeping event counts consistent
            # with the RunMetrics recovery counters
            tracer.drop_staged()
            for exc in losses:
                tracer.instant(
                    "recovery.gpu-loss", vt=machine.clock.now,
                    gpu=exc.gpu_id, iteration=exc.iteration,
                )
        if self.recorder is not None:
            for exc in losses:
                self.recorder.record(
                    "recovery.gpu-loss", vt=machine.clock.now,
                    gpu=exc.gpu_id, iteration=exc.iteration,
                )
        for exc in losses:
            machine.lose_gpu(exc.gpu_id)
        metrics.degraded_gpus = sorted(machine.lost_gpus)
        t0 = machine.clock.now
        new_assignment = reassign_onto_survivors(
            ckpt.partition_table, machine.lost_gpus, n
        )
        self._release_buffers()
        problem.repartition(new_assignment, dead=machine.lost_gpus)
        self._setup_buffers()
        problem.restore_arrays(ckpt.arrays)
        problem.restore_attrs(ckpt.attrs)
        iteration_obj.restore_state(ckpt.iter_state)
        problem.on_repartition(dead=machine.lost_gpus)
        frontiers, messages = route_restored_state(
            ckpt, problem, machine.lost_gpus, tracer=tracer
        )
        # survivors re-read the snapshot over the host link; the barrier
        # then resumes everyone at a common post-restore time (the clock
        # never rewinds — rollback costs time, it does not undo it)
        alive = machine.alive_gpus
        host = machine.interconnect.host_link
        share = ckpt.nbytes / max(len(alive), 1)
        dur = host.latency + share * machine.interconnect.scale / host.bandwidth
        for g in alive:
            machine.gpus[g].comm.launch(dur, label="restore")
        machine.barrier()
        now = machine.clock.now
        inboxes: List[List[tuple]] = [[] for _ in range(n)]
        for msg in messages:
            inboxes[msg.dst_gpu].append((now, msg))
        metrics.restore_seconds += now - t0
        if tracer is not None:
            tracer.instant(
                "recovery.rollback", vt=now,
                to_iteration=int(ckpt.iteration),
                lost=sorted(machine.lost_gpus),
                restore_seconds=now - t0,
            )
        if self.recorder is not None:
            self.recorder.record(
                "recovery.rollback", vt=now,
                to_iteration=int(ckpt.iteration),
                lost=sorted(machine.lost_gpus),
            )
        frontiers = [np.asarray(f, dtype=np.int64) for f in frontiers]
        # repartition rebuilt the slice arrays: worker forks and any
        # shared-memory manifest now describe dead objects
        self.backend.invalidate()
        return ckpt.iteration + 1, frontiers, inboxes

    # ------------------------------------------------------------------
    @_dump_on_repro_error
    def enact(self, **reset_kwargs) -> RunMetrics:
        """Run the primitive to convergence; returns the run's metrics."""
        problem = self.problem
        machine = self.machine
        n = machine.num_gpus
        iteration_obj = self.iteration_cls(problem)
        sanitizer = self.sanitizer
        protected = (
            machine.faults is not None or self.checkpoint_every is not None
        )
        if sanitizer is not None and protected:
            raise SimulationError(
                "sanitize=True cannot be combined with fault injection or "
                "checkpointing: shadow-memory wrappers do not survive a "
                "rollback/repartition", site="enactor.enact",
            )
        if (
            machine.faults is not None
            and machine.faults.has_host_faults()
            and self.supervisor is None
        ):
            raise SimulationError(
                "fault plan contains host-level kinds (worker-crash / "
                "worker-hang / shm-corrupt), which strike real worker "
                "processes: they require the processes backend with "
                "supervise=True", site="enactor.enact",
            )
        init_frontiers = problem.reset(**reset_kwargs)
        machine.reset()
        self.backend.begin_run()
        if self.supervisor is not None:
            self.supervisor.begin_run()
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_run(problem.name, n, self.backend.name)
        if sanitizer is not None:
            sanitizer.start_run()
        for g in machine.gpus:
            g.memory.reset_peak()

        frontiers: List[np.ndarray] = [
            np.asarray(f, dtype=np.int64) for f in init_frontiers
        ]
        inboxes: List[List[tuple]] = [[] for _ in range(n)]
        metrics = RunMetrics(
            num_gpus=n,
            primitive=problem.name,
            scale=machine.scale,
        )
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_run(problem.name, n, self.backend.name)
            recorder.set_metrics(metrics)
        self._last_checkpoint = None
        if protected:
            # baseline checkpoint at "iteration -1": the post-reset state,
            # so even an iteration-0 GPU loss has a rollback target
            self._take_checkpoint(
                -1, iteration_obj, frontiers, inboxes, metrics
            )

        iteration = 0
        last_dirs: dict = {}
        while True:
            if iteration > iteration_obj.max_iterations():
                raise ConvergenceError(
                    f"{problem.name} did not converge within "
                    f"{iteration_obj.max_iterations()} iterations",
                    iteration=iteration, site="enactor.enact",
                )
            rec = IterationRecord(iteration)
            iter_start = machine.clock.now
            next_inboxes: List[List[tuple]] = [[] for _ in range(n)]

            if machine.faults is None and self.supervisor is None:
                results = self.backend.run_iteration(
                    self, iteration, iteration_obj,
                    frontiers, inboxes, range(n),
                )
            else:
                # every superstep runs to completion on every backend;
                # device losses — virtual (injected) or escalated from
                # a real worker failure by the supervisor — are
                # returned (not raised) so one superstep's losses are
                # collected together and handled in a single rollback
                results = self.backend.run_iteration(
                    self, iteration, iteration_obj,
                    frontiers, inboxes, machine.alive_gpus, guarded=True,
                )
                if machine.faults is not None:
                    machine.faults.end_iteration()
                losses = [
                    r for r in results if isinstance(r, DeviceLostError)
                ]
                if losses:
                    iteration, frontiers, inboxes = self._recover_gpu_loss(
                        losses, iteration_obj, metrics
                    )
                    continue

            # merge staged cross-GPU effects in GPU-index order — the
            # exact mutation order of the old serial loop, so records,
            # inbox ordering, and traffic counters are bit-identical no
            # matter where the supersteps actually ran
            switches: List[tuple] = []
            for eff in results:
                i = eff.gpu
                if eff.comm_compute_items is not None:
                    rec.comm_compute_items[i] = eff.comm_compute_items
                rec.frontier_size += eff.frontier_size
                rec.edges_visited[i] = eff.edges_visited
                rec.vertices_processed[i] = eff.vertices_processed
                rec.direction = eff.direction or rec.direction
                if tracer is not None and eff.direction:
                    prev = last_dirs.get(i)
                    last_dirs[i] = eff.direction
                    if prev is not None and prev != eff.direction:
                        switches.append((i, prev, eff.direction))
                if eff.sends:
                    rec.items_sent[i] = eff.items_sent
                    rec.bytes_sent[i] = eff.bytes_sent
                for dst, arrival, msg in eff.sends:
                    next_inboxes[dst].append((arrival, msg))
                for nbytes in eff.transfer_nbytes:
                    machine.interconnect.record_transfer(nbytes)
                frontiers[i] = eff.frontier
                rec.compute_time[i] = eff.compute_seconds
                rec.comm_time[i] = eff.comm_seconds
                metrics.comm_retries += eff.comm_retries
                metrics.retry_seconds += eff.retry_seconds
                metrics.oom_recoveries += eff.oom_recoveries

            inboxes = next_inboxes
            if tracer is not None:
                # merge staged spans/events in GPU-index order *before*
                # the barrier instant so the stream reads chronologically
                tracer.on_barrier(iteration)
            machine.barrier(compute_only=self.overlap_communication)
            if tracer is not None:
                for g, before, after in switches:
                    tracer.instant(
                        "direction.switch", vt=machine.clock.now,
                        gpu=g, iteration=iteration,
                        before=before, after=after,
                    )
            if sanitizer is not None:
                hazard_mark = (
                    len(sanitizer.hazards) if tracer is not None else 0
                )
                sanitizer.on_barrier(iteration)
                if tracer is not None:
                    for hz in sanitizer.hazards[hazard_mark:]:
                        tracer.instant(
                            "sanitizer.hazard", vt=machine.clock.now,
                            hazard=hz.hazard_id, array=hz.array,
                            superstep=hz.superstep,
                        )
            rec.duration = machine.clock.now - iter_start
            metrics.iterations.append(rec)
            if recorder is not None:
                recorder.on_superstep(iteration, machine.clock.now, rec)
            iteration_obj.on_iteration_end(iteration)

            in_flight = sum(len(box) for box in inboxes)
            if iteration_obj.should_stop(
                iteration, [f.size for f in frontiers], in_flight
            ):
                break
            # the snapshot must include should_stop's effects (BC's phase
            # transitions happen there), so checkpoint after it — but only
            # on iterations the run continues past
            if (
                self.checkpoint_every is not None
                and (iteration + 1) % self.checkpoint_every == 0
            ):
                self._take_checkpoint(
                    iteration, iteration_obj, frontiers, inboxes, metrics
                )
            iteration += 1

        metrics.elapsed = machine.clock.now
        for i in machine.alive_gpus:
            metrics.peak_memory[i] = machine.gpus[i].memory.peak
            metrics.num_reallocs += machine.gpus[i].memory.num_reallocs
        if sanitizer is not None:
            metrics.sanitizer_hazards = sanitizer.report()
        if self.supervisor is not None:
            sup = self.supervisor
            metrics.worker_respawns = sup.worker_respawns
            metrics.supersteps_replayed = sup.supersteps_replayed
            metrics.hang_detections = sup.hang_detections
            metrics.supervision_overhead_seconds = sup.overhead_seconds
        if tracer is not None:
            tracer.end_run(
                vt=metrics.elapsed,
                elapsed=metrics.elapsed,
                supersteps=len(metrics.iterations),
            )
        return metrics

    def _release_buffers(self) -> None:
        """Free frontier/intermediate/comm allocations on every pool."""
        n = self.machine.num_gpus
        for i in range(n):
            pool = self.machine.gpus[i].memory
            self.frontiers_in[i].release()
            self.frontiers_out[i].release()
            name = self._intermediate_names[i]
            if name and pool.size_of(name) is not None:
                pool.free(name)
            cname = f"{getattr(self.problem, 'alloc_prefix', self.problem.name)}.comm"
            if pool.size_of(cname) is not None:
                pool.free(cname)

    def release(self) -> None:
        """Free the enactor's device buffers (frontiers, comm staging)."""
        self.backend.close()
        self._release_buffers()

    def close(self) -> None:
        """Tear down the execution backend (worker pools, shared-memory
        segments) and free device buffers.  Idempotent; after closing,
        results remain readable via ``problem.extract()`` but further
        ``enact()`` calls need a new enactor."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.release()

    def __enter__(self) -> "Enactor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
