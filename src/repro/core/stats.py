"""Operator workload statistics.

Operators are pure array transforms; they *describe* the work they did in
an :class:`OpStats`, and the enactor turns that description into virtual
time through the device's :class:`~repro.sim.kernel.KernelModel`.  This
separation keeps correctness code (NumPy) independent of the cost model —
the same discipline the paper uses when it analyzes every primitive with
BSP counts (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["OpStats", "combine_stats"]


@dataclass
class OpStats:
    """Workload of one (possibly fused) operator invocation.

    ``streaming_bytes``/``random_bytes``/``atomic_ops`` feed the kernel
    cost model; ``edges_visited``/``vertices_processed`` feed the BSP
    W counter; ``launches`` feeds launch-overhead accounting (and is what
    kernel fusion reduces).
    """

    name: str = ""
    input_size: int = 0
    output_size: int = 0
    edges_visited: int = 0
    vertices_processed: int = 0
    launches: int = 1
    streaming_bytes: float = 0.0
    random_bytes: float = 0.0
    atomic_ops: float = 0.0

    def merged_with(self, other: "OpStats", fused: bool = False) -> "OpStats":
        """Combine two operator invocations (fusion drops a launch)."""
        return OpStats(
            name=f"{self.name}+{other.name}",
            input_size=self.input_size,
            output_size=other.output_size,
            edges_visited=self.edges_visited + other.edges_visited,
            vertices_processed=self.vertices_processed + other.vertices_processed,
            launches=self.launches + (0 if fused else other.launches),
            streaming_bytes=self.streaming_bytes + other.streaming_bytes,
            random_bytes=self.random_bytes + other.random_bytes,
            atomic_ops=self.atomic_ops + other.atomic_ops,
        )


@dataclass
class StatsList:
    """Accumulates the operator stats of one iteration on one GPU."""

    items: List[OpStats] = field(default_factory=list)

    def add(self, s: OpStats) -> None:
        self.items.append(s)

    @property
    def edges_visited(self) -> int:
        return sum(s.edges_visited for s in self.items)

    @property
    def vertices_processed(self) -> int:
        return sum(s.vertices_processed for s in self.items)


def combine_stats(stats: List[OpStats]) -> OpStats:
    """Fold a list of OpStats into totals (launches summed, not fused)."""
    total = OpStats(name="total", launches=0)
    for s in stats:
        total.edges_visited += s.edges_visited
        total.vertices_processed += s.vertices_processed
        total.launches += s.launches
        total.streaming_bytes += s.streaming_bytes
        total.random_bytes += s.random_bytes
        total.atomic_ops += s.atomic_ops
        total.output_size = s.output_size
    return total
