"""Execution backends: how the enactor dispatches per-GPU supersteps.

The paper's whole premise (Fig. 1, Section III-B) is that the n GPUs'
per-iteration work runs *concurrently* between BSP barriers.  The
simulation charges virtual time as if it did, but the enactor used to
execute the n virtual GPUs strictly serially in a Python loop, so real
wall-clock grew linearly with GPU count.  This module makes dispatch a
pluggable policy:

* :class:`SerialBackend` — run the supersteps in GPU-index order on the
  calling thread (the original behaviour; zero overhead, easiest to
  debug);
* :class:`ThreadsBackend` — run them on a persistent worker pool.  The
  NumPy kernels that dominate a superstep release the GIL, so per-GPU
  work overlaps on a multi-core host — but anything interpreter-bound
  stays GIL-serialized;
* :class:`ProcessesBackend` — one persistent forked worker per virtual
  GPU.  CSR structure and slice arrays live in shared-memory segments
  (:mod:`repro.core.shm`), so reads are zero-copy across workers and a
  worker's slice writes are immediately visible to the parent;
  everything else a superstep produces ships back as a pickled
  :class:`GpuStepEffects` plus a small sidecar (stream horizons, memory
  accounting, fault consumption, staged tracer/sanitizer records,
  declared per-GPU attribute mutations) that the parent replays at the
  barrier.  No GIL: true per-core scaling of the superstep work.

**Determinism contract.**  A backend only chooses *where* each superstep
runs; it must return the results in GPU-index order.  The enactor keeps
every backend bit-identical by construction: each per-GPU superstep
touches only its own GPU's state (streams, memory pool, data slice,
workspace) and *stages* every cross-GPU effect — outgoing messages,
metrics-record entries, interconnect traffic — in a
:class:`GpuStepEffects`, which the enactor merges in GPU-index order at
the barrier.  Serial, threaded, and forked runs execute the same
superstep code and the same merge, so results,
:class:`~repro.sim.metrics.RunMetrics`, virtual times, and sanitizer
reports are identical bit for bit (asserted in
``tests/core/test_backend_determinism.py``).

**Worker affinity.**  The processes backend pins each GPU to one worker
for the pool's lifetime, so per-GPU private mutable state (streams,
pools, workspace arenas, operator caches) evolves in exactly one
address space between barriers.  Workers are re-forked at the start of
every run and after any rollback/repartition (:meth:`begin_run` /
:meth:`invalidate`), which is also when the shared-memory manifest is
(re)built.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    DeviceLostError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
)
from .shm import SliceManifest, _rewrap_like
from .supervise import (
    reap_worker,
    slice_checksum,
    wait_for_reply,
    worker_recv,
)

__all__ = [
    "GpuStepEffects",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "make_backend",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "processes")


@dataclass
class GpuStepEffects:
    """One GPU's staged cross-GPU effects for one superstep.

    Everything a superstep produces that any *other* GPU (or the shared
    metrics record / interconnect) consumes lives here, so workers never
    race on shared structures.  The enactor applies these in GPU-index
    order at the barrier, reproducing exactly the mutation order of the
    serial loop — including dict key-insertion order, which JSON traces
    observe.  The dataclass is picklable by design: the processes
    backend ships it across the worker pipe verbatim.
    """

    gpu: int
    #: the GPU's next local input frontier
    frontier: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    #: merged input frontier size (summed into the record)
    frontier_size: int = 0
    direction: str = ""
    edges_visited: int = 0
    vertices_processed: int = 0
    #: combined incoming items; None when no messages arrived (the
    #: serial loop only creates the record key when mail was processed)
    comm_compute_items: Optional[int] = None
    items_sent: int = 0
    bytes_sent: int = 0
    #: outgoing messages: (dst_gpu, arrival_timestamp, Message)
    sends: List[Tuple[int, float, object]] = field(default_factory=list)
    #: logical byte size of each sent message, replayed onto the
    #: interconnect's traffic counters at merge time
    transfer_nbytes: List[int] = field(default_factory=list)
    #: transient communication faults survived via retry this superstep
    comm_retries: int = 0
    #: virtual seconds this GPU spent in retry backoff
    retry_seconds: float = 0.0
    #: allocation failures survived by exact-fit regrown allocation
    oom_recoveries: int = 0


class ExecutionBackend:
    """Dispatch policy for one iteration's per-GPU supersteps."""

    name = "base"
    #: attached obs.Tracer, or None (the common, zero-overhead case);
    #: set by the enactor, read behind a single ``is None`` check
    tracer = None
    #: attached obs.FlightRecorder, or None; same discipline as the
    #: tracer — set by the enactor, guarded by one ``is None`` check
    recorder = None

    def bind(self, enactor) -> None:
        """Called once by the owning enactor after construction."""

    def begin_run(self) -> None:
        """Called at the start of every ``enact()`` (after problem and
        machine reset): backends with per-run worker state refresh it
        here."""

    def invalidate(self) -> None:
        """Called after rollback/repartition: any cached view of the
        problem's arrays (worker forks, shared-memory manifests) is
        stale and must be rebuilt before the next dispatch."""

    def run_iteration(
        self,
        enactor,
        iteration: int,
        iteration_obj,
        frontiers: List[np.ndarray],
        inboxes: List[list],
        gpu_indices: Sequence[int],
        guarded: bool = False,
    ) -> List[object]:
        """Run one iteration's supersteps for ``gpu_indices``; return
        their :class:`GpuStepEffects` in that order.

        With ``guarded=True`` a :class:`DeviceLostError` is returned as
        the GPU's result value instead of raised, so every superstep of
        the iteration still runs (the enactor recovers at the barrier).
        The default implementation builds per-GPU closures and defers to
        :meth:`map_supersteps` — serial and threads semantics live
        entirely there; the processes backend overrides this with a
        picklable dispatch protocol.
        """
        if not guarded:
            fns = [
                lambda idx=i: enactor._gpu_superstep(
                    idx, iteration, iteration_obj,
                    frontiers[idx], inboxes[idx],
                )
                for i in gpu_indices
            ]
        else:
            def guarded_step(idx):
                try:
                    return enactor._gpu_superstep(
                        idx, iteration, iteration_obj,
                        frontiers[idx], inboxes[idx],
                    )
                except DeviceLostError as exc:
                    return exc

            fns = [lambda idx=i: guarded_step(idx) for i in gpu_indices]
        return self.map_supersteps(fns)

    def map_supersteps(self, fns: List[Callable[[], GpuStepEffects]]
                       ) -> List[GpuStepEffects]:
        """Run all closures; return their results in list order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """GPU-index-order execution on the calling thread."""

    name = "serial"

    def map_supersteps(self, fns):
        return [fn() for fn in fns]


class ThreadsBackend(ExecutionBackend):
    """Persistent thread-pool execution of per-GPU supersteps.

    One pool lives for the backend's lifetime (spawning threads per
    iteration would dwarf a superstep's work).  Results are gathered in
    submission order, so callers observe GPU-index order regardless of
    completion order.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or max(width, 1)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-gpu"
            )
        return self._pool

    def map_supersteps(self, fns):
        if len(fns) <= 1:
            # nothing to overlap; skip the pool round-trip
            return [fn() for fn in fns]
        pool = self._ensure_pool(len(fns))
        if self.tracer is not None:
            self.tracer.instant(
                "backend.dispatch", backend=self.name,
                supersteps=len(fns), workers=pool._max_workers,
            )
        futures = [pool.submit(fn) for fn in fns]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# processes backend
# ---------------------------------------------------------------------------

def _heartbeat_loop(heartbeat, interval: float) -> None:
    """Daemon-thread body: bump the shared heartbeat slot forever.

    A SIGSTOPped or kernel-wedged worker stops bumping, which is how
    the parent's staleness check distinguishes a hang from slow work.
    """
    while True:
        heartbeat.value = time.monotonic()
        time.sleep(interval)


def _worker_loop(conn, enactor, iteration_obj, gpu_ids, manifest,
                 heartbeat=None, sup_cfg=None):
    """Body of one forked worker: serve superstep requests until "stop".

    The worker owns ``gpu_ids`` for the pool's lifetime (GPU affinity:
    per-GPU mutable state — streams, pools, workspace arenas, operator
    caches — evolves only here between barriers).  Slice arrays are
    re-attached through the shared-memory registry by *name*, proving
    the manifest layer; CSR segments are reached through the inherited
    fork mappings, which alias the same physical pages.

    Under supervision (``heartbeat``/``sup_cfg`` set) the worker also
    runs a heartbeat thread and checksums its slice windows into each
    effects sidecar.
    """
    problem = enactor.problem
    for gpu, name, arr in manifest.attach_slices():
        old = problem.data_slices[gpu].arrays.get(name)
        if old is not None and old.shape == arr.shape:
            problem.data_slices[gpu].arrays[name] = _rewrap_like(old, arr)
    machine = enactor.machine
    tracer = enactor.tracer
    checksums = sup_cfg is not None and sup_cfg.shm_checksums
    if heartbeat is not None:
        interval = sup_cfg.heartbeat_interval if sup_cfg else 0.05
        threading.Thread(
            target=_heartbeat_loop, args=(heartbeat, interval),
            daemon=True, name="repro-heartbeat",
        ).start()
    while True:
        try:
            msg = worker_recv(conn)
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, iteration, jobs, attrs, stream_times, guarded = msg
        if attrs:
            problem.restore_attrs(attrs)
        replies = []
        error = None
        for gpu_index, frontier, inbox in jobs:
            gpu = machine.gpus[gpu_index]
            for sname, t in stream_times[gpu_index].items():
                gpu.streams[sname].available_at = t
            inj = machine.faults
            fault_snap = (
                inj.snapshot_consumption() if inj is not None else None
            )
            try:
                eff = enactor._gpu_superstep(
                    gpu_index, iteration, iteration_obj, frontier, inbox
                )
            except DeviceLostError as exc:
                if not guarded:
                    error = (gpu_index, exc)
                    break
                eff = exc
            except BaseException as exc:  # ships to the parent to re-raise
                error = (gpu_index, exc)
                break
            replies.append(
                _build_sidecar(enactor, gpu_index, eff, fault_snap,
                               checksum=checksums)
            )
        if error is not None:
            gpu_index, exc = error
            try:
                conn.send(("error", gpu_index, exc))
            except Exception as send_err:  # unpicklable exception
                conn.send(("error", gpu_index, SimulationError(
                    f"{type(exc).__name__}: {exc} "
                    f"(original not picklable: {send_err})",
                    gpu_id=gpu_index,
                )))
        else:
            conn.send(("ok", replies))
    manifest.detach()
    conn.close()


def _build_sidecar(enactor, gpu_index, eff, fault_snap,
                   checksum: bool = False) -> dict:
    """Everything beyond slice-array writes that a worker's superstep
    changed and the parent must replay: stream horizons, pool
    accounting, frontier capacities, fault consumption, staged
    tracer/sanitizer records, and declared per-GPU attribute
    mutations (``ProblemBase.PER_GPU_MUTABLE_ATTRS``).  With
    ``checksum=True`` the sidecar also carries an adler32 digest of the
    GPU's slice windows for the parent's per-barrier integrity check."""
    machine = enactor.machine
    gpu = machine.gpus[gpu_index]
    tracer = enactor.tracer
    problem = enactor.problem
    return {
        "shmsum": (
            slice_checksum(problem.data_slices[gpu_index])
            if checksum else None
        ),
        "gpu": gpu_index,
        "eff": eff,
        "streams": {n: s.available_at for n, s in gpu.streams.items()},
        "pool": gpu.memory.export_state(),
        "fin": (enactor.frontiers_in[gpu_index].capacity,
                enactor.frontiers_in[gpu_index].grow_events),
        "fout": (enactor.frontiers_out[gpu_index].capacity,
                 enactor.frontiers_out[gpu_index].grow_events),
        "faults": (
            machine.faults.consumption_delta(fault_snap)
            if fault_snap is not None else None
        ),
        "trace": (
            tracer.take_staged(gpu_index) if tracer is not None else None
        ),
        "san": (
            enactor.sanitizer.take_stage(gpu_index)
            if enactor.sanitizer is not None else None
        ),
        "attrs": {
            name: getattr(problem, name)[gpu_index]
            for name in type(problem).PER_GPU_MUTABLE_ATTRS
        },
    }


class ProcessesBackend(ExecutionBackend):
    """Forked worker pool with shared-memory slices (see module docs).

    ``max_workers`` caps the pool; by default there is one worker per
    virtual GPU.  With fewer workers than GPUs, each worker owns a fixed
    subset (``gpu % workers``) and runs its supersteps in GPU order, so
    affinity — and therefore determinism — is preserved.

    Single-GPU dispatch short-circuits to inline execution: there is
    nothing to overlap, and the parent's state stays authoritative
    without any shared-memory machinery.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._workers: Optional[List[Optional[tuple]]] = None
        self._owner: Dict[int, int] = {}
        self._manifest: Optional[SliceManifest] = None
        #: attached WorkerSupervisor, or None (set by the enactor when
        #: supervision is enabled); consulted at every dispatch
        self.supervisor = None
        self._heartbeats: Optional[List] = None
        self._buckets: List[List[int]] = []

    # -- lifecycle -------------------------------------------------------
    def begin_run(self) -> None:
        # per-run state (iteration object, reset streams/faults) is
        # captured at fork time, so each enact() gets a fresh pool; the
        # manifest survives — reset() refills the same shm arrays
        self._teardown_workers()

    def invalidate(self) -> None:
        # rollback/repartition rebuilt the slice arrays: both the forks
        # and the shm segments describe dead objects
        self._teardown_workers()
        if self._manifest is not None:
            self._manifest.release()
            self._manifest = None

    def close(self) -> None:
        self.invalidate()

    def _teardown_workers(self) -> None:
        """Reap the whole pool with bounded, escalating waits.

        Safe under a half-dead pool: already-crashed or SIGSTOPped
        workers are resumed/killed rather than joined forever, and
        retired slots (None) are skipped.  Idempotent.
        """
        if not self._workers:
            self._workers = None
            self._heartbeats = None
            self._owner = {}
            return
        timeout = 10.0
        if self.supervisor is not None:
            timeout = self.supervisor.config.teardown_timeout
        for entry in self._workers:
            if entry is not None:
                reap_worker(entry[0], entry[1], timeout=timeout)
        self._workers = None
        self._heartbeats = None
        self._owner = {}

    def _spawn(self, enactor, iteration_obj, gpu_indices) -> None:
        if self._manifest is None:
            self._manifest = SliceManifest()
            self._manifest.migrate(enactor.problem)
        n = len(gpu_indices)
        width = max(1, min(self.max_workers or n, n))
        buckets: List[List[int]] = [[] for _ in range(width)]
        self._owner = {}
        for k, g in enumerate(gpu_indices):
            buckets[k % width].append(g)
            self._owner[g] = k % width
        self._buckets = buckets
        self._workers = []
        self._heartbeats = []
        for w in range(width):
            self._workers.append(None)
            self._heartbeats.append(None)
            self._fork_worker(w, enactor, iteration_obj)

    def _fork_worker(self, w: int, enactor, iteration_obj) -> None:
        """Fork (or re-fork) worker slot ``w`` for its fixed GPU bucket.

        Used both by the initial spawn and by supervised respawn: the
        new fork inherits the parent's pre-superstep state (sidecars
        are only applied after all replies arrive) and re-attaches the
        shared-memory slices by name, so a replayed superstep runs
        bit-identically to the first attempt.
        """
        ctx = multiprocessing.get_context("fork")
        heartbeat = None
        sup_cfg = None
        if self.supervisor is not None:
            sup_cfg = self.supervisor.config
            heartbeat = ctx.Value("d", time.monotonic(), lock=False)
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_loop,
            args=(child_conn, enactor, iteration_obj,
                  self._buckets[w], self._manifest, heartbeat, sup_cfg),
            daemon=True,
            name=f"repro-gpu-proc-{w}",
        )
        proc.start()
        child_conn.close()
        self._workers[w] = (proc, parent_conn)
        self._heartbeats[w] = heartbeat

    def _reap_slot(self, w: int) -> None:
        """Reap worker slot ``w`` with bounded waits; idempotent."""
        entry = self._workers[w]
        if entry is not None:
            timeout = 10.0
            if self.supervisor is not None:
                timeout = self.supervisor.config.teardown_timeout
            reap_worker(entry[0], entry[1], timeout=timeout)
            self._workers[w] = None

    def _respawn_worker(self, w: int, enactor, iteration_obj) -> bool:
        """Reap a failed worker and fork a replacement into its slot."""
        self._reap_slot(w)
        try:
            self._fork_worker(w, enactor, iteration_obj)
        except OSError:  # pragma: no cover - fork exhaustion
            return False
        return True

    def _retire_worker(self, w: int) -> None:
        """Reap worker ``w`` and leave its slot dead (escalation path:
        the enactor's rollback will invalidate and rebuild the pool
        sized to the survivors)."""
        self._reap_slot(w)
        for g in self._buckets[w]:
            self._owner.pop(g, None)

    def heartbeat_ages(self) -> dict:
        """Seconds since each live worker's last heartbeat write.

        Crash-dump forensics: a slot whose age is far beyond the
        supervision heartbeat interval was hung or dead at dump time.
        Slots without a heartbeat (unsupervised or retired) are
        omitted.
        """
        ages = {}
        if self._heartbeats:
            now = time.monotonic()
            for w, hb in enumerate(self._heartbeats):
                if hb is not None:
                    ages[w] = now - hb.value
        return ages

    # -- dispatch --------------------------------------------------------
    def run_iteration(self, enactor, iteration, iteration_obj,
                      frontiers, inboxes, gpu_indices, guarded=False):
        gpu_indices = list(gpu_indices)
        if len(gpu_indices) <= 1:
            # nothing to overlap; the inline path keeps parent state
            # authoritative and needs no pool or shared memory
            return super().run_iteration(
                enactor, iteration, iteration_obj,
                frontiers, inboxes, gpu_indices, guarded=guarded,
            )
        if self._workers is None or any(
            g not in self._owner for g in gpu_indices
        ):
            self._teardown_workers()
            self._spawn(enactor, iteration_obj, gpu_indices)
        machine = enactor.machine
        jobs: List[List[tuple]] = [[] for _ in self._workers]
        stream_times = {
            g: {
                n: s.available_at
                for n, s in machine.gpus[g].streams.items()
            }
            for g in gpu_indices
        }
        for g in gpu_indices:
            jobs[self._owner[g]].append((g, frontiers[g], inboxes[g]))
        attrs = enactor.problem.snapshot_attrs()
        if self.tracer is not None:
            self.tracer.instant(
                "backend.dispatch", backend=self.name,
                supersteps=len(gpu_indices), workers=len(self._workers),
            )
        payloads: Dict[int, tuple] = {}
        for w in range(len(self._workers)):
            if jobs[w]:
                payloads[w] = (
                    "step", iteration, jobs[w], attrs,
                    {g: stream_times[g] for g, _f, _i in jobs[w]},
                    guarded,
                )
        sup = self.supervisor
        shadow = None
        if sup is not None:
            sup.deliver_due_host_faults(self, enactor, iteration)
            shadow = sup.capture_shadow(enactor.problem, gpu_indices)
        sent_at: Dict[int, float] = {}
        for w, payload in payloads.items():
            self._send(w, payload)
            sent_at[w] = time.monotonic()
        replies: Dict[int, dict] = {}
        lost: Dict[int, DeviceLostError] = {}
        for w in payloads:
            msg = self._collect(
                enactor, iteration, iteration_obj, w, payloads[w],
                jobs[w], shadow, sent_at, guarded, lost,
            )
            if msg is None:  # worker escalated to the rollback path
                continue
            if msg[0] == "error":
                _, g, exc = msg
                self._teardown_workers()
                if isinstance(exc, BaseException):
                    raise exc
                raise SimulationError(str(exc), gpu_id=g)
            for side in msg[1]:
                replies[side["gpu"]] = side
        if sup is not None:
            sup.deliver_pending_corruption(enactor.problem)
            for g in sup.verify_replies(enactor.problem, replies,
                                        iteration):
                err = sup.integrity_error(g, iteration)
                if not guarded:
                    self._teardown_workers()
                    raise err
                sup.emit("worker.lost", vt=machine.clock.now, gpu=g,
                         iteration=iteration, reason="shm-integrity")
                if self.recorder is not None:
                    self.recorder.dump(
                        "shm-integrity", error=err,
                        heartbeats=self.heartbeat_ages(),
                        faults=machine.faults,
                    )
                lost[g] = DeviceLostError(
                    str(err), gpu_id=g, iteration=iteration,
                    site="supervise.checksum",
                )
        results = []
        for g in gpu_indices:
            if g in lost:
                results.append(lost[g])
                continue
            side = replies[g]
            self._apply_sidecar(enactor, g, side)
            results.append(side["eff"])
        return results

    def _send(self, w: int, payload: tuple) -> None:
        """Ship one step request; a broken pipe (the worker is already
        dead) is left for the bounded receive to detect and classify."""
        entry = self._workers[w]
        if entry is None:  # pragma: no cover - defensive
            return
        try:
            entry[1].send(payload)
        except (BrokenPipeError, OSError):
            pass

    def _collect(self, enactor, iteration, iteration_obj, w, payload,
                 wjobs, shadow, sent_at, guarded, lost):
        """Bounded receive from worker ``w`` with escalation.

        Returns the worker's reply message, or None after escalating
        every GPU of the worker into ``lost`` (guarded dispatch only).
        Unsupervised, liveness is still bounded — a dead worker raises
        SimulationError instead of deadlocking — but there is no
        deadline, respawn, or replay.
        """
        sup = self.supervisor
        machine = enactor.machine
        while True:
            proc, conn = self._workers[w]
            heartbeat = self._heartbeats[w] if sup is not None else None
            timeout = None
            stale_after = None
            poll = 0.05
            if sup is not None:
                poll = sup.config.poll_interval
                stale_after = sup.config.stale_after
                timeout = max(
                    0.1,
                    sup.deadline() - (time.monotonic() - sent_at[w]),
                )
            try:
                msg = wait_for_reply(
                    conn, proc, timeout=timeout, poll_interval=poll,
                    heartbeat=heartbeat, stale_after=stale_after,
                )
            except WorkerCrashError as exc:
                if sup is None:
                    self._teardown_workers()
                    raise SimulationError(
                        f"processes backend: worker {w} died "
                        f"mid-superstep (exitcode={exc.exitcode})",
                        iteration=iteration, site="backend.processes",
                    ) from exc
                if self._handle_failure(enactor, iteration, iteration_obj,
                                        w, payload, wjobs, shadow,
                                        sent_at, guarded, lost, exc):
                    continue
                return None
            except WorkerHangError as exc:
                sup.hang_detections += 1
                sup.emit("heartbeat.stale", vt=machine.clock.now,
                         worker=w, iteration=iteration,
                         stale=bool(exc.stale))
                if self._handle_failure(enactor, iteration, iteration_obj,
                                        w, payload, wjobs, shadow,
                                        sent_at, guarded, lost, exc):
                    continue
                return None
            if sup is not None:
                sup.observe(time.monotonic() - sent_at[w])
            return msg

    def _handle_failure(self, enactor, iteration, iteration_obj, w,
                        payload, wjobs, shadow, sent_at, guarded, lost,
                        exc) -> bool:
        """Escalation policy for one detected worker failure.

        Returns True when the worker was respawned and the superstep
        replayed (caller re-enters the bounded wait); False when the
        failure escalated into the DeviceLostError rollback path (or,
        unguarded, does not return at all).
        """
        sup = self.supervisor
        machine = enactor.machine
        t0 = time.perf_counter()
        sup.record_failure(iteration, w)
        wgpus = [g for g, _f, _i in wjobs]
        escalate = sup.should_escalate(iteration, w)
        if not escalate:
            # respawn path: make sure the old process is dead *before*
            # restoring the windows (a SIGSTOPped worker briefly
            # resumes during reaping and could scribble afterwards),
            # then restore this worker's windows to their
            # pre-superstep shadow (a dying worker may have written
            # half a window), re-fork, replay the in-flight superstep
            self._reap_slot(w)
            sup.restore_shadow(enactor.problem, shadow, wgpus)
            if self._respawn_worker(w, enactor, iteration_obj):
                sup.worker_respawns += 1
                sup.supersteps_replayed += len(wjobs)
                sup.emit("worker.respawn", vt=machine.clock.now,
                         worker=w, iteration=iteration,
                         supersteps=len(wjobs))
                # a second due host fault on the same GPU (e.g. a
                # crash-twice plan) strikes the replacement here;
                # only_gpus keeps specs aimed at other workers pending
                sup.deliver_due_host_faults(
                    self, enactor, iteration, only_gpus=wgpus
                )
                self._send(w, payload)
                sent_at[w] = time.monotonic()
                sup.overhead_seconds += time.perf_counter() - t0
                return True
            escalate = True
        # rollback path: convert the failure into DeviceLostError
        # values so RecoveryPolicy rolls back, reassigns onto the
        # survivors, and repartitions (pool resize happens at the
        # invalidate() that recovery triggers)
        if self.recorder is not None:
            # snapshot heartbeat ages *before* the worker is reaped —
            # the stale slot is the whole story of a hang escalation
            self.recorder.dump(
                "supervisor-escalation", error=exc,
                heartbeats=self.heartbeat_ages(),
                faults=machine.faults,
                worker=w, iteration=iteration,
            )
        self._retire_worker(w)
        if not guarded:
            self._teardown_workers()
            sup.overhead_seconds += time.perf_counter() - t0
            raise exc
        for g in wgpus:
            sup.emit("worker.lost", vt=machine.clock.now, worker=w,
                     gpu=g, iteration=iteration)
            lost[g] = DeviceLostError(
                f"worker {w} unrecoverable ({type(exc).__name__}: {exc})",
                gpu_id=g, iteration=iteration, site="supervise.escalate",
            )
        sup.overhead_seconds += time.perf_counter() - t0
        return False

    def _apply_sidecar(self, enactor, g, side) -> None:
        machine = enactor.machine
        gpu = machine.gpus[g]
        for sname, t in side["streams"].items():
            gpu.streams[sname].available_at = t
        gpu.memory.apply_state(side["pool"])
        fin, fout = enactor.frontiers_in[g], enactor.frontiers_out[g]
        fin.capacity, fin.grow_events = side["fin"]
        fout.capacity, fout.grow_events = side["fout"]
        if side["faults"] is not None and machine.faults is not None:
            machine.faults.apply_consumption_delta(side["faults"])
        if self.tracer is not None and side["trace"] is not None:
            self.tracer.adopt_staged(g, side["trace"])
        if side["san"] is not None and enactor.sanitizer is not None:
            enactor.sanitizer.adopt_stage(g, side["san"])
        for name, value in side["attrs"].items():
            getattr(enactor.problem, name)[g] = value

    def map_supersteps(self, fns):
        # arbitrary closures cannot cross a process boundary; the
        # structured path is run_iteration().  Plain callables (tests,
        # ad-hoc use) run inline, preserving list order.
        return [fn() for fn in fns]


def make_backend(
    spec: Union[str, ExecutionBackend, None], num_gpus: int = 0
) -> ExecutionBackend:
    """Resolve a backend spec: an instance, ``"serial"``, ``"threads"``
    / ``"threads:N"``, or ``"processes"`` / ``"processes:N"`` (explicit
    worker count)."""
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, _, arg = str(spec).partition(":")
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        workers = int(arg) if arg else (num_gpus or None)
        return ThreadsBackend(max_workers=workers)
    if name == "processes":
        workers = int(arg) if arg else (num_gpus or None)
        return ProcessesBackend(max_workers=workers)
    raise ValueError(
        f"unknown execution backend {spec!r}; expected one of {BACKENDS}"
    )
